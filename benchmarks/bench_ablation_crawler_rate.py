"""Ablation — crawler operational choices (Section 3.1).

The paper rate-limits its crawler and restricts it to blocklisted
address space after the unrestricted version "generated tremendous
amount of incoming traffic". This bench quantifies the trade:

* restricted vs unrestricted discovery scope;
* hourly re-pings vs a single ping round (UDP-loss compensation).

Runs at the small scenario scale so each variant's crawl stays cheap.
"""

import pytest

from repro.analysis.tables import render_table
from repro.bittorrent.crawler import CrawlerConfig
from repro.experiments.btsetup import CrawlSetup, run_crawl
from repro.experiments.runner import cached_run
from repro.natdetect.detector import detect_nated
from repro.sim.clock import HOUR


@pytest.fixture(scope="module")
def small_run():
    return cached_run("small")


def run_variant(scenario, *, restrict, reping_interval):
    setup = CrawlSetup(
        duration_hours=8.0,
        restrict_to_blocklisted=restrict,
        crawler=CrawlerConfig(reping_interval=reping_interval),
    )
    outcome = run_crawl(scenario, setup)
    nat = detect_nated(outcome.crawler.log)
    stats = outcome.crawler.stats
    traffic = stats.get_nodes_sent + stats.pings_sent
    return {
        "ips": outcome.crawler.discovered_ips,
        "nated": len(nat.nated_ips()),
        "traffic": traffic,
        "pings": stats.pings_sent,
        "ping_rr": round(stats.ping_response_rate(), 3),
    }


def compute(scenario):
    return {
        "restricted + hourly repings (paper)": run_variant(
            scenario, restrict=True, reping_interval=1 * HOUR
        ),
        "unrestricted": run_variant(
            scenario, restrict=False, reping_interval=1 * HOUR
        ),
        "single ping round (4h)": run_variant(
            scenario, restrict=True, reping_interval=4 * HOUR
        ),
    }


def test_ablation_crawler_rate(benchmark, small_run, record_result):
    rows = benchmark.pedantic(
        compute, args=(small_run.scenario,), rounds=1, iterations=1
    )
    text = render_table(
        ["variant", "IPs found", "NATed found", "queries sent", "ping RR"],
        [
            (name, v["ips"], v["nated"], v["traffic"], v["ping_rr"])
            for name, v in rows.items()
        ],
        title="Ablation: crawler scope and re-ping cadence",
    )
    record_result("ablation_crawler_rate", text)
    paper = rows["restricted + hourly repings (paper)"]
    unrestricted = rows["unrestricted"]
    sparse = rows["single ping round (4h)"]
    # Unrestricted crawling sees at least as many IPs (the restriction
    # can only prune discovery scope); sparser pinging sends less ping
    # traffic but proves no more NATs than the hourly cadence.
    assert unrestricted["ips"] >= paper["ips"]
    assert sparse["pings"] < paper["pings"]
    assert sparse["nated"] <= paper["nated"]
