"""Ablation — the RIPE pipeline's filters (Section 3.2 design choices).

Compares the full pipeline (same-AS + knee-threshold + daily-change)
against weakened variants:

* no knee threshold ("any change ⇒ frequent");
* no daily filter (stop after the frequency stage);
* naive ("any change ⇒ dynamic").

Scored against ground truth: a detected /24 counts as correct when it
belongs to a daily-churn DHCP pool (the population whose blocklisting
is promptly unjust).
"""

from repro.analysis.tables import render_table
from repro.ripe.pipeline import PipelineConfig, run_pipeline


def compute(run):
    log = run.scenario.atlas_log
    asdb = run.scenario.truth.asdb
    true_fast = run.scenario.truth.fast_dynamic_slash24s()
    true_dynamic = run.scenario.truth.dynamic_slash24s()

    def score(prefixes):
        tp = len(prefixes & true_fast)
        fp = len(prefixes - true_dynamic)  # flagged static space
        slow = len(prefixes & true_dynamic) - tp  # dynamic but not daily
        precision = tp / len(prefixes) if prefixes else 1.0
        recall = tp / len(true_fast) if true_fast else 1.0
        return (
            len(prefixes), tp, slow, fp,
            round(precision, 3), round(recall, 3),
        )

    full = run_pipeline(log, asdb, PipelineConfig())
    no_knee = run_pipeline(
        log, asdb, PipelineConfig(fixed_allocation_threshold=2)
    )
    rows = {
        "full pipeline (paper)": score(full.dynamic_prefixes),
        "no knee threshold": score(no_knee.dynamic_prefixes),
        "no daily filter": score(
            full.stage_prefixes(full.frequent_probes)
        ),
        "any change => dynamic": score(
            full.stage_prefixes(
                [p for p in full.same_as_probes if p.change_count > 0]
            )
        ),
    }
    return rows


def test_ablation_dynamic_filters(benchmark, full_run, record_result):
    rows = benchmark(compute, full_run)
    text = render_table(
        ["variant", "prefixes", "daily-pool hits", "slow-pool", "static FP",
         "precision", "recall"],
        [(name, *vals) for name, vals in rows.items()],
        title="Ablation: dynamic-prefix pipeline variants vs ground truth",
    )
    record_result("ablation_dynamic_filters", text)
    full = rows["full pipeline (paper)"]
    naive = rows["any change => dynamic"]
    # The full pipeline never flags static space and is more precise
    # (w.r.t. daily-churn pools) than the naive rule.
    assert full[3] == 0
    assert full[4] >= naive[4]
    # The naive rule sweeps in slow pools the daily filter rejects.
    assert naive[2] >= full[2]
