"""Ablation — sweeping the allocation-count threshold (Figure 2's knee).

The paper picks the threshold by knee detection (8 allocations). This
sweep shows what the choice trades: low thresholds admit slow-churn
probes whose /24s are not promptly-unjust space; high thresholds shed
coverage. The knee sits where precision saturates before recall
collapses.
"""

from repro.analysis.tables import render_table
from repro.experiments.validation import score_sets
from repro.ripe.pipeline import PipelineConfig, run_pipeline


def compute(run):
    log = run.scenario.atlas_log
    asdb = run.scenario.truth.asdb
    true_fast = run.scenario.truth.fast_dynamic_slash24s()
    rows = {}
    for threshold in (2, 4, 8, 16, 32, 64):
        result = run_pipeline(
            log,
            asdb,
            PipelineConfig(fixed_allocation_threshold=threshold),
        )
        score = score_sets(result.dynamic_prefixes, true_fast)
        rows[threshold] = (
            len(result.frequent_probes),
            len(result.daily_probes),
            *score.as_row(),
        )
    # The knee the paper's procedure would pick on this data:
    derived = run_pipeline(log, asdb, PipelineConfig())
    return rows, derived.allocation_knee


def test_ablation_knee_sweep(benchmark, full_run, record_result):
    rows, derived_knee = benchmark(compute, full_run)
    text = render_table(
        ["threshold", "frequent probes", "daily probes", "prefixes",
         "TP", "FP", "precision", "recall"],
        [(t, *vals) for t, vals in rows.items()],
        title=(
            "Ablation: allocation-count threshold sweep "
            f"(Kneedle picks {derived_knee} on this data; paper: 8)"
        ),
    )
    record_result("ablation_knee_sweep", text)
    # Monotonicity: raising the threshold never admits more probes.
    frequents = [rows[t][0] for t in (2, 4, 8, 16, 32, 64)]
    assert frequents == sorted(frequents, reverse=True)
    # The daily filter downstream keeps precision high at any
    # reasonable threshold (it is the belt to the knee's braces).
    for t in (2, 4, 8, 16):
        assert rows[t][5] >= 0.9  # precision column
