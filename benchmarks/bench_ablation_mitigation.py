"""Ablation — filtering policies on reused addresses (Section 6).

The survey finds 59% of operators hard-block on blocklists. The paper
recommends greylisting reused addresses instead. This bench replays
window traffic under three policies and quantifies the trade-off the
paper argues qualitatively: greylisting reused space nearly eliminates
unjust blocking at a small abuse-leakage cost.

Also reports the total *unjust user-days* the synthetic world suffered
(the integral behind the paper's "78 users for 44 days" worst case).
"""

import random

from repro.analysis.tables import render_table
from repro.core.mitigation import (
    POLICY_BLOCK_ALL,
    POLICY_GREYLIST_REUSED,
    POLICY_IGNORE_LISTS,
    TrafficModel,
    evaluate_policy,
)
from repro.core.userimpact import compute_user_days


def compute(run):
    truth = run.scenario.truth
    traffic = TrafficModel(legit_attempts_per_user_day=1.0)
    outcomes = {}
    for policy in (
        POLICY_BLOCK_ALL,
        POLICY_GREYLIST_REUSED,
        POLICY_IGNORE_LISTS,
    ):
        outcomes[policy] = evaluate_policy(
            policy, truth, run.analysis, random.Random(9), traffic=traffic
        )
    user_days = compute_user_days(truth, run.analysis)
    return outcomes, user_days


def test_ablation_mitigation(benchmark, full_run, record_result, strict):
    outcomes, user_days = benchmark(compute, full_run)
    rows = [
        (
            policy,
            o.legit_attempts,
            o.legit_blocked,
            o.legit_challenged,
            f"{o.unjust_block_rate():.1%}",
            f"{o.abuse_pass_rate():.1%}",
        )
        for policy, o in outcomes.items()
    ]
    by_kind = user_days.by_kind()
    worst = user_days.worst(3)
    summary = render_table(
        ["quantity", "value"],
        [
            ("total unjust user-days", user_days.total_user_days()),
            ("  via NAT reuse", by_kind.get("nat", 0)),
            ("  via dynamic reuse", by_kind.get("dynamic", 0)),
            ("innocent users affected", user_days.total_affected_users()),
            (
                "worst single address (user-days)",
                worst[0].unjust_user_days if worst else 0,
            ),
        ],
        title="Unjust-blocking cost (ground truth)",
    )
    text = "\n".join(
        [
            render_table(
                ["policy", "legit attempts", "blocked", "challenged",
                 "unjust-block rate", "abuse pass rate"],
                rows,
                title="Ablation: filtering policy on listed addresses",
            ),
            "",
            summary,
        ]
    )
    record_result("ablation_mitigation", text)

    block_all = outcomes[POLICY_BLOCK_ALL]
    greylist = outcomes[POLICY_GREYLIST_REUSED]
    ignore = outcomes[POLICY_IGNORE_LISTS]
    assert ignore.abuse_pass_rate() == 1.0
    assert block_all.abuse_passed == 0
    if strict:
        assert greylist.unjust_block_rate() < block_all.unjust_block_rate()
        assert greylist.abuse_pass_rate() <= 0.2
        assert user_days.total_user_days() > 0
