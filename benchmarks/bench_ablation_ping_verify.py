"""Ablation — bt_ping verification vs the heuristics the paper rejects.

Section 3.1 argues that (a) multi-port sightings alone are unreliable
because routing tables hold stale entries after port churn, and (b)
node_id counting is unreliable because ids regenerate on reboot. With
ground truth available we can quantify exactly how much precision the
bt_ping verification buys.
"""

from repro.analysis.tables import render_table
from repro.natdetect.detector import (
    detect_by_node_ids,
    detect_by_ports,
    detect_nated,
)


def compute(run):
    log = run.crawl.crawler.log
    truth_nated = set(run.scenario.truth.true_nated_ips())

    def evaluate(result):
        detected = result.nated_ips()
        tp = len(detected & truth_nated)
        fp = len(detected - truth_nated)
        precision = tp / len(detected) if detected else 1.0
        return len(detected), tp, fp, round(precision, 3)

    return {
        "verified (paper)": evaluate(detect_nated(log)),
        "multi-port only": evaluate(detect_by_ports(log)),
        "node_id counting": evaluate(detect_by_node_ids(log)),
    }


def test_ablation_ping_verify(benchmark, full_run, record_result):
    rows = benchmark(compute, full_run)
    text = render_table(
        ["rule", "detected", "true pos", "false pos", "precision"],
        [(name, *vals) for name, vals in rows.items()],
        title="Ablation: NAT-detection rule vs ground truth",
    )
    record_result("ablation_ping_verify", text)
    verified = rows["verified (paper)"]
    ports = rows["multi-port only"]
    ids = rows["node_id counting"]
    # The paper's rule is (near-)perfectly precise; the rejected
    # heuristics must show strictly worse precision on churned data.
    assert verified[3] >= 0.99
    assert ports[3] < verified[3]
    assert ids[3] < verified[3]
    assert ports[2] > 0 or ids[2] > 0  # churn produced false positives
