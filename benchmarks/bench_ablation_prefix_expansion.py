"""Ablation — the /24 expansion choice (Section 3.2 limitations).

The paper expands each dynamic probe address to its covering /24,
acknowledging it may over-count (pools smaller than /24) or
under-count (pools larger than /24). With known pool boundaries we can
measure the error of /26, /24, /22 and /20 expansions directly.
"""

from repro.analysis.tables import render_table
from repro.ripe.pipeline import PipelineConfig, run_pipeline


def compute(run):
    log = run.scenario.atlas_log
    asdb = run.scenario.truth.asdb
    truth = run.scenario.truth
    # Ground truth: the exact address set of daily-churn pools.
    true_addresses = set()
    for pool in truth.pools.values():
        if any(
            t.change_count() >= 5 and t.mean_holding_days() <= 2.0
            for t in pool.timelines.values()
        ):
            true_addresses.update(pool.addresses())

    rows = {}
    for length in (26, 24, 22, 20):
        result = run_pipeline(
            log, asdb, PipelineConfig(expansion_prefix_len=length)
        )
        covered = set()
        for prefix in result.dynamic_prefixes:
            covered.update(prefix.addresses())
        missed = len(true_addresses - covered)
        extra = len(covered - true_addresses)
        rows[f"/{length}"] = (
            len(result.dynamic_prefixes),
            len(covered),
            missed,
            extra,
        )
    return rows, len(true_addresses)


def test_ablation_prefix_expansion(benchmark, full_run, record_result):
    rows, n_true = benchmark(compute, full_run)
    text = render_table(
        ["expansion", "prefixes", "addresses covered", "missed (undercount)",
         "extra (overcount)"],
        [(name, *vals) for name, vals in rows.items()],
        title=(
            "Ablation: dynamic-space expansion width "
            f"(true daily-pool addresses: {n_true})"
        ),
    )
    record_result("ablation_prefix_expansion", text)
    # Wider expansions cover monotonically more address space...
    covered = [rows[k][1] for k in ("/26", "/24", "/22", "/20")]
    assert covered == sorted(covered)
    # ...trading under-count for over-count, exactly the paper's point.
    assert rows["/26"][2] >= rows["/20"][2]  # narrower misses more
    assert rows["/20"][3] >= rows["/24"][3]  # wider over-counts more
