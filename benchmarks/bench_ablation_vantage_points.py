"""Ablation — crawler vantage points (Section 3.1's scaling note).

"We could reduce this burden and have a faster coverage by having the
crawler at multiple vantage points in different networks." Implemented
here: 1 vs 3 independent crawlers whose logs merge before detection.
More vantage points means more ping rounds per IP (independent loss),
so the detected-user lower bounds tighten.
"""

import pytest

from repro.analysis.tables import render_table
from repro.experiments.btsetup import CrawlSetup, run_crawl
from repro.experiments.runner import cached_run
from repro.natdetect.detector import detect_nated


@pytest.fixture(scope="module")
def small_run():
    return cached_run("small")


def run_variant(scenario, n):
    outcome = run_crawl(
        scenario, CrawlSetup(duration_hours=6.0, n_vantage_points=n)
    )
    nat = detect_nated(outcome.merged_log())
    total_detected_users = sum(
        nat.users_behind(ip) for ip in nat.nated_ips()
    )
    return {
        "ips": len(outcome.bittorrent_ips()),
        "nated": len(nat.nated_ips()),
        "users": total_detected_users,
        "queries": sum(
            c.stats.get_nodes_sent + c.stats.pings_sent
            for c in outcome.crawlers
        ),
    }


def compute(scenario):
    return {n: run_variant(scenario, n) for n in (1, 3)}


def test_ablation_vantage_points(benchmark, small_run, record_result):
    rows = benchmark.pedantic(
        compute, args=(small_run.scenario,), rounds=1, iterations=1
    )
    text = render_table(
        ["vantage points", "IPs", "NATed IPs", "detected users (sum)",
         "queries sent"],
        [
            (n, v["ips"], v["nated"], v["users"], v["queries"])
            for n, v in rows.items()
        ],
        title="Ablation: single vs multiple crawler vantage points",
    )
    record_result("ablation_vantage_points", text)
    single, multi = rows[1], rows[3]
    # Merged evidence can only help coverage and tighten lower bounds.
    assert multi["ips"] >= single["ips"]
    assert multi["nated"] >= single["nated"]
    assert multi["users"] >= single["users"]
    # The cost is proportional traffic.
    assert multi["queries"] > single["queries"]
