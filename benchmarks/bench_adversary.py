"""Performance of the adversary lab.

Two numbers keep the lab usable as a routine check rather than an
overnight job:

* **scenario build rate** — simulating a full 60-day evasion campaign
  (world churn, event emission, ledger bookkeeping). Floored in
  events/sec so adding world detail can't silently turn ``repro
  scenarios run`` into a minutes-long command;
* **end-to-end scoring** — feed sampling over the 151-list catalog,
  index compilation and the full verdict sweep for one scenario. The
  timed round is exactly what the CLI does per scenario (minus the
  streaming fidelity check, which is I/O-bound and benched by the
  stream suite).
"""

import time

from repro.adversary import get_adversary, score_scenario

#: Floor on scenario construction throughput. The heaviest scenario
#: emits ~1.4k events over 60 simulated days; building it should stay
#: comfortably in interactive territory.
MIN_BUILD_EVENTS_PER_SEC = 2_000

#: Floor on scored eval-points/sec for the full pipeline (listings +
#: index + verdict per ip-day), generous for shared CI hardware.
MIN_SCORE_POINTS_PER_SEC = 5_000


def test_perf_adversary_scenario_build(benchmark):
    """Events/sec of deterministic scenario construction."""
    model = get_adversary("campaign-hop")

    scenario = benchmark.pedantic(
        lambda: model.build(2020), rounds=3, iterations=1
    )
    assert scenario.events

    started = time.perf_counter()
    built = model.build(2020)
    elapsed = time.perf_counter() - started
    events_per_sec = len(built.events) / elapsed
    benchmark.extra_info["events_per_sec"] = round(events_per_sec)
    assert events_per_sec >= MIN_BUILD_EVENTS_PER_SEC, (
        f"scenario build sustained only {events_per_sec:.0f} "
        f"events/sec (floor: {MIN_BUILD_EVENTS_PER_SEC})"
    )


def test_perf_adversary_scoring(benchmark):
    """One full scoring pass: listings, index, verdict sweep, metrics."""
    scenario = get_adversary("fast-flux").build(2020)
    eval_points = len(scenario.ledger.eval_points())

    score = benchmark.pedantic(
        lambda: score_scenario(scenario), rounds=3, iterations=1
    )
    assert len(score.verdicts) == eval_points

    started = time.perf_counter()
    score_scenario(scenario)
    elapsed = time.perf_counter() - started
    points_per_sec = eval_points / elapsed
    benchmark.extra_info["eval_points_per_sec"] = round(points_per_sec)
    assert points_per_sec >= MIN_SCORE_POINTS_PER_SEC, (
        f"scoring sustained only {points_per_sec:.0f} eval-points/sec "
        f"(floor: {MIN_SCORE_POINTS_PER_SEC})"
    )
