"""Performance of the sharded cluster's serving path.

Two numbers gate the scatter-gather story:

* **routed batch queries/sec** — batched TCP round trips through the
  router (split by shard, scattered, merged) vs the same workload
  against one single-process server. The router adds a hop and a
  fan-out, so it will not beat one process on one machine — the gate
  asserts the routed path keeps at least a fixed fraction of the
  direct path's throughput (the overhead is bounded, not free);
* **point-query p99 during failover** — per-query latencies against a
  replicated cluster while one shard's primary is killed and later
  restarted mid-run. Queries fail over to the replica; the failover
  phase's p99 must stay within 3x the steady-state p99 (plus a small
  epsilon for connect/retry noise, asserted).

The batch number is measured twice: on the pinned JSON codec (the
fraction-of-single-process gate above) and on the binary codec with
pipelined batches end to end — packed records scatter to the shards
and merge back without the router ever building a verdict dict —
asserted at :data:`MIN_BINARY_ROUTED_QPS`.
"""

import time

from repro.cluster import LocalCluster
from repro.experiments.runner import cached_run
from repro.loadgen.stats import percentile, window_day_workload
from repro.service.client import ReputationClient
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer

#: Minimum fraction of single-process batch throughput the routed
#: path must retain (scatter-gather overhead bound).
MIN_ROUTED_FRACTION = 0.25

#: Allowed failover-phase p99 inflation: 3x steady-state + noise.
FAILOVER_P99_FACTOR = 3.0
FAILOVER_P99_EPSILON_S = 500e-6

#: Floor asserted on pipelined binary batches through the router —
#: 3x the 31k q/s the thread-fan-out router was recorded at.
MIN_BINARY_ROUTED_QPS = 93_000


def test_perf_cluster_scatter_gather_batches(benchmark):
    """Routed batch throughput vs the single-process baseline."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    queries = window_day_workload(run.analysis, 1000)

    # Single-process baseline: same workload, same wire protocol
    # (JSON pinned on both sides, apples to apples).
    with ReputationServer(QueryEngine(index)) as server:
        host, port = server.start()
        with ReputationClient(host, port, codec="json") as client:
            client.query_batch(queries)  # warm up
            started = time.perf_counter()
            client.query_batch(queries)
            single_elapsed = time.perf_counter() - started
    single_qps = len(queries) / single_elapsed

    with LocalCluster(index, shards=3, mode="thread") as cluster:
        assert cluster.router.wait_healthy(10.0)
        with ReputationClient(*cluster.address, codec="json") as client:

            def batch_round():
                return client.query_batch(queries)

            verdicts = benchmark.pedantic(
                batch_round, rounds=3, iterations=1
            )
            assert len(verdicts) == len(queries)
            assert not any("error" in v for v in verdicts)

            started = time.perf_counter()
            client.query_batch(queries)
            elapsed = time.perf_counter() - started
    routed_qps = len(queries) / elapsed
    benchmark.extra_info.update(
        routed_qps=round(routed_qps),
        single_process_qps=round(single_qps),
        routed_fraction=round(routed_qps / single_qps, 3),
    )
    assert routed_qps >= MIN_ROUTED_FRACTION * single_qps, (
        f"routed path sustained {routed_qps:.0f} q/s, under "
        f"{MIN_ROUTED_FRACTION:.0%} of the single-process "
        f"{single_qps:.0f} q/s"
    )


def test_perf_cluster_binary_pipelined(benchmark, gc_frozen):
    """Pipelined binary batches end to end through the router: packed
    records in, scattered to binary upstream shards, packed records
    merged back out."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    queries = window_day_workload(run.analysis, 1000)
    batches = [queries] * 30
    total = sum(len(b) for b in batches)

    with LocalCluster(index, shards=3, mode="thread") as cluster:
        assert cluster.router.wait_healthy(10.0)
        with ReputationClient(
            *cluster.address, codec="binary"
        ) as client:
            assert client.codec == "binary"

            def pipelined_round():
                return client.query_batch_pipelined(batches, window=16)

            replies = benchmark.pedantic(
                pipelined_round, rounds=3, iterations=1
            )
            assert [len(r) for r in replies] == [len(b) for b in batches]
            assert not any(
                "error" in v for reply in replies for v in reply
            )

            # Best of three: the floor gates capability, not the
            # moment's heap state (see gc_frozen in conftest).
            qps = 0.0
            for _ in range(3):
                started = time.perf_counter()
                client.query_batch_pipelined(batches, window=16)
                elapsed = time.perf_counter() - started
                qps = max(qps, total / elapsed)
    benchmark.extra_info["queries_per_sec"] = round(qps)
    assert qps >= MIN_BINARY_ROUTED_QPS, (
        f"routed binary path sustained only {qps:.0f} queries/sec "
        f"(floor: {MIN_BINARY_ROUTED_QPS})"
    )


def test_perf_cluster_failover_p99(benchmark):
    """Point-query p99 while a shard primary dies and comes back."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    queries = window_day_workload(run.analysis, 600)

    with LocalCluster(
        index, shards=3, replicas=1, mode="thread"
    ) as cluster:
        assert cluster.router.wait_healthy(10.0)
        victim = cluster.partition.shard_of(queries[0][0])

        def timed_points(client, pairs):
            samples = []
            for ip, day in pairs:
                started = time.perf_counter()
                client.query(ip, day)
                samples.append(time.perf_counter() - started)
            return samples

        with ReputationClient(*cluster.address) as client:
            steady = timed_points(client, queries)

            def failover_round():
                cluster.kill_primary(victim)
                try:
                    return timed_points(client, queries)
                finally:
                    cluster.restart_primary(victim)
                    assert cluster.router.wait_healthy(10.0)

            during = benchmark.pedantic(
                failover_round, rounds=3, iterations=1
            )
            failovers = client.stats()["router"]["failovers"]
    p99_steady = percentile(steady, 0.99)
    p99_during = percentile(during, 0.99)
    benchmark.extra_info.update(
        p99_steady_us=round(p99_steady * 1e6, 1),
        p99_during_us=round(p99_during * 1e6, 1),
        failovers=failovers,
    )
    assert failovers >= 1, "failover path never exercised"
    assert p99_during <= (
        FAILOVER_P99_FACTOR * p99_steady + FAILOVER_P99_EPSILON_S
    ), (
        f"failover p99 {p99_during * 1e6:.1f}us exceeds "
        f"{FAILOVER_P99_FACTOR}x steady-state "
        f"{p99_steady * 1e6:.1f}us"
    )
