"""Extension — Entropy/IP structure discovery accuracy (future work).

Not a paper figure: the paper restricts itself to IPv4 and names
Entropy/IP as the route to IPv6 reuse detection. This bench measures
how reliably the implementation separates rotating (privacy-addressed)
/64s from stable ones across many randomized corpora — the judgement a
future IPv6 reuse study would rest on.
"""

import random

from repro.analysis.tables import render_table
from repro.ipv6.addr6 import Prefix6
from repro.ipv6.entropyip import (
    REUSE_ROTATING,
    REUSE_STABLE,
    analyze,
    classify_reuse_risk,
)
from repro.ipv6.generator import Strategy, SubnetPlan, generate_corpus

_SITE = 0x20010DB8 << 96


def one_trial(seed: int):
    rng = random.Random(seed)
    plans = []
    truth = {}
    for index in range(12):
        strategy = rng.choice(Strategy.ALL)
        subnet = Prefix6(_SITE | (index + 1) << 64, 64)
        plans.append(SubnetPlan(subnet, strategy, hosts=rng.randint(30, 90)))
        truth[str(subnet)] = (
            REUSE_ROTATING if strategy == Strategy.PRIVACY else REUSE_STABLE
        )
    corpus = generate_corpus(plans, rng)
    verdicts = classify_reuse_risk(corpus)
    correct = sum(
        1 for subnet, kind in truth.items() if verdicts.get(subnet) == kind
    )
    structure = analyze(corpus)
    return correct, len(truth), len(structure.segments)


def compute():
    trials = [one_trial(seed) for seed in range(20)]
    correct = sum(t[0] for t in trials)
    total = sum(t[1] for t in trials)
    mean_segments = sum(t[2] for t in trials) / len(trials)
    return correct, total, mean_segments


def test_ext_ipv6_entropy(benchmark, record_result):
    correct, total, mean_segments = benchmark(compute)
    accuracy = correct / total
    text = render_table(
        ["quantity", "value"],
        [
            ("randomized corpora", 20),
            ("/64 subnets judged", total),
            ("rotating-vs-stable accuracy", f"{accuracy:.1%}"),
            ("mean segments per corpus", round(mean_segments, 1)),
        ],
        title="Extension: Entropy/IP reuse-risk classification",
    )
    record_result("ext_ipv6_entropy", text)
    assert accuracy >= 0.95
