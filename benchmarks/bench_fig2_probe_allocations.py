"""Figure 2 — addresses allocated to RIPE Atlas probes.

The paper sorts the 13.6K same-AS probes by how many addresses they
were allocated over 16 months (log-scale y), and places the threshold
at the Kneedle knee point: eight allocations. 59% of probes never
change address; 27% change multiple times.

This bench regenerates the sorted allocation curve from the synthetic
Atlas log, re-derives the knee, and reports the paper-vs-measured
composition.
"""

from repro.analysis.tables import render_comparison, render_series
from repro.ripe.kneedle import allocation_threshold
from repro.ripe.pipeline import summarize_probes


def compute_fig2(run):
    probes = summarize_probes(run.scenario.atlas_log, run.scenario.truth.asdb)
    same_as = [p for p in probes if p.same_as()]
    counts = sorted(p.allocation_count for p in same_as)
    knee = allocation_threshold(counts)
    static = sum(1 for c in counts if c == 1)
    multi = sum(1 for c in counts if c > 1)
    movers = len(probes) - len(same_as)
    return {
        "counts": counts,
        "knee": knee,
        "n_probes": len(probes),
        "pct_static": 100.0 * static / len(probes),
        "pct_multi": 100.0 * multi / len(probes),
        "pct_movers": 100.0 * movers / len(probes),
    }


def test_fig2_probe_allocations(benchmark, full_run, record_result):
    data = benchmark(compute_fig2, full_run)
    series = [(float(i), float(c)) for i, c in enumerate(data["counts"])]
    text = "\n".join(
        [
            render_series(
                series,
                title="Figure 2: IP addresses allocated to RIPE Atlas probes "
                "(sorted, same-AS probes)",
                x_label="probe rank",
                y_label="allocations",
            ),
            "",
            render_comparison(
                [
                    ("knee point (allocations)", 8, data["knee"]),
                    ("% probes with no change", 59.0, round(data["pct_static"], 1)),
                    ("% probes with multiple changes", 27.0, round(data["pct_multi"], 1)),
                    ("% probes across multiple ASes", 13.1, round(data["pct_movers"], 1)),
                ],
                title="Figure 2 summary",
            ),
        ]
    )
    record_result("fig2_probe_allocations", text)
    assert data["knee"] >= 2
    assert data["pct_static"] > data["pct_movers"]
