"""Figure 3 — CDF of blocklisted and reused addresses per AS.

The paper orders ASes by their blocklisted-address count and plots the
cumulative fraction of (a) all blocklisted addresses, (b) blocklisted
addresses seen on BitTorrent, and (c) blocklisted addresses inside
RIPE probe prefixes. Headlines: BitTorrent visible in 29.6% of
blocklisted ASes, RIPE prefixes in 17.1%; the ten most-blocklisted
ASes carry 27.7% of all listed addresses.
"""

from repro.analysis.tables import render_comparison, render_series
from repro.core.overlap import compute_overlap


def test_fig3_as_overlap(benchmark, full_run, record_result):
    curves = benchmark(compute_overlap, full_run.analysis)
    n = len(curves.asn_order)
    series = [
        (float(i + 1), curves.blocklisted[i]) for i in range(n)
    ]
    text = "\n".join(
        [
            render_series(
                series,
                title="Figure 3: cumulative fraction of blocklisted addresses "
                "over ASes (ascending blocklist presence)",
                x_label="AS rank",
                y_label="CDF",
            ),
            "",
            render_comparison(
                [
                    (
                        "% blocklisted ASes with BitTorrent",
                        29.6,
                        round(100.0 * curves.bittorrent_as_coverage(), 1),
                    ),
                    (
                        "% blocklisted ASes with RIPE prefixes",
                        17.1,
                        round(100.0 * curves.ripe_as_coverage(), 1),
                    ),
                    (
                        "top-10 AS share of blocklisted addrs (%)",
                        27.7,
                        round(100.0 * curves.top10_share, 1),
                    ),
                ],
                title="Figure 3 summary",
            ),
        ]
    )
    record_result("fig3_as_overlap", text)
    assert curves.ases_with_blocklisted > 0
    # Both techniques cover a strict subset of blocklisted ASes.
    assert curves.ases_with_bittorrent <= curves.ases_with_blocklisted
    assert curves.ases_with_ripe <= curves.ases_with_blocklisted
