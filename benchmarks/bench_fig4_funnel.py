"""Figure 4 — the detection funnel.

Paper (absolute numbers at internet scale): BitTorrent 48.7M IPs →
2M NATed → 29.7K NATed+blocklisted; RIPE: 53.7K blocklisted addresses
in probe prefixes → 34.4K (same-AS probes) → 33.1K (≥8 allocations)
→ 22.7K (daily changers). Our scenario is ~1:100 scale, so the bench
compares *stage ratios*, which are scale-free.
"""

from repro.analysis.tables import render_comparison, render_table
from repro.core.funnel import compute_funnel

PAPER = {
    "bittorrent_ips": 48_700_000,
    "nated_ips": 2_000_000,
    "nated_blocklisted": 29_700,
    "blocklisted_in_ripe_prefixes": 53_700,
    "blocklisted_same_as": 34_400,
    "blocklisted_frequent": 33_100,
    "blocklisted_daily": 22_700,
}


def test_fig4_funnel(benchmark, full_run, record_result, strict):
    funnel = benchmark(compute_funnel, full_run.analysis)
    measured = funnel.as_dict()
    rows = [
        (stage, PAPER[stage], measured[stage]) for stage in PAPER
    ]
    ratio_rows = [
        (
            "RIPE same-AS retention",
            round(PAPER["blocklisted_same_as"] / PAPER["blocklisted_in_ripe_prefixes"], 2),
            round(
                measured["blocklisted_same_as"]
                / max(1, measured["blocklisted_in_ripe_prefixes"]),
                2,
            ),
        ),
        (
            "RIPE daily/frequent retention",
            round(PAPER["blocklisted_daily"] / PAPER["blocklisted_frequent"], 2),
            round(
                measured["blocklisted_daily"]
                / max(1, measured["blocklisted_frequent"]),
                2,
            ),
        ),
    ]
    text = "\n".join(
        [
            render_comparison(rows, title="Figure 4: detection funnel (absolute; scenario is ~1:100 scale)"),
            "",
            render_comparison(ratio_rows, title="Figure 4: scale-free stage ratios"),
            "",
            render_table(
                ["stat", "value"],
                [["allocation knee", measured["allocation_knee"]]],
            ),
        ]
    )
    record_result("fig4_funnel", text)
    assert funnel.monotone()
    assert measured["nated_blocklisted"] > 0
    if strict:
        assert measured["blocklisted_daily"] > 0
