"""Figure 5 — NATed addresses per blocklist (sorted, log scale).

Paper: 90 of 151 blocklists (60%) list at least one NATed address
(61 list none); 45.1K listings over 29.7K distinct NATed addresses;
the top-10 lists carry 65.9% of NATed listings; a blocklist lists 501
NATed addresses on average.
"""

from repro.analysis.figures import ascii_columns
from repro.analysis.tables import render_comparison, render_series
from repro.core.impact import per_list_counts


def compute(run):
    return per_list_counts(
        run.analysis,
        "nated",
        all_list_ids=[info.list_id for info in run.scenario.catalog],
    )


def test_fig5_nated_per_blocklist(benchmark, full_run, record_result):
    counts = benchmark(compute, full_run)
    series = [
        (float(i + 1), float(c))
        for i, (_, c) in enumerate(counts.counts)
        if c > 0
    ]
    total_lists = len(full_run.scenario.catalog)
    text = "\n".join(
        [
            ascii_columns(
                [float(c) for _, c in counts.counts if c > 0],
                title="Figure 5: NATed addresses per blocklist "
                "(descending, log scale)",
                log_scale=True,
            ),
            "",
            render_series(
                series,
                title="Figure 5 series",
                x_label="blocklist rank",
                y_label="NATed addrs",
            ),
            "",
            render_comparison(
                [
                    (
                        "% lists with ≥1 NATed address",
                        60.0,
                        round(100.0 * counts.fraction_of_lists_affected(total_lists), 1),
                    ),
                    ("lists with zero NATed addresses", 61, counts.lists_with_none),
                    (
                        "top-10 share of NATed listings (%)",
                        65.9,
                        round(100.0 * counts.top10_listing_share, 1),
                    ),
                    (
                        "mean NATed addrs per affected list",
                        501,
                        round(counts.mean_per_listing_list, 1),
                    ),
                ],
                title="Figure 5 summary",
            ),
        ]
    )
    record_result("fig5_nated_per_blocklist", text)
    assert counts.lists_with_any > 0
    assert counts.lists_with_any + counts.lists_with_none == total_lists
