"""Figure 6 — dynamic addresses per blocklist: RIPE pipeline vs the
Cai et al. ICMP census.

Paper: 79 of 151 blocklists (53%) list at least one dynamic address
(72 list none); 30.6K listings over 22.7K dynamic addresses; the
top-10 lists carry 72.6%. The census baseline finds roughly the same
listing total (29.8K vs 30.6K) with broader coverage in blocklists
whose address space hosts no Atlas probes.
"""

from repro.analysis.tables import render_comparison, render_series
from repro.core.impact import per_list_counts
from repro.net.prefixtrie import PrefixSet


def compute_ours(run):
    return per_list_counts(
        run.analysis,
        "dynamic",
        all_list_ids=[info.list_id for info in run.scenario.catalog],
    )


def compute_census_counts(run):
    """Per-list counts of blocklisted addresses inside census-inferred
    dynamic blocks (the black line of Figure 6)."""
    census_space = PrefixSet(iter(run.census.dynamic_blocks()))
    observed = run.analysis.observed
    census_ips = {
        ip
        for ip in run.analysis.blocklisted_ips
        if census_space.contains_ip(ip)
    }
    per_list = observed.listing_count_per_list(
        run.analysis.windows, ips=census_ips
    )
    return per_list, census_ips


def test_fig6_dynamic_per_blocklist(benchmark, full_run, record_result, strict):
    ours = benchmark(compute_ours, full_run)
    census_per_list, census_ips = compute_census_counts(full_run)
    series = [
        (float(i + 1), float(c))
        for i, (_, c) in enumerate(ours.counts)
        if c > 0
    ]
    total_lists = len(full_run.scenario.catalog)
    our_total = ours.total_listings
    census_total = sum(census_per_list.values())
    text = "\n".join(
        [
            render_series(
                series,
                title="Figure 6: dynamic addresses per blocklist (descending, RIPE technique)",
                x_label="blocklist rank",
                y_label="dynamic addrs",
            ),
            "",
            render_comparison(
                [
                    (
                        "% lists with ≥1 dynamic address",
                        53.0,
                        round(100.0 * ours.fraction_of_lists_affected(total_lists), 1),
                    ),
                    ("lists with zero dynamic addresses", 72, ours.lists_with_none),
                    (
                        "top-10 share of dynamic listings (%)",
                        72.6,
                        round(100.0 * ours.top10_listing_share, 1),
                    ),
                    ("RIPE-technique listings", 30_600, our_total),
                    ("Cai et al. census listings", 29_800, census_total),
                    (
                        "census/RIPE listing ratio",
                        round(29_800 / 30_600, 2),
                        round(census_total / max(1, our_total), 2),
                    ),
                ],
                title="Figure 6 summary (ours vs Cai et al.)",
            ),
        ]
    )
    record_result("fig6_dynamic_per_blocklist", text)
    if strict:
        assert ours.lists_with_any > 0
        # The census reaches blocks without Atlas probes, so its
        # listing total is comparable to or larger than ours (the
        # paper finds them the same size).
        assert census_total >= 0.5 * our_total
