"""Figure 7 — how long addresses stay listed.

Paper: blocklisted addresses are removed within 9 days on average,
NATed within 10, dynamic within 3; within two days 42% / 60% / 77.5%
are removed; reused addresses persist up to the full 44-day window in
the worst case. Key shape: dynamic addresses fall off lists *faster*
than NATed ones (the abuser moves to a new address and the feed's
removal TTL expires), while both are removed faster than the general
listed population.
"""

from repro.analysis.figures import ascii_cdf
from repro.analysis.tables import render_comparison, render_series
from repro.core.impact import duration_stats


def test_fig7_duration_cdf(benchmark, full_run, record_result):
    stats = benchmark(duration_stats, full_run.analysis)
    medians = stats.medians()
    removed2 = stats.removed_within(2)
    max_days = stats.max_days()
    assert stats.all_cdf is not None
    series = stats.all_cdf.points()
    text = "\n".join(
        [
            ascii_cdf(
                [(float(x), y) for x, y in series],
                title="Figure 7: CDF of days in blocklists (all listed "
                "addresses)",
                x_label="days listed",
            ),
            "",
            render_series(
                [(float(x), y) for x, y in series],
                title="Figure 7 series",
                x_label="days listed",
                y_label="CDF",
            ),
            "",
            render_comparison(
                [
                    ("median days, all", 9, medians.get("all")),
                    ("median days, NATed", 10, medians.get("nated")),
                    ("median days, dynamic", 3, medians.get("dynamic")),
                    (
                        "% removed ≤2 days, all",
                        42.0,
                        round(100.0 * removed2.get("all", 0.0), 1),
                    ),
                    (
                        "% removed ≤2 days, NATed",
                        60.0,
                        round(100.0 * removed2.get("nated", 0.0), 1),
                    ),
                    (
                        "% removed ≤2 days, dynamic",
                        77.5,
                        round(100.0 * removed2.get("dynamic", 0.0), 1),
                    ),
                    ("max days listed", 44, max(max_days.values())),
                ],
                title="Figure 7 summary",
            ),
        ]
    )
    record_result("fig7_duration_cdf", text)
    # Shape assertions: dynamic leaves lists faster than NATed.
    if "dynamic" in medians and "nated" in medians:
        assert medians["dynamic"] <= medians["nated"]
        assert removed2["dynamic"] >= removed2["nated"]
    assert max(max_days.values()) <= 44
