"""Figure 8 — users behind blocklisted NATed addresses.

Paper: for 68.5% of blocklisted NATed IPs the crawler proves exactly
two users; 97.8% have fewer than ten; the largest observed sharing is
78 users behind one address. All counts are lower bounds (only
simultaneously-responding, crawler-reachable BitTorrent users are
provable).
"""

from repro.analysis.tables import render_comparison, render_series
from repro.core.impact import user_impact_stats


def test_fig8_users_behind_nat(benchmark, full_run, record_result, strict):
    stats = benchmark(user_impact_stats, full_run.analysis)
    assert stats.cdf is not None, "no blocklisted NATed addresses detected"
    series = [(float(x), y) for x, y in stats.cdf.points()]
    text = "\n".join(
        [
            render_series(
                series,
                title="Figure 8: CDF of detected users behind blocklisted NATed IPs",
                x_label="users",
                y_label="CDF",
            ),
            "",
            render_comparison(
                [
                    (
                        "% with exactly two users",
                        68.5,
                        round(100.0 * stats.fraction_exactly_two(), 1),
                    ),
                    (
                        "% with fewer than ten users",
                        97.8,
                        round(100.0 * stats.fraction_below_ten(), 1),
                    ),
                    ("max users behind one IP", 78, stats.max_users()),
                ],
                title="Figure 8 summary",
            ),
        ]
    )
    record_result("fig8_users_behind_nat", text)
    # Shape: two-user households dominate; a CGN tail exists.
    if strict:
        assert stats.fraction_exactly_two() >= 0.3
        assert stats.max_users() >= 10
    # Lower-bound property against ground truth.
    truth = full_run.scenario.truth.true_nated_ips()
    for ip in full_run.analysis.nated_blocklisted:
        assert full_run.nat.users_behind(ip) <= truth[ip]
