"""Figure 9 — blocklist types used by operators with reuse issues.

Paper: among operators who reported accuracy problems from reused
addresses, spam and reputation blocklists are the most used (≈90%),
with VOIP/banking/FTP lists trailing far behind.
"""

from repro.analysis.tables import render_table
from repro.survey.analyze import figure9_usage
from repro.survey.generate import FIGURE9_USAGE


def test_fig9_survey_types(benchmark, full_run, record_result):
    usage = benchmark(figure9_usage, full_run.survey_responses)
    rows = [
        (name, f"{FIGURE9_USAGE[name] * 100:.0f}%", f"{pct:.0f}%")
        for name, pct in usage
    ]
    text = render_table(
        ["blocklist type", "paper (approx)", "measured"],
        rows,
        title="Figure 9: blocklist types used by reuse-affected operators",
    )
    record_result("fig9_survey_types", text)
    measured = dict(usage)
    assert measured["spam"] >= measured["voip"]
    assert measured["reputation"] >= measured["ftp"]
    # Spam/reputation dominate.
    top_two = {usage[0][0], usage[1][0]}
    assert top_two <= {"spam", "reputation", "ddos"}
