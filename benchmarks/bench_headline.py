"""Headline results — the abstract/conclusion numbers in one table.

53–60% of blocklists contain reused addresses; 45.1K NATed and 30.6K
dynamic listings; up to 78 affected users for up to 44 days; crawler
ping response rate 48.6%.
"""

from repro.analysis.tables import render_comparison
from repro.core.report import build_report


def compute(run):
    return build_report(
        run.analysis,
        all_list_ids=[info.list_id for info in run.scenario.catalog],
    )


def test_headline(benchmark, full_run, record_result, strict):
    report = benchmark(compute, full_run)
    ping_rr = full_run.crawl.crawler.stats.ping_response_rate()
    extra = render_comparison(
        [
            ("crawler ping response rate (%)", 48.6, round(100 * ping_rr, 1)),
            (
                "unique node_ids / unique IPs",
                round(203 / 48.7, 2),
                round(
                    full_run.crawl.crawler.stats.unique_node_ids
                    / max(1, full_run.crawl.crawler.stats.unique_ips),
                    2,
                ),
            ),
        ],
        title="Crawler operational statistics",
    )
    record_result("headline", report.render() + "\n\n" + extra)

    measured = report.measured()
    # Direction/shape assertions from the paper's findings:
    # a majority of lists carry NATed addresses; roughly half carry
    # dynamic ones; reuse persists up to the full window.
    assert measured["nated_blocklisted_ips"] > 0
    if strict:
        assert measured["pct_lists_with_nated"] >= 50
        assert measured["pct_lists_with_dynamic"] >= 25
        # A persistent abuser should span at least one full window
        # (39 days); the 44-day worst case needs one to span window 2.
        assert 39 <= measured["max_days_listed"] <= 44
        assert measured["max_users_behind_nat"] >= 20
        assert measured["dynamic_blocklisted_ips"] > 0
    # Removal ordering: dynamic < all <= nated (paper: 3 < 9 <= 10).
    assert measured["median_days_dynamic"] <= measured["median_days_nated"]
