"""Performance of the load-generation subsystem.

Two numbers gate the traffic generator's own cost story:

* **schedule build rate** — turning a mix + population into a
  pre-computed event schedule. The generator runs *before* a load
  test; if building the schedule were slow it would bound the
  offered-load ceiling, so events/sec is floored well above any rate
  the harness replays;
* **harness SLO against a live cluster** — a seeded hot-range mix
  replayed open-loop against a 3-shard thread cluster. The gate is on
  zero failed queries (the elasticity acceptance bar) plus the
  measured p50/p99 recorded in ``extra_info`` — the numbers
  EXPERIMENTS.md's SLO table quotes.
"""

import time

from repro.cluster import LocalCluster
from repro.experiments.runner import cached_run
from repro.loadgen import (
    LoadHarness,
    TrafficGenerator,
    get_mix,
    population_from_analysis,
)
from repro.service.index import ReputationIndex

#: Floor on schedule construction (events carry ~2 queries each, so
#: this is ~100k queries/sec of planning — far above replay rates).
MIN_SCHEDULE_EVENTS_PER_SEC = 50_000

#: Ceiling on the harness's measured p99 for point queries against a
#: healthy local cluster, generous for shared CI hardware.
MAX_POINT_P99_S = 0.5


def test_perf_loadgen_schedule_build(benchmark):
    """Events/sec of deterministic schedule construction."""
    run = cached_run("small")
    mix = get_mix("hot-range")
    ips, days = population_from_analysis(mix, run.analysis)
    generator = TrafficGenerator(mix, ips, days, seed=0)
    n_queries = 20_000

    events = benchmark.pedantic(
        lambda: generator.schedule(n_queries, 10_000.0),
        rounds=3,
        iterations=1,
    )
    assert sum(e.queries() for e in events) == n_queries

    started = time.perf_counter()
    built = generator.schedule(n_queries, 10_000.0)
    elapsed = time.perf_counter() - started
    events_per_sec = len(built) / elapsed
    benchmark.extra_info["events_per_sec"] = round(events_per_sec)
    assert events_per_sec >= MIN_SCHEDULE_EVENTS_PER_SEC, (
        f"schedule build sustained only {events_per_sec:.0f} "
        f"events/sec (floor: {MIN_SCHEDULE_EVENTS_PER_SEC})"
    )


def test_perf_loadgen_cluster_slo(benchmark, gc_frozen):
    """Hot-range mix against a live 3-shard cluster: the measured SLO.

    The timed round is one full harness replay; ``extra_info`` records
    the achieved qps and per-kind p50/p99 so the committed baseline
    doubles as the SLO table's source of truth."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    mix = get_mix("hot-range")
    ips, days = population_from_analysis(mix, run.analysis)
    generator = TrafficGenerator(mix, ips, days, seed=0)
    events = generator.schedule(3000, 6000.0)

    with LocalCluster(index, shards=3, mode="thread") as cluster:
        assert cluster.router.wait_healthy(10.0)
        harness = LoadHarness(*cluster.address, conns=3)

        def load_round():
            return harness.run(
                events, mix=mix.name, target_qps=6000.0
            )

        report = benchmark.pedantic(load_round, rounds=2, iterations=1)

    assert report.failed == 0, report.as_dict()
    assert report.ok == 3000
    benchmark.extra_info.update(
        achieved_qps=round(report.achieved_qps()),
        point_p50_us=round(report.point_latency["p50"] * 1e6, 1),
        point_p99_us=round(report.point_latency["p99"] * 1e6, 1),
        batch_p50_us=round(report.batch_latency["p50"] * 1e6, 1),
        batch_p99_us=round(report.batch_latency["p99"] * 1e6, 1),
    )
    assert report.point_latency["p99"] <= MAX_POINT_P99_S, (
        f"point p99 {report.point_latency['p99'] * 1e3:.1f}ms exceeds "
        f"{MAX_POINT_P99_S * 1e3:.0f}ms against a healthy local cluster"
    )
