"""Performance microbenchmarks for the hot-path primitives.

The crawler pushes millions of datagrams through bencode, the KRPC
codec and the UDP fabric; the analyses hammer the prefix trie and the
ECDFs. These benches track that the primitives stay fast enough for
the default scenario to run in seconds.
"""

import random

from repro.bittorrent.bencode import bdecode, bencode
from repro.bittorrent.krpc import (
    GetNodesResponse,
    NodeInfo,
    decode_message,
    encode_message,
)
from repro.net.ipv4 import MAX_IPV4, Prefix, covering_prefix
from repro.net.prefixtrie import PrefixTrie
from repro.analysis.cdf import Ecdf
from repro.internet.dhcp import DhcpPool, LineChurnSpec


def test_perf_bencode_roundtrip(benchmark):
    rng = random.Random(1)
    message = {
        b"t": b"\x00\x01",
        b"y": b"r",
        b"r": {
            b"id": bytes(rng.getrandbits(8) for _ in range(20)),
            b"nodes": bytes(rng.getrandbits(8) for _ in range(26 * 8)),
        },
        b"v": b"UT\x03\x05",
    }

    def roundtrip():
        return bdecode(bencode(message))

    # Median before the iterative-codec rewrite, same machine as the
    # committed BENCH_baseline.json — keeps the achieved speedup on
    # record next to the current numbers.
    benchmark.extra_info["pre_rewrite_median_us"] = 14.83
    result = benchmark(roundtrip)
    assert result[b"y"] == b"r"


def test_perf_krpc_decode(benchmark):
    rng = random.Random(2)
    nodes = tuple(
        NodeInfo(
            bytes(rng.getrandbits(8) for _ in range(20)),
            rng.getrandbits(32),
            rng.randint(1, 65535),
        )
        for _ in range(8)
    )
    wire = encode_message(
        GetNodesResponse(b"\x00\x09", bytes(20), nodes, b"LT\x01\x02")
    )

    # Pre-rewrite median (recursive bencode + struct-per-node unpack);
    # see test_perf_bencode_roundtrip.
    benchmark.extra_info["pre_rewrite_median_us"] = 21.01
    decoded = benchmark(decode_message, wire)
    assert len(decoded.nodes) == 8


def test_perf_trie_lookup(benchmark):
    rng = random.Random(3)
    trie = PrefixTrie()
    for _ in range(5000):
        prefix = covering_prefix(
            rng.randint(0, MAX_IPV4), rng.choice((8, 16, 20, 24))
        )
        trie.insert(prefix, prefix.network)
    probes = [rng.randint(0, MAX_IPV4) for _ in range(256)]

    def lookups():
        hits = 0
        for ip in probes:
            if trie.lookup_value(ip) is not None:
                hits += 1
        return hits

    benchmark(lookups)


def test_perf_trie_build(benchmark):
    rng = random.Random(4)
    prefixes = [
        covering_prefix(rng.randint(0, MAX_IPV4), 24) for _ in range(2000)
    ]

    def build():
        trie = PrefixTrie()
        for prefix in prefixes:
            trie.insert(prefix, True)
        return len(trie)

    assert benchmark(build) > 0


def test_perf_ecdf(benchmark):
    rng = random.Random(5)
    samples = [rng.random() * 44 for _ in range(20000)]

    def evaluate():
        cdf = Ecdf(samples)
        return cdf.median(), cdf.at(2.0), cdf.quantile(0.95)

    benchmark(evaluate)


def test_perf_record_allocation(benchmark):
    """Allocation throughput of the hot record types.

    The crawl log, connection log and fabric records are created
    millions of times per run; ``slots=True`` keeps them dict-free.
    This bench regresses if per-instance ``__dict__`` ever comes back
    (or validation on the construction path gets heavier).
    """
    from repro.bittorrent.crawllog import ReceivedRecord, SentRecord
    from repro.sim.udp import Datagram, Endpoint

    src = Endpoint(0x0A000001, 6881)
    dst = Endpoint(0x0A000002, 6881)

    def allocate():
        total = 0
        for i in range(500):
            sent = SentRecord(
                time=float(i),
                kind="bt_ping",
                dst_ip=0x0A000001,
                dst_port=6881,
                txn="00ff",
            )
            received = ReceivedRecord(
                time=float(i),
                kind="bt_ping",
                src_ip=0x0A000002,
                src_port=6881,
                node_id="ab" * 20,
                txn="00ff",
            )
            datagram = Datagram(src, dst, b"payload")
            total += sent.dst_port + received.src_port + len(datagram.payload)
        return total

    assert benchmark(allocate) > 0


def test_perf_dhcp_pool_simulation(benchmark):
    prefixes = [Prefix(0x0A000000 + i * 256, 24) for i in range(2)]

    def simulate():
        pool = DhcpPool("bench", 64500, list(prefixes))
        specs = [LineChurnSpec(f"l{i}", 1.0) for i in range(60)]
        pool.simulate(specs, 120.0, random.Random(6))
        return sum(t.allocation_count() for t in pool.timelines.values())

    assert benchmark(simulate) > 60
