"""End-to-end performance of the experiment runner.

Tracks the three levers this codebase has for turning hours of
compute into seconds:

* the raw serial cost of a full test-scale run (what every hot-path
  optimisation ultimately serves);
* the persistent run cache (a warm ``cached_run`` must be orders of
  magnitude cheaper than recomputing);
* worker sharding (recorded as ``extra_info`` rather than asserted —
  the speedup depends on the machine's core count, and on a single
  core a pool is pure overhead; determinism is asserted regardless).
"""

import time

from repro.experiments import cache
from repro.experiments.parallel import available_parallelism
from repro.experiments.runner import RunConfig, cached_run, run_full


def test_perf_run_full_small(benchmark):
    """Serial full study at test scale — the end-to-end hot path."""
    config = RunConfig.small(2020)

    run = benchmark.pedantic(
        lambda: run_full(config), rounds=3, iterations=1
    )
    assert run.report.measured()["nated_listings"] > 0


def test_perf_cached_run_warm(benchmark):
    """A warm persistent-cache hit (fresh-process scenario: the
    in-memory memo is bypassed by calling the cache layer directly)."""
    config = RunConfig.small(2020)
    cache.fetch(config, lambda: run_full(config))  # ensure stored

    def warm_hit():
        loaded = cache.load(config)
        assert loaded is not None
        return loaded

    run = benchmark.pedantic(warm_hit, rounds=3, iterations=1)
    assert run.report == cached_run("small").report


def test_perf_worker_scaling(benchmark):
    """Worker sharding: identical results, wall-clock recorded.

    The speedup column in ``extra_info`` is what a multi-core machine
    should compare; the assertion is only the determinism contract.
    """
    config = RunConfig.small(2020)

    start = time.perf_counter()
    serial = run_full(config, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_full(config, workers=0)  # all cores
    sharded_s = time.perf_counter() - start

    assert serial.report == sharded.report

    benchmark.extra_info["cores"] = available_parallelism()
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["all_cores_s"] = round(sharded_s, 3)
    benchmark.pedantic(
        lambda: run_full(config, workers=0).report,
        rounds=1,
        iterations=1,
    )
