"""Robustness — seed sensitivity of the headline metrics.

A reproduction whose conclusions only hold for one RNG seed would be
worthless. This bench runs the full study across several seeds (at the
fast test scale) and reports the spread of the scale-free headline
metrics; the qualitative findings must hold for every seed.
"""

from repro.analysis.tables import render_table
from repro.experiments.runner import sweep_headlines

SEEDS = (2020, 2021, 2022)


def compute():
    # One independent full run per seed; sweep_headlines shards them
    # across workers on multi-core machines with identical output.
    rows = {}
    for seed, report in sweep_headlines("small", SEEDS, workers=0):
        measured = report.measured()
        rows[seed] = {
            "pct_nated_lists": measured["pct_lists_with_nated"],
            "pct_dynamic_lists": measured["pct_lists_with_dynamic"],
            "nated_ips": measured["nated_blocklisted_ips"],
            "dynamic_ips": measured["dynamic_blocklisted_ips"],
            "max_users": measured["max_users_behind_nat"],
            "median_dynamic": measured["median_days_dynamic"],
            "median_nated": measured["median_days_nated"],
        }
    return rows


def test_seed_sensitivity(benchmark, record_result):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = render_table(
        ["seed", "% lists NATed", "% lists dyn", "NATed IPs", "dyn IPs",
         "max users", "med days dyn", "med days NAT"],
        [
            (
                seed,
                v["pct_nated_lists"],
                v["pct_dynamic_lists"],
                v["nated_ips"],
                v["dynamic_ips"],
                v["max_users"],
                v["median_dynamic"],
                v["median_nated"],
            )
            for seed, v in rows.items()
        ],
        title="Robustness: headline metrics across seeds (test scale)",
    )
    record_result("seed_sensitivity", text)
    for seed, v in rows.items():
        # The paper's qualitative findings must hold at every seed:
        # reused addresses appear on a substantial share of lists, and
        # NATed addresses exist with multi-user sharing.
        assert v["pct_nated_lists"] > 20, seed
        assert v["nated_ips"] > 0, seed
        assert v["max_users"] >= 2, seed
        # Dynamic listings leave lists at least as fast as NATed ones.
        if v["median_dynamic"]:
            assert v["median_dynamic"] <= v["median_nated"] + 2, seed
