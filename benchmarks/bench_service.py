"""Performance of the online reputation service.

Three numbers gate the serving story (Deri & Fusco's point: the
lookup path, not the batch pipeline, is the operational bottleneck):

* **index build** — compiling a cached run into the read-optimised
  :class:`ReputationIndex` (server cold-start cost without a
  snapshot);
* **in-process queries/sec** — the engine's point-query path, the
  per-connection cost an embedding consumer pays. Must sustain at
  least 10k queries/sec on the small preset (asserted, and recorded in
  ``extra_info``);
* **over-the-wire queries/sec** — batched TCP round trips through the
  framing layer, localhost loopback. Measured twice: the legacy JSON
  codec (pinned, so the compatibility path keeps its floor) and the
  negotiated binary codec with pipelined batches — the serving plane's
  hot path, asserted at :data:`MIN_BINARY_WIRE_QPS`;
* **many-client fan-in** — ≥1000 simultaneously connected clients
  answered by the single-threaded event loop.

Uses the small preset directly (like ``bench_perf_runner``) so the
gate's numbers are comparable across machines and presets.
"""

import socket
import time

from repro.experiments.runner import cached_run
from repro.loadgen.stats import window_day_workload
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer
from repro.service.client import ReputationClient
from repro.service.wire import (
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)

#: Floor asserted on the engine's in-process point-query throughput.
MIN_INPROCESS_QPS = 10_000

#: Floor asserted on pipelined binary batches over TCP loopback —
#: 5x the 37k q/s the threaded JSON server was recorded at.
MIN_BINARY_WIRE_QPS = 185_000

#: Simultaneously connected clients the fan-in bench holds open.
MANY_CLIENTS = 1000


def test_perf_service_index_build(benchmark):
    """Compiling a full run into the immutable index."""
    run = cached_run("small")

    index = benchmark.pedantic(
        lambda: ReputationIndex.from_run(run), rounds=5, iterations=1
    )
    sizes = index.stats()
    assert sizes["ips"] > 0 and sizes["intervals"] > 0
    benchmark.extra_info.update(sizes)


def test_perf_service_point_queries(benchmark):
    """In-process point-query throughput (cold LRU each round)."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    queries = window_day_workload(run.analysis, 5000)

    def run_queries():
        engine = QueryEngine(index)
        for ip, day in queries:
            engine.query(ip, day)
        return engine

    engine = benchmark.pedantic(run_queries, rounds=3, iterations=1)

    # The acceptance floor, measured independently of the harness.
    started = time.perf_counter()
    run_queries()
    elapsed = time.perf_counter() - started
    qps = len(queries) / elapsed
    benchmark.extra_info["queries_per_sec"] = round(qps)
    benchmark.extra_info["cache_hit_rate"] = round(
        engine.stats()["queries"]["point"]["hit_rate"], 3
    )
    assert qps >= MIN_INPROCESS_QPS, (
        f"engine sustained only {qps:.0f} queries/sec "
        f"(floor: {MIN_INPROCESS_QPS})"
    )


def test_perf_service_wire_roundtrip(benchmark):
    """Frame encode+decode of a representative verdict reply."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    ip = sorted(run.analysis.blocklisted_ips)[0]
    reply = {
        "ok": True,
        "result": engine.query(ip, engine.index.default_day()).to_wire(),
    }

    def roundtrip():
        frame = encode_frame(reply)
        return decode_frame(frame)

    decoded = benchmark(roundtrip)
    assert decoded[0] == reply


def test_perf_service_over_wire(benchmark):
    """Batched queries through TCP loopback + framing (JSON codec,
    pinned — the compatibility path every old client still takes)."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    queries = window_day_workload(run.analysis, 1000)
    wire_queries = [(ip, day) for ip, day in queries]

    with ReputationServer(engine) as server:
        host, port = server.start()
        with ReputationClient(host, port, codec="json") as client:

            def batch_round():
                return client.query_batch(wire_queries)

            verdicts = benchmark.pedantic(
                batch_round, rounds=3, iterations=1
            )
            assert len(verdicts) == len(wire_queries)

            started = time.perf_counter()
            client.query_batch(wire_queries)
            elapsed = time.perf_counter() - started
    benchmark.extra_info["queries_per_sec"] = round(
        len(wire_queries) / elapsed
    )


def test_perf_service_binary_pipelined(benchmark, gc_frozen):
    """Pipelined packed batches on the binary codec — the serving
    plane's hot path, asserted at :data:`MIN_BINARY_WIRE_QPS`."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    queries = window_day_workload(run.analysis, 1000)
    batches = [queries] * 50
    total = sum(len(b) for b in batches)

    with ReputationServer(engine) as server:
        host, port = server.start()
        with ReputationClient(host, port, codec="binary") as client:
            assert client.codec == "binary"

            def pipelined_round():
                return client.query_batch_pipelined(batches, window=16)

            replies = benchmark.pedantic(
                pipelined_round, rounds=3, iterations=1
            )
            assert [len(r) for r in replies] == [len(b) for b in batches]

            # The floor gates capability, so take the best of three
            # independent timings — a single sample wobbles with the
            # suite-wide heap state even under gc_frozen.
            qps = 0.0
            for _ in range(3):
                started = time.perf_counter()
                client.query_batch_pipelined(batches, window=16)
                elapsed = time.perf_counter() - started
                qps = max(qps, total / elapsed)
    benchmark.extra_info["queries_per_sec"] = round(qps)
    assert qps >= MIN_BINARY_WIRE_QPS, (
        f"binary pipelined path sustained only {qps:.0f} queries/sec "
        f"(floor: {MIN_BINARY_WIRE_QPS})"
    )


def test_perf_service_many_clients(benchmark, gc_frozen):
    """1000 simultaneously connected clients, one point query each.

    Connections are opened up front and held; each round writes every
    client's request frame first, then drains every reply — so the
    event loop genuinely holds :data:`MANY_CLIENTS` live sockets with
    queued work, which a thread-per-connection design could not do at
    this fd budget."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    queries = window_day_workload(run.analysis, MANY_CLIENTS)

    with ReputationServer(engine) as server:
        host, port = server.start()
        socks = []
        try:
            for _ in range(MANY_CLIENTS):
                sock = socket.create_connection((host, port), timeout=30.0)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                socks.append(sock)

            requests = [
                {"op": "query", "ip": ip, "day": day}
                for ip, day in queries[: len(socks)]
            ]

            def fan_in_round():
                for sock, request in zip(socks, requests):
                    send_frame(sock, request)
                replies = [recv_frame(sock) for sock in socks]
                assert all(reply["ok"] for reply in replies)
                return replies

            replies = benchmark.pedantic(
                fan_in_round, rounds=3, iterations=1
            )
            assert len(replies) == MANY_CLIENTS

            started = time.perf_counter()
            fan_in_round()
            elapsed = time.perf_counter() - started
        finally:
            for sock in socks:
                sock.close()
    benchmark.extra_info["clients"] = MANY_CLIENTS
    benchmark.extra_info["queries_per_sec"] = round(
        MANY_CLIENTS / elapsed
    )
