"""Performance of the online reputation service.

Three numbers gate the serving story (Deri & Fusco's point: the
lookup path, not the batch pipeline, is the operational bottleneck):

* **index build** — compiling a cached run into the read-optimised
  :class:`ReputationIndex` (server cold-start cost without a
  snapshot);
* **in-process queries/sec** — the engine's point-query path, the
  per-connection cost an embedding consumer pays. Must sustain at
  least 10k queries/sec on the small preset (asserted, and recorded in
  ``extra_info``);
* **over-the-wire queries/sec** — batched TCP round trips through the
  framing layer, localhost loopback.

Uses the small preset directly (like ``bench_perf_runner``) so the
gate's numbers are comparable across machines and presets.
"""

import time

from repro.experiments.runner import cached_run
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.service.server import ReputationServer
from repro.service.client import ReputationClient
from repro.service.wire import decode_frame, encode_frame

#: Floor asserted on the engine's in-process point-query throughput.
MIN_INPROCESS_QPS = 10_000


def _workload(index, analysis, n):
    """A deterministic (ip, day) stream skewed like real traffic:
    every blocklisted address across window edges and midpoints."""
    ips = sorted(analysis.blocklisted_ips)
    days = []
    for start, end in analysis.windows:
        days += [start, (start + end) // 2, end]
    pairs = [(ip, day) for day in days for ip in ips]
    repeats = -(-n // len(pairs))  # ceil
    return (pairs * repeats)[:n]


def test_perf_service_index_build(benchmark):
    """Compiling a full run into the immutable index."""
    run = cached_run("small")

    index = benchmark.pedantic(
        lambda: ReputationIndex.from_run(run), rounds=5, iterations=1
    )
    sizes = index.stats()
    assert sizes["ips"] > 0 and sizes["intervals"] > 0
    benchmark.extra_info.update(sizes)


def test_perf_service_point_queries(benchmark):
    """In-process point-query throughput (cold LRU each round)."""
    run = cached_run("small")
    index = ReputationIndex.from_run(run)
    queries = _workload(index, run.analysis, 5000)

    def run_queries():
        engine = QueryEngine(index)
        for ip, day in queries:
            engine.query(ip, day)
        return engine

    engine = benchmark.pedantic(run_queries, rounds=3, iterations=1)

    # The acceptance floor, measured independently of the harness.
    started = time.perf_counter()
    run_queries()
    elapsed = time.perf_counter() - started
    qps = len(queries) / elapsed
    benchmark.extra_info["queries_per_sec"] = round(qps)
    benchmark.extra_info["cache_hit_rate"] = round(
        engine.stats()["queries"]["point"]["hit_rate"], 3
    )
    assert qps >= MIN_INPROCESS_QPS, (
        f"engine sustained only {qps:.0f} queries/sec "
        f"(floor: {MIN_INPROCESS_QPS})"
    )


def test_perf_service_wire_roundtrip(benchmark):
    """Frame encode+decode of a representative verdict reply."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    ip = sorted(run.analysis.blocklisted_ips)[0]
    reply = {
        "ok": True,
        "result": engine.query(ip, engine.index.default_day()).to_wire(),
    }

    def roundtrip():
        frame = encode_frame(reply)
        return decode_frame(frame)

    decoded = benchmark(roundtrip)
    assert decoded[0] == reply


def test_perf_service_over_wire(benchmark):
    """Batched queries through TCP loopback + framing."""
    run = cached_run("small")
    engine = QueryEngine(ReputationIndex.from_run(run))
    queries = _workload(engine.index, run.analysis, 1000)
    wire_queries = [(ip, day) for ip, day in queries]

    with ReputationServer(engine) as server:
        host, port = server.start()
        with ReputationClient(host, port) as client:

            def batch_round():
                return client.query_batch(wire_queries)

            verdicts = benchmark.pedantic(
                batch_round, rounds=3, iterations=1
            )
            assert len(verdicts) == len(wire_queries)

            started = time.perf_counter()
            client.query_batch(wire_queries)
            elapsed = time.perf_counter() - started
    benchmark.extra_info["queries_per_sec"] = round(
        len(wire_queries) / elapsed
    )
