"""Performance of the streaming ingestion path.

Two promises gate the zero-downtime story:

* **delta apply throughput** — the follower must absorb listing churn
  far faster than any collector produces it. The whole small-preset
  replay (hundreds of day batches) is applied per round, and the
  sustained rate must stay above 50k deltas/sec (asserted);
* **query latency under hot swap** — readers never lock, so applying
  batches between queries must not move the tail. Per-query latencies
  are timed individually, steady-state first, then with an epoch swap
  between every few queries; the churn-phase p99 must stay within 2x
  of steady-state (plus a small timer-noise epsilon, asserted).

The update log's write+read roundtrip rides along as a third number so
the gate also catches a slowdown in the persistence layer.
"""

import time

from repro.experiments.runner import cached_run
from repro.loadgen.stats import percentile
from repro.service.engine import QueryEngine
from repro.service.index import ReputationIndex
from repro.stream.delta import day_advance_batches
from repro.stream.epoch import EpochIndex, index_as_of
from repro.stream.log import UpdateLogWriter, read_update_log

#: Floor asserted on the follower's sustained delta-apply rate.
MIN_DELTAS_PER_SEC = 50_000

#: Allowed churn-phase p99 inflation: 2x steady-state + timer noise.
P99_FACTOR = 2.0
P99_EPSILON_S = 100e-6


def _replay(run):
    observed = run.analysis.observed
    start_day = int(run.analysis.windows[0][0])
    batches = list(day_advance_batches(observed, start_day=start_day))
    base = index_as_of(ReputationIndex.from_run(run), start_day)
    return base, start_day, batches


def _query_pairs(analysis, n):
    ips = sorted(analysis.blocklisted_ips)
    days = [d for w in analysis.windows for d in w]
    return [
        (ips[(3 * i) % len(ips)], days[i % len(days)]) for i in range(n)
    ]


def test_perf_stream_delta_apply(benchmark):
    """Applying the whole replay stream to a fresh epoch index."""
    run = cached_run("small")
    base, start_day, batches = _replay(run)
    total_deltas = sum(len(b.deltas) for b in batches)

    def apply_all():
        epochs = EpochIndex(base, day=start_day)
        epochs.apply_all(batches)
        return epochs

    epochs = benchmark.pedantic(apply_all, rounds=3, iterations=1)
    assert epochs.current.seq == batches[-1].seq

    started = time.perf_counter()
    apply_all()
    elapsed = time.perf_counter() - started
    rate = total_deltas / elapsed
    benchmark.extra_info.update(
        batches=len(batches),
        deltas=total_deltas,
        deltas_per_sec=round(rate),
    )
    assert rate >= MIN_DELTAS_PER_SEC, (
        f"follower sustained only {rate:.0f} deltas/sec "
        f"(floor: {MIN_DELTAS_PER_SEC})"
    )


def test_perf_stream_log_roundtrip(benchmark, tmp_path):
    """Writing and re-reading the full replay as an update log."""
    run = cached_run("small")
    _, start_day, batches = _replay(run)
    path = tmp_path / "updates.gz"

    def roundtrip():
        path.unlink(missing_ok=True)
        writer = UpdateLogWriter(path, start_day=start_day)
        for batch in batches:
            writer.append(batch)
        return read_update_log(path)

    _, loaded = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert loaded == batches
    benchmark.extra_info.update(
        records=len(batches), log_bytes=path.stat().st_size
    )


def test_perf_stream_query_p99_under_hot_swap(benchmark):
    """Per-query p99 with epoch swaps interleaved vs steady-state.

    Queries are timed one by one on the serving path (cache disabled —
    the point is the evaluate path, not the LRU); the churn phase
    applies one day batch between every few queries, so nearly every
    query crosses a swap boundary.
    """
    run = cached_run("small")
    base, start_day, batches = _replay(run)
    pairs = _query_pairs(run.analysis, 12 * len(batches))

    def timed_queries(engine, pairs):
        samples = []
        for ip, day in pairs:
            started = time.perf_counter()
            engine.query(ip, day)
            samples.append(time.perf_counter() - started)
        return samples

    # Steady-state: same index state, no writer activity.
    steady_engine = QueryEngine(
        EpochIndex(base, day=start_day), cache_size=0
    )
    steady = timed_queries(steady_engine, pairs)

    def churn_round():
        epochs = EpochIndex(base, day=start_day)
        engine = QueryEngine(epochs, cache_size=0)
        samples = []
        cursor = 0
        for batch in batches:
            epochs.apply(batch)
            chunk = pairs[cursor : cursor + 12]
            cursor += 12
            samples.extend(timed_queries(engine, chunk))
        return samples

    during = benchmark.pedantic(churn_round, rounds=3, iterations=1)
    p99_steady = percentile(steady, 0.99)
    p99_during = percentile(during, 0.99)
    benchmark.extra_info.update(
        p99_steady_us=round(p99_steady * 1e6, 1),
        p99_during_us=round(p99_during * 1e6, 1),
        queries=len(during),
    )
    assert p99_during <= P99_FACTOR * p99_steady + P99_EPSILON_S, (
        f"hot-swap p99 {p99_during * 1e6:.1f}us exceeds "
        f"{P99_FACTOR}x steady-state {p99_steady * 1e6:.1f}us"
    )
