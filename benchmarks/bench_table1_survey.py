"""Table 1 — summary of the operator survey.

Paper: 85% use external blocklists (avg 2 paid / max 39; avg 10 public
/ max 68); 59% block directly; 35% feed threat-intelligence systems;
of the 34 who answered the reuse questions, 76% blame dynamic
addressing and 56% blame CGNs for blocklist inaccuracy.
"""

from repro.analysis.tables import render_comparison
from repro.survey.analyze import render_table1, summarize


def test_table1_survey(benchmark, full_run, record_result):
    summary = benchmark(summarize, full_run.survey_responses)
    text = "\n".join(
        [
            render_table1(summary),
            "",
            render_comparison(
                [
                    ("% external blocklists", 85, round(summary.pct_external)),
                    ("paid avg", 2, round(summary.paid_avg)),
                    ("paid max", 39, summary.paid_max),
                    ("public avg", 10, round(summary.public_avg)),
                    ("public max", 68, summary.public_max),
                    ("% direct block", 59, round(summary.pct_direct_block)),
                    ("% threat intel", 35, round(summary.pct_threat_intel)),
                    ("reuse respondents", 34, summary.reuse_respondents),
                    ("% dynamic issue", 76, round(summary.pct_dynamic_issue)),
                    ("% CGN issue", 56, round(summary.pct_cgn_issue)),
                ],
                title="Table 1: paper vs measured",
            ),
        ]
    )
    record_result("table1_survey", text)
    assert summary.respondents == 65
    assert summary.reuse_respondents == 34
    assert abs(summary.pct_external - 85) <= 2
    assert abs(summary.pct_dynamic_issue - 76) <= 3
    assert abs(summary.pct_cgn_issue - 56) <= 3
