"""Table 2 — the 151-blocklist catalog by maintainer.

Regenerates the maintainer/list-count table and checks it against the
published row counts (with the two reconstructed rows documented in
the catalog module).
"""

from repro.analysis.tables import render_table
from repro.blocklists.catalog import MAINTAINERS, build_catalog, catalog_by_maintainer


def test_table2_catalog(benchmark, full_run, record_result):
    grouped = benchmark(catalog_by_maintainer)
    rows = sorted(
        ((name, len(lists)) for name, lists in grouped.items()),
        key=lambda kv: (-kv[1], kv[0]),
    )
    total = sum(count for _, count in rows)
    text = render_table(
        ["maintainer", "# of blocklists"],
        rows + [("Total", total)],
        title="Table 2: blocklists per maintainer",
    )
    record_result("table2_catalog", text)
    assert total == 151
    expected = {name: count for name, count, *_ in MAINTAINERS}
    for name, count in rows:
        assert expected[name] == count
    # Catalog consumed by the run matches the static catalog.
    assert len(full_run.scenario.catalog) == 151
    assert len(build_catalog()) == 151
