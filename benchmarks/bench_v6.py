"""Performance of the IPv6 serving path.

The family generalization must not tax either family. Three numbers
gate it:

* **v6 survey build rate** — the full hitlist-v6 discovery half
  (corpus generation, Entropy/IP structure learning, per-group target
  generation, alias collapse, pool classification), floored in
  hitlist-addresses/sec so the scenario stays an interactive command;
* **128-bit trie lookups/sec** — point lookups against a
  :class:`~repro.net.prefixtrie.PrefixTrie` parameterized over V6 and
  loaded with the survey's /64 pools (16x the bit depth of the v4
  trie, so this is the structure's worst case);
* **routed v6 binary batches** — pipelined ``FT_BATCH_REQ6`` frames
  through a 2-shard v6 cluster end to end, floored in queries/sec.
"""

import random
import time

from repro.adversary import scenario_index
from repro.cluster import LocalCluster
from repro.net.family import V6
from repro.net.prefixtrie import PrefixTrie
from repro.service.client import ReputationClient
from repro.v6serve import HitlistV6Model

#: Floor on survey construction throughput (hitlist addresses/sec).
MIN_SURVEY_ADDRESSES_PER_SEC = 300

#: Floor on 128-bit trie point lookups (lookups/sec).
MIN_TRIE_LOOKUPS_PER_SEC = 100_000

#: Floor on pipelined binary v6 batches through the router. The v6
#: records are ~4x the v4 payload, so the floor sits below the v4
#: cluster gate but must stay the same order of magnitude.
MIN_V6_ROUTED_QPS = 20_000


def test_perf_v6_survey_build(benchmark):
    """Hitlist addresses/sec through the discovery pipeline."""
    model = HitlistV6Model()

    survey = benchmark.pedantic(
        lambda: model.survey(2020), rounds=3, iterations=1
    )
    assert survey.facts.hitlist

    started = time.perf_counter()
    survey = model.survey(2021)
    elapsed = time.perf_counter() - started
    rate = len(survey.facts.hitlist) / elapsed
    assert rate > MIN_SURVEY_ADDRESSES_PER_SEC, f"{rate:.0f} addrs/s"


def test_perf_v6_trie_lookup(benchmark, gc_frozen):
    """Point lookups/sec against a 128-bit prefix trie."""
    survey = HitlistV6Model().survey(2020)
    trie = PrefixTrie(V6)
    for pool in survey.facts.pools:
        trie.insert(pool.prefix, pool.risk)
    rng = random.Random(7)
    hitlist = survey.facts.hitlist
    probes = [rng.choice(hitlist) for _ in range(20_000)]

    def sweep():
        hits = 0
        for ip in probes:
            if trie.lookup_value(ip) is not None:
                hits += 1
        return hits

    hits = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert hits == len(probes)

    started = time.perf_counter()
    sweep()
    elapsed = time.perf_counter() - started
    rate = len(probes) / elapsed
    assert rate > MIN_TRIE_LOOKUPS_PER_SEC, f"{rate:.0f} lookups/s"


def test_perf_v6_routed_binary_batches(benchmark, gc_frozen):
    """Pipelined FT_BATCH_REQ6 frames through a 2-shard v6 cluster."""
    scenario = HitlistV6Model().build(2020)
    index = scenario_index(scenario)
    rng = random.Random(11)
    population = sorted(
        {ip for (ip, _day) in scenario.ledger.eval_points()}
    )
    queries = [
        (rng.choice(population), rng.randrange(scenario.horizon_days))
        for _ in range(8_000)
    ]
    batches = [
        queries[start : start + 256]
        for start in range(0, len(queries), 256)
    ]

    with LocalCluster(index, shards=2, mode="thread") as cluster:
        assert cluster.router.wait_healthy(10.0)
        with ReputationClient(
            *cluster.address, codec="binary", family=V6
        ) as client:
            assert client.codec == "binary"

            def pipelined():
                replies = client.query_batch_pipelined(batches)
                return sum(len(reply) for reply in replies)

            total = benchmark.pedantic(pipelined, rounds=3, iterations=1)
            assert total == len(queries)

            started = time.perf_counter()
            pipelined()
            elapsed = time.perf_counter() - started
    rate = len(queries) / elapsed
    assert rate > MIN_V6_ROUTED_QPS, f"{rate:.0f} q/s"
