"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper. The
expensive part — building the world and running the crawl, pipeline and
census — happens once per session via ``cached_run``; the benchmarks
time the *analysis* that produces each figure and write the rendered
output to ``results/<experiment>.txt`` so the artefacts survive the
run (pytest captures stdout).

Set ``REPRO_BENCH_PRESET=small`` to iterate quickly at test scale.
"""

import gc
import os
from pathlib import Path

import pytest

from repro.experiments.runner import cached_run

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture()
def gc_frozen():
    """Park the heap the rest of the suite accumulated (session-cached
    runs, rendered artefacts) in the GC's permanent generation for the
    duration of one throughput bench.

    The pipelined serving benches allocate enough per round to trigger
    repeated full collections, and each of those scans every live
    object in the process — so without this, a floor-gated bench run
    after the figure benches measures the test process's heap size,
    not the serving plane (observed 4-5x swings on the same code)."""
    gc.collect()
    gc.freeze()
    try:
        yield
    finally:
        gc.unfreeze()


@pytest.fixture(scope="session")
def preset() -> str:
    return os.environ.get("REPRO_BENCH_PRESET", "default")


@pytest.fixture(scope="session")
def full_run(preset):
    """The one full reproduction run all benches share."""
    return cached_run(preset)


@pytest.fixture(scope="session")
def strict(preset):
    """True at the calibrated default scale; scale-sensitive
    assertions are skipped for quick small-preset runs."""
    return preset == "default"


@pytest.fixture(scope="session")
def record_result():
    """Write a rendered experiment artefact to results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====")
        print(text)

    return _record
