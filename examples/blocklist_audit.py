#!/usr/bin/env python3
"""Audit blocklists for reused addresses — the operator workflow.

What a network operator (or blocklist maintainer) would do with the
published technique: take the blocklists they subscribe to, join them
against the reused-address list, and decide per address whether to
block or greylist (paper Section 6).

Run:  python examples/blocklist_audit.py
"""

from repro.core.greylist import recommend_action
from repro.experiments.runner import RunConfig, run_full
from repro.net.ipv4 import int_to_ip


def main() -> None:
    run = run_full(RunConfig.small(seed=11))
    analysis = run.analysis
    catalog = {info.list_id: info for info in run.scenario.catalog}

    print("Per-blocklist reuse audit (lists with at least one reused "
          "address):\n")
    print(f"{'blocklist':34s} {'listed':>7s} {'NATed':>6s} {'dynamic':>8s}")
    per_list = analysis.listings_per_list()
    nated = analysis.nated_listings_per_list()
    dynamic = analysis.dynamic_listings_per_list()
    shown = 0
    for list_id in sorted(per_list, key=per_list.get, reverse=True):
        n_nat = nated.get(list_id, 0)
        n_dyn = dynamic.get(list_id, 0)
        if n_nat == 0 and n_dyn == 0:
            continue
        info = catalog[list_id]
        print(f"{info.name[:34]:34s} {per_list[list_id]:>7d} "
              f"{n_nat:>6d} {n_dyn:>8d}")
        shown += 1
        if shown >= 15:
            break

    # Action recommendations for the reused addresses of one list.
    print("\nExample filtering decisions (spam blocklist policy):")
    for ip in sorted(analysis.reused_ips())[:10]:
        action = recommend_action(analysis, ip, blocklist_category="spam")
        users = analysis.nat.users_behind(ip)
        kind = "NAT" if ip in analysis.nated_blocklisted else "dynamic"
        detail = f">= {users} users" if users >= 2 else "address rotates"
        print(f"  {int_to_ip(ip):15s} {kind:8s} ({detail:>14s}) -> {action}")

    print("\nSame addresses under a DDoS blocklist policy "
          "(collateral damage accepted):")
    for ip in sorted(analysis.reused_ips())[:3]:
        action = recommend_action(analysis, ip, blocklist_category="ddos")
        print(f"  {int_to_ip(ip):15s} -> {action}")


if __name__ == "__main__":
    main()
