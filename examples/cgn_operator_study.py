#!/usr/bin/env python3
"""A CGN operator's view: how often do my egress IPs get blocklisted,
and how many customers does each listing punish?

The paper's motivating anecdote is a user stuck behind a blocklisted
shared address. This example takes the *operator's* perspective: for
every carrier-grade NAT in the synthetic world, it reports whether its
public address was listed during the measurement windows, for how
long, how many customers sat behind it, and the resulting unjust
customer-days — then shows what the paper's greylist would have saved.

Run:  python examples/cgn_operator_study.py
"""

from repro.core.userimpact import compute_user_days
from repro.experiments.runner import RunConfig, run_full
from repro.internet.groundtruth import NAT_CGN
from repro.net.ipv4 import int_to_ip


def main() -> None:
    run = run_full(RunConfig.small(seed=21))
    truth = run.scenario.truth
    analysis = run.analysis
    observed = analysis.observed
    windows = analysis.windows

    cgn_lines = [l for l in truth.lines.values() if l.nat == NAT_CGN]
    print(f"the operator runs {len(cgn_lines)} CGN egress addresses\n")

    print(f"{'egress IP':15s} {'customers':>9s} {'listed':>6s} "
          f"{'days':>4s} {'lists':>5s} {'detected?':>9s}")
    listed_count = 0
    for line in sorted(cgn_lines, key=lambda l: l.static_ip or 0):
        ip = line.static_ip
        assert ip is not None
        listings = [
            l
            for l in observed.listings_of_ip(ip)
            if l.observed_days(windows) > 0
        ]
        days = max(
            (l.max_observed_run(windows) for l in listings), default=0
        )
        lists = len({l.list_id for l in listings})
        detected = "yes" if ip in analysis.nated_ips else "no"
        flag = "LISTED" if listings else "-"
        if listings:
            listed_count += 1
        print(f"{int_to_ip(ip):15s} {len(line.user_keys):>9d} {flag:>6s} "
              f"{days:>4d} {lists:>5d} {detected:>9s}")

    print(f"\n{listed_count}/{len(cgn_lines)} CGN addresses were "
          "blocklisted during the windows")

    report = compute_user_days(truth, analysis)
    cgn_ips = {l.static_ip for l in cgn_lines}
    cgn_damage = sum(
        i.unjust_user_days for i in report.impacts if i.ip in cgn_ips
    )
    print(f"unjust customer-days behind this operator's CGNs: {cgn_damage}")
    print("\nwith the paper's greylist in place, services would challenge")
    print("rather than drop these customers — see "
          "examples/blocklist_audit.py for the policy side.")


if __name__ == "__main__":
    main()
