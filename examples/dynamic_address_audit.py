#!/usr/bin/env python3
"""Dynamic-address detection from RIPE Atlas logs (paper Section 3.2).

Walks the four pipeline stages explicitly — grouping, same-AS filter,
knee-point frequency filter, daily-change filter — and compares the
resulting dynamic /24 prefixes against the DHCP ground truth and the
Cai et al. ICMP census baseline.

Run:  python examples/dynamic_address_audit.py
"""

from repro.baselines.icmp_census import CensusConfig, run_census
from repro.internet.scenario import ScenarioConfig, build_scenario
from repro.ripe.pipeline import PipelineConfig, run_pipeline, summarize_probes


def main() -> None:
    scenario = build_scenario(ScenarioConfig.small(seed=7))
    log = scenario.atlas_log
    asdb = scenario.truth.asdb
    print(f"Atlas log: {len(log)} connection events from "
          f"{len(log.probe_ids())} probes over 16 months")

    # Stage by stage.
    probes = summarize_probes(log, asdb)
    same_as = [p for p in probes if p.same_as()]
    print(f"\nstage 1 - probes observed:            {len(probes)}")
    print(f"stage 2 - same-AS probes:             {len(same_as)}")

    result = run_pipeline(log, asdb, PipelineConfig())
    print(f"stage 3 - knee point:                 "
          f"{result.allocation_knee} allocations")
    print(f"          frequently-changing probes: "
          f"{len(result.frequent_probes)}")
    print(f"stage 4 - daily-changing probes:      {len(result.daily_probes)}")
    print(f"dynamic /24 prefixes published:       "
          f"{len(result.dynamic_prefixes)}")

    # Score against ground truth — the luxury a synthetic world buys.
    true_fast = scenario.truth.fast_dynamic_slash24s()
    true_all = scenario.truth.dynamic_slash24s()
    found = result.dynamic_prefixes
    hits = len(found & true_fast)
    print(f"\nground truth: {len(true_all)} dynamic /24s, "
          f"{len(true_fast)} with daily churn")
    print(f"pipeline precision: {hits}/{len(found)} detected prefixes "
          "are daily-churn pools")
    print(f"pipeline recall:    {hits}/{len(true_fast)} daily-churn pools "
          "found")

    # The baseline the paper compares against (Section 5).
    census = run_census(
        scenario.truth, CensusConfig(), scenario.hub.stream("census-example")
    )
    census_blocks = census.dynamic_blocks()
    print(f"\nCai et al. ICMP census: probed {len(census.metrics)} /24s "
          f"({census.probes_sent} pings), inferred "
          f"{len(census_blocks)} dynamic blocks")
    print(f"census/pipeline agreement: "
          f"{len(census_blocks & found)} blocks found by both")


if __name__ == "__main__":
    main()
