#!/usr/bin/env python3
"""IPv6 address-structure discovery — the paper's future-work path.

The study covers IPv4 only, but its related-work section points to
Entropy/IP (Foremski et al.) as the way to find reused IPv6 space.
This example builds an active-address corpus from four allocation
strategies, discovers its structure, and classifies each /64's
reuse risk: privacy-addressed subnets rotate their addresses (the
IPv6 analogue of dynamic IPv4 pools), so /128 blocklist entries there
go stale and mis-target quickly.

Run:  python examples/ipv6_entropy_analysis.py
"""

import random

from repro.ipv6 import (
    Prefix6,
    Strategy,
    SubnetPlan,
    analyze,
    classify_reuse_risk,
    generate_corpus,
    int_to_ip6,
)


def main() -> None:
    plans = [
        SubnetPlan(
            Prefix6.from_text("2001:db8:aa:1::/64"),
            Strategy.PRIVACY,
            hosts=120,
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:aa:2::/64"), Strategy.EUI64, hosts=120
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:aa:3::/64"),
            Strategy.SEQUENTIAL,
            hosts=60,
        ),
        SubnetPlan(
            Prefix6.from_text("2001:db8:aa:4::/64"),
            Strategy.SERVICE,
            hosts=30,
        ),
    ]
    corpus = generate_corpus(plans, random.Random(2026))
    print(f"corpus: {len(corpus)} active addresses, e.g.")
    for address in corpus[:4]:
        print(f"  {int_to_ip6(address)}")

    print("\ndiscovered structure (Entropy/IP):")
    structure = analyze(corpus)
    print(structure.render())

    print("\nper-/64 reuse risk (would a /128 blocklist entry go stale?):")
    truth = {
        "2001:db8:aa:1::/64": "privacy (rotates)",
        "2001:db8:aa:2::/64": "EUI-64 (stable)",
        "2001:db8:aa:3::/64": "sequential (stable)",
        "2001:db8:aa:4::/64": "service (stable)",
    }
    verdicts = classify_reuse_risk(corpus)
    for subnet in sorted(verdicts):
        print(f"  {subnet:24s} -> {verdicts[subnet]:9s}"
              f"   (ground truth: {truth.get(subnet, '?')})")

    print(
        "\nrotating subnets are the IPv6 analogue of the paper's dynamic "
        "IPv4 pools:\nblocklist their prefixes with care — individual "
        "addresses are ephemeral."
    )


if __name__ == "__main__":
    main()
