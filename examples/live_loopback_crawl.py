#!/usr/bin/env python3
"""The crawler over *real* UDP sockets (loopback only).

Everything else in this repository runs on the simulated fabric; this
example proves the crawler is transport-independent. It starts a small
DHT of real UDP responders on 127.0.0.1 — including two "users"
sharing the loopback address on different ports, exactly a NAT's
signature — and runs the unmodified crawler against them on wall-clock
time.

No packet leaves the machine.

Run:  python examples/live_loopback_crawl.py
"""

from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
from repro.bittorrent.krpc import (
    GetNodesQuery,
    GetNodesResponse,
    KrpcError,
    NodeInfo,
    PingQuery,
    PingResponse,
    decode_message,
    encode_message,
)
from repro.natdetect import detect_nated
from repro.net.ipv4 import int_to_ip
from repro.sim.realtime import LiveLoop
from repro.sim.rng import RngHub


def start_responder(loop, node_id, directory):
    """One live DHT node: answers ping and find_node over its socket."""
    sock = loop.open_udp_socket()

    def answer(datagram):
        try:
            message = decode_message(datagram.payload)
        except KrpcError:
            return
        if isinstance(message, PingQuery):
            sock.send(
                datagram.src,
                encode_message(PingResponse(message.txn, node_id)),
            )
        elif isinstance(message, GetNodesQuery):
            contacts = tuple(
                NodeInfo(nid, s.endpoint.ip, s.endpoint.port)
                for nid, s in directory
            )[:8]
            sock.send(
                datagram.src,
                encode_message(
                    GetNodesResponse(message.txn, node_id, contacts)
                ),
            )

    sock.on_receive(answer)
    directory.append((node_id, sock))
    return sock


def main() -> None:
    loop = LiveLoop()
    directory = []
    # Five live nodes; they all share 127.0.0.1 in this demo, so the
    # crawler should prove multiple simultaneous users behind that IP.
    for index in range(5):
        start_responder(loop, bytes([index + 1]) * 20, directory)
    print("live responders:")
    for node_id, sock in directory:
        print(f"  {node_id[:2].hex()}... at {sock.endpoint}")

    crawler_sock = loop.open_udp_socket()
    crawler = DhtCrawler(
        loop,
        crawler_sock,
        RngHub(7).stream("live"),
        CrawlerConfig(
            duration=2.0,
            tick_interval=0.05,
            reping_interval=0.5,
            retry_interval=0.2,
            contact_cooldown=0.3,
            rewalk_interval=0.0,
        ),
    )
    crawler.start([directory[0][1].endpoint])
    print("\ncrawling for ~2 wall-clock seconds over real UDP sockets...")
    loop.run_for(2.5)

    stats = crawler.stats
    print(f"sent {stats.get_nodes_sent} get_nodes / {stats.pings_sent} "
          f"bt_pings; ping response rate {stats.ping_response_rate():.0%}")
    result = detect_nated(crawler.log, round_window=0.2)
    for ip in sorted(result.nated_ips()):
        print(f"NAT signature at {int_to_ip(ip)}: "
              f">= {result.users_behind(ip)} simultaneous users")
    print("\nsame crawler class, same KRPC bytes — only the transport "
          "differs from the simulation.")


if __name__ == "__main__":
    main()
