#!/usr/bin/env python3
"""A BitTorrent DHT crawl campaign, step by step (paper Section 3.1).

Shows the pieces the orchestrator normally hides:

1. build an overlay of DHT peers — public hosts, a home NAT household,
   and a carrier-grade NAT — on the simulated UDP fabric;
2. run the crawler with the paper's operational rules (20-minute
   per-IP cooldown, hourly bt_ping rounds for multi-port IPs);
3. persist the crawl log to JSONL and re-load it;
4. run NAT detection offline over the log, next to the two naive rules
   the paper rejects.

Run:  python examples/nat_crawl_campaign.py
"""

from repro.bittorrent.crawler import CrawlerConfig, DhtCrawler
from repro.bittorrent.crawllog import read_jsonl, write_jsonl
from repro.bittorrent.swarm import PeerSpec, build_overlay
from repro.natdetect import detect_by_node_ids, detect_by_ports, detect_nated
from repro.net.ipv4 import int_to_ip, ip_to_int
from repro.sim.clock import HOUR
from repro.sim.events import Scheduler
from repro.sim.nat import HostStack, NatBehaviour, NatGateway
from repro.sim.rng import RngHub
from repro.sim.udp import UdpFabric


def main() -> None:
    hub = RngHub(1234)
    scheduler = Scheduler()
    fabric = UdpFabric(scheduler, hub, loss_rate=0.25)
    rng = hub.stream("example")

    # --- population: 30 public peers -------------------------------
    specs = []
    for index in range(30):
        ip = ip_to_int(f"11.0.{index}.1")
        stack = HostStack(fabric, ip, rng)
        specs.append(PeerSpec(f"public-{index}", ip, stack.open_socket))

    # --- a home NAT with three BitTorrent users --------------------
    home = NatGateway(fabric, ip_to_int("21.0.0.1"), rng)
    for index in range(3):
        specs.append(
            PeerSpec(
                f"home-{index}",
                ip_to_int(f"192.168.1.{index + 2}"),
                lambda gw=home: gw.open_socket(
                    behaviour=NatBehaviour.FULL_CONE
                ),
            )
        )

    # --- a CGN with 20 users, some unreachable ---------------------
    cgn = NatGateway(fabric, ip_to_int("22.0.0.1"), rng)
    for index in range(20):
        behaviour = (
            NatBehaviour.FULL_CONE
            if index % 2 == 0
            else NatBehaviour.ADDRESS_RESTRICTED
        )
        specs.append(
            PeerSpec(
                f"cgn-{index}",
                ip_to_int(f"100.64.0.{index + 2}"),
                lambda gw=cgn, b=behaviour: gw.open_socket(behaviour=b),
            )
        )

    bootstrap_stack = HostStack(fabric, ip_to_int("31.0.0.1"), rng)
    overlay = build_overlay(fabric, specs, bootstrap_stack, rng)
    # Client churn: restarts create the stale-port confounder.
    overlay.schedule_churn(scheduler, duration=4 * HOUR, restart_fraction=0.2)

    # --- the crawl ---------------------------------------------------
    crawler_stack = HostStack(fabric, ip_to_int("31.0.0.2"), rng)
    crawler = DhtCrawler(
        scheduler,
        crawler_stack.open_socket(),
        hub.stream("crawler"),
        CrawlerConfig(duration=10 * HOUR),
    )
    crawler.start([overlay.bootstrap_endpoint])
    scheduler.run_until(11 * HOUR)

    stats = crawler.stats
    print(f"crawl done: {stats.get_nodes_sent} get_nodes, "
          f"{stats.pings_sent} bt_pings "
          f"({stats.ping_response_rate():.1%} answered)")
    print(f"discovered {crawler.discovered_ips} IPs, "
          f"{len(crawler.multiport_ips)} with multiple ports")

    # --- persist and re-analyse offline ------------------------------
    write_jsonl(crawler.log, "crawl_log.jsonl")
    log = read_jsonl("crawl_log.jsonl")
    print(f"crawl log: {len(log)} records -> crawl_log.jsonl")

    verified = detect_nated(log)
    print("\nNATed addresses (bt_ping verified, the paper's rule):")
    for ip in sorted(verified.nated_ips()):
        print(f"  {int_to_ip(ip)}: >= {verified.users_behind(ip)} users")

    ports_only = detect_by_ports(log).nated_ips()
    ids_only = detect_by_node_ids(log).nated_ips()
    print(f"\nnaive multi-port rule flags {len(ports_only)} IPs; "
          f"node_id counting flags {len(ids_only)} "
          "(both include stale-port false positives)")


if __name__ == "__main__":
    main()
