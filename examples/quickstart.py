#!/usr/bin/env python3
"""Quickstart: the whole study in ~30 lines.

Builds a small synthetic internet, runs the BitTorrent crawl, the RIPE
dynamic-address pipeline and the blocklist join, then prints the
headline paper-vs-measured table and writes the reused-address
greylist the paper publishes for operators.

Run:  python examples/quickstart.py
"""

from repro.core.greylist import build_greylist, render_greylist
from repro.experiments.runner import RunConfig, run_full


def main() -> None:
    print("Building the world and running the full measurement study...")
    run = run_full(RunConfig.small())

    print()
    print(run.report.render())

    print()
    funnel = run.report.funnel
    print(f"BitTorrent IPs crawled:        {funnel.bittorrent_ips}")
    print(f"  of which NATed:              {funnel.nated_ips}")
    print(f"  of which NATed+blocklisted:  {funnel.nated_blocklisted}")
    print(f"Blocklisted in RIPE prefixes:  {funnel.blocklisted_in_ripe_prefixes}")
    print(f"  in daily-churn prefixes:     {funnel.blocklisted_daily}")

    entries = build_greylist(run.analysis)
    out = "greylist.txt"
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(render_greylist(entries))
    print()
    print(f"Wrote {len(entries)} reused blocklisted addresses to {out}")
    print("(operators should greylist these instead of hard-blocking)")


if __name__ == "__main__":
    main()
