#!/usr/bin/env python3
"""Trace one unjust-blocking incident end to end.

Reconstructs the Cloudflare-ticket story from the paper's
introduction, but for dynamic addressing: a compromised host on a
dynamic line gets its current address blocklisted; the DHCP pool then
hands that address to an innocent subscriber who inherits the
tainted reputation for however long the listing persists.

Run:  python examples/unjust_blocking_timeline.py
"""

from repro.experiments.runner import RunConfig, run_full
from repro.net.ipv4 import int_to_ip


def main() -> None:
    run = run_full(RunConfig.small(seed=3))
    truth = run.scenario.truth
    observed = run.analysis.observed
    windows = run.analysis.windows

    incidents = []
    for ip in sorted(run.analysis.dynamic_blocklisted):
        listings = [
            l for l in observed.listings_of_ip(ip)
            if l.observed_days(windows) > 0
        ]
        if not listings:
            continue
        listing = max(listings, key=lambda l: l.duration_days())
        # Who held the address over the listing interval?
        pool = next(
            (
                p
                for p in truth.pools.values()
                if any(ip in t.addresses() for t in p.timelines.values())
            ),
            None,
        )
        if pool is None:
            continue
        holders = []
        for day in range(listing.first_day, listing.last_day + 1):
            line_key = pool.line_holding(ip, day + 0.5)
            if line_key and (not holders or holders[-1][1] != line_key):
                holders.append((day, line_key))
        if len(holders) >= 2:
            incidents.append((ip, listing, holders))

    if not incidents:
        print("no multi-victim incidents in this small scenario; "
              "try another seed")
        return

    ip, listing, holders = max(
        incidents, key=lambda item: len(item[2])
    )
    print(f"address {int_to_ip(ip)} was listed on {listing.list_id!r} "
          f"from day {listing.first_day} to day {listing.last_day} "
          f"({listing.duration_days()} days)\n")
    print("who actually held the address while it was blocklisted:")
    for day, line_key in holders:
        users = truth.users_of_line(line_key)
        blame = (
            "<- the actual abuser"
            if any(u.compromised for u in users)
            else "<- UNJUSTLY BLOCKED"
        )
        print(f"  day {day:3d}: line {line_key} {blame}")

    innocents = sum(
        1
        for _, line_key in holders
        if not any(u.compromised for u in truth.users_of_line(line_key))
    )
    print(f"\n{innocents} innocent subscriber(s) inherited this tainted "
          "address while it was still listed")
    print("this is the mechanism behind the paper's central claim: "
          "blocklisting reused addresses punishes the wrong people.")


if __name__ == "__main__":
    main()
