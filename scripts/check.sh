#!/usr/bin/env bash
# One-command verify: everything a PR must pass, in the order the
# failures are cheapest to hit.
#
#   scripts/check.sh                      # full gate
#   REPRO_CHECK_SKIP_PERF=1 scripts/check.sh   # skip the (slow) perf gate
#
# Steps:
#   1. tier-1 pytest suite
#   2. reprolint baseline gate (scripts/lint_gate.py): per-module
#      rules plus the whole-program flow pass, stale-waiver check,
#      and a 10 s wall-clock budget on the full sweep
#   3. mypy --strict over the tracked module list in pyproject.toml
#      (skipped with a notice when mypy isn't installed — it is a
#      dev-only extra: pip install -e '.[dev]')
#   4. perf regression gate (benchmarks vs BENCH_baseline.json)
#   5. adversary-lab smoke (scripts/scenarios_smoke.sh): every
#      scenario end to end through the CLI, fidelity check included
#   6. IPv6 serving smoke (scripts/v6_smoke.sh): hitlist-v6 scenario
#      served by a live cluster and queried over the CLI, plus the
#      v6-hitlist load mix
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== [1/6] tier-1 tests =="
python -m pytest -x -q

echo "== [2/6] reprolint baseline gate =="
# The budget keeps the flow pass honest: whole-program analysis over
# src/repro must stay interactive (< 10 s) or it gets skipped locally.
python scripts/lint_gate.py --budget 10

echo "== [3/6] mypy --strict (tracked modules) =="
if python -c "import mypy" >/dev/null 2>&1; then
    # Module list and strictness live in [tool.mypy] in pyproject.toml.
    python -m mypy
else
    echo "mypy not installed — skipped (pip install -e '.[dev]')"
fi

echo "== [4/6] perf regression gate =="
if [ "${REPRO_CHECK_SKIP_PERF:-0}" = "1" ]; then
    echo "skipped (REPRO_CHECK_SKIP_PERF=1)"
else
    BENCH_JSON="$(mktemp /tmp/bench_current.XXXXXX.json)"
    trap 'rm -f "$BENCH_JSON"' EXIT
    python -m pytest \
        benchmarks/bench_perf_primitives.py \
        benchmarks/bench_perf_runner.py \
        benchmarks/bench_service.py \
        benchmarks/bench_stream.py \
        benchmarks/bench_cluster.py \
        benchmarks/bench_adversary.py \
        benchmarks/bench_v6.py \
        --benchmark-json="$BENCH_JSON" -q
    python scripts/perf_regress.py "$BENCH_JSON"
fi

echo "== [5/6] adversary scenarios smoke =="
bash scripts/scenarios_smoke.sh

echo "== [6/6] IPv6 serving smoke =="
bash scripts/v6_smoke.sh

echo "check.sh: all gates passed"
