#!/usr/bin/env bash
# Cluster smoke test: boot a 3-shard (1 replica each) cluster via the
# CLI, fire 100 queries through the router, kill one shard worker
# process, and assert the service keeps answering (failover), then
# tear everything down. Exits non-zero on any failed step.
#
# The kill-a-primary pass runs once per wire protocol: the JSON codec
# against shard 0's outage, then the binary codec (forced with
# --codec binary, so a silent JSON fallback fails the smoke) against
# shard 1's.
#
# Usage: scripts/cluster_smoke.sh  (from the repo root)

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

PORT="${CLUSTER_SMOKE_PORT:-7341}"
LOG="$(mktemp /tmp/cluster_smoke.XXXXXX.log)"
CLUSTER_PID=""

cleanup() {
    if [[ -n "$CLUSTER_PID" ]] && kill -0 "$CLUSTER_PID" 2>/dev/null; then
        # Kill the whole process group: router plus shard workers.
        kill -- -"$CLUSTER_PID" 2>/dev/null || kill "$CLUSTER_PID" 2>/dev/null || true
        wait "$CLUSTER_PID" 2>/dev/null || true
    fi
    rm -f "$LOG"
}
trap cleanup EXIT

echo "== booting cluster (3 shards x 2 backends) on port $PORT"
setsid python -m repro cluster \
    --shards 3 --replicas 1 --port "$PORT" >"$LOG" 2>&1 &
CLUSTER_PID=$!

for _ in $(seq 1 120); do
    if grep -q "cluster serving on" "$LOG"; then
        break
    fi
    if ! kill -0 "$CLUSTER_PID" 2>/dev/null; then
        echo "FAIL: cluster process died during startup" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
grep -q "cluster serving on" "$LOG" || {
    echo "FAIL: cluster never reported serving" >&2
    cat "$LOG" >&2
    exit 1
}
grep "^shard " "$LOG"

echo "== handshake"
python -m repro query --hello --port "$PORT" | grep -q '"shards": 3' || {
    echo "FAIL: hello did not report 3 shards" >&2
    exit 1
}

IPS=$(python - <<'EOF'
import random
rng = random.Random(7)
print(" ".join(
    ".".join(str(rng.randrange(256)) for _ in range(4)) for _ in range(100)
))
EOF
)

# run_queries <codec>: 100 queries through the router, echoing the
# verdict count.
run_queries() {
    # shellcheck disable=SC2086
    python -m repro query --codec "$1" --port "$PORT" $IPS | grep -c "listed="
}

# kill_primary <shard>: SIGKILL that shard's primary worker process.
kill_primary() {
    local pid
    pid=$(grep "^shard $1 primary" "$LOG" | sed -n 's/.*pid=\([0-9]*\).*/\1/p')
    [[ -n "$pid" ]] || {
        echo "FAIL: could not find shard $1 primary pid in output" >&2
        exit 1
    }
    kill -9 "$pid"
    sleep 1
}

for PASS in "json 0" "binary 1"; do
    read -r CODEC SHARD <<<"$PASS"

    echo "== [$CODEC] 100 queries through the router"
    ANSWERS=$(run_queries "$CODEC")
    [[ "$ANSWERS" -eq 100 ]] || {
        echo "FAIL: [$CODEC] expected 100 verdicts, got $ANSWERS" >&2
        exit 1
    }
    echo "   100/100 answered"

    echo "== [$CODEC] killing shard $SHARD's primary worker"
    kill_primary "$SHARD"

    echo "== [$CODEC] 100 queries with a dead primary (replica must answer)"
    ANSWERS=$(run_queries "$CODEC")
    [[ "$ANSWERS" -eq 100 ]] || {
        echo "FAIL: [$CODEC] expected 100 verdicts after shard kill, got $ANSWERS" >&2
        exit 1
    }
    echo "   100/100 answered through failover"
done

echo "OK: cluster served through a shard failure on both codecs"
