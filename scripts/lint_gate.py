#!/usr/bin/env python3
"""Static-analysis regression gate (the lint twin of perf_regress.py).

Runs ``reprolint`` (:mod:`repro.devtools`) over the source tree — the
per-module rules plus the whole-program flow pass — and fails when the
working tree has a violation the committed ``LINT_baseline.json`` does
not cover, or a stale waiver (a ``# reprolint: disable=`` comment
naming an unknown rule or matching no finding). Waived findings never
reach the gate; baseline entries exist so the bar can be adopted while
a legacy finding is still being burned down.

Workflow::

    python scripts/lint_gate.py              # gate: fail on new findings
    python scripts/lint_gate.py --changed    # fast path: git-changed files
    python scripts/lint_gate.py --budget 10  # also assert wall-clock
    python scripts/lint_gate.py --update     # re-freeze the baseline

``--changed`` lints only the ``.py`` files under ``src/repro`` that
git reports as modified against HEAD, running the per-module rules
only — the flow pass needs the whole program (a partial module set
would miss call edges and report nonsense), so interprocedural
findings still require the full run that CI performs.

Refreshing the baseline after deliberately accepting a finding is a
reviewed change — the baseline file is committed, so the acceptance
shows up in the diff just like a waiver does.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import devtools  # noqa: E402  (path bootstrap above)

DEFAULT_BASELINE = REPO_ROOT / "LINT_baseline.json"


def _changed_files(root: Path) -> "list[Path]":
    """``.py`` files under ``src/repro`` modified against HEAD
    (staged, unstaged, and untracked)."""
    out = subprocess.run(
        [
            "git",
            "-C",
            str(root),
            "status",
            "--porcelain",
            "--untracked-files=all",
            "--no-renames",
            "--",
            "src/repro",
        ],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    changed = []
    for line in out.splitlines():
        status, _, relpath = line[:2], line[2], line[3:]
        if "D" in status:
            continue
        path = root / relpath
        if path.suffix == ".py" and path.is_file():
            changed.append(path)
    return changed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or trees to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory violation paths are relative to",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="freeze the current findings as the new baseline and exit",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only git-modified files under src/repro (module "
            "rules only — the flow pass needs the whole program)"
        ),
    )
    parser.add_argument(
        "--budget",
        type=float,
        metavar="SECONDS",
        help="fail if the lint pass takes longer than this wall-clock",
    )
    args = parser.parse_args(argv)

    rules = devtools.all_rules()
    if args.changed:
        if args.paths:
            parser.error("--changed and explicit paths are exclusive")
        targets = _changed_files(args.root)
        if not targets:
            print("OK: no changed files under src/repro")
            return 0
        rules = tuple(r for r in rules if r.scope == "module")
    else:
        targets = args.paths or [args.root / "src" / "repro"]
    report = devtools.lint_report(targets, args.root, rules=rules)
    violations = report.violations
    timings = report.timings
    print(
        "lint timings: "
        f"parse={timings['parse']:.2f}s "
        f"module_rules={timings['module_rules']:.2f}s "
        f"flow={timings['flow']:.2f}s "
        f"total={timings['total']:.2f}s"
        + (
            f" (budget {args.budget:.0f}s)"
            if args.budget is not None
            else ""
        )
    )

    if args.update:
        devtools.save_baseline(args.baseline, violations)
        print(
            f"lint baseline updated -> {args.baseline} "
            f"({len(violations)} accepted violation(s))"
        )
        return 0

    failed = False
    if args.budget is not None and timings["total"] > args.budget:
        print(
            f"FAIL: lint pass took {timings['total']:.2f}s, over the "
            f"{args.budget:.0f}s budget",
            file=sys.stderr,
        )
        failed = True

    for issue in report.waiver_issues:
        print(
            f"{issue.path}:{issue.line}: stale waiver for "
            f"{issue.code} ({issue.reason})",
            file=sys.stderr,
        )
    if report.waiver_issues:
        print(
            f"FAIL: {len(report.waiver_issues)} stale waiver(s) — a "
            f"disable comment that suppresses nothing hides the next "
            f"real finding; delete it (keep the prose if the design "
            f"note still helps)",
            file=sys.stderr,
        )
        failed = True

    try:
        accepted = devtools.load_baseline(args.baseline)
    except devtools.BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    new = devtools.compare(violations, accepted)
    stale = devtools.stale_entries(violations, accepted)

    if new:
        print(devtools.render_text(new))
        print(
            f"\nFAIL: {len(new)} violation(s) not covered by "
            f"{args.baseline.name} — fix them, waive them with a "
            f"justified '# reprolint: disable=RULE', or (for an "
            f"accepted legacy finding) --update the baseline"
        )
        return 1
    if failed:
        return 1
    covered = len(violations) - len(new)
    print(
        f"OK: no new lint violations ({covered} baseline-covered, "
        f"{stale} stale baseline entr{'y' if stale == 1 else 'ies'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
