#!/usr/bin/env python3
"""Static-analysis regression gate (the lint twin of perf_regress.py).

Runs ``reprolint`` (:mod:`repro.devtools`) over the source tree and
fails when the working tree has a violation the committed
``LINT_baseline.json`` does not cover. Waived findings (inline
``# reprolint: disable=RULE`` with a justifying comment) never reach
the gate; baseline entries exist so the bar can be adopted while a
legacy finding is still being burned down.

Workflow::

    python scripts/lint_gate.py              # gate: fail on new findings
    python scripts/lint_gate.py --update     # re-freeze the baseline

Refreshing the baseline after deliberately accepting a finding is a
reviewed change — the baseline file is committed, so the acceptance
shows up in the diff just like a waiver does.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import devtools  # noqa: E402  (path bootstrap above)

DEFAULT_BASELINE = REPO_ROOT / "LINT_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or trees to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory violation paths are relative to",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="freeze the current findings as the new baseline and exit",
    )
    args = parser.parse_args(argv)

    targets = args.paths or [args.root / "src" / "repro"]
    violations = devtools.lint_paths(targets, args.root)

    if args.update:
        devtools.save_baseline(args.baseline, violations)
        print(
            f"lint baseline updated -> {args.baseline} "
            f"({len(violations)} accepted violation(s))"
        )
        return 0

    try:
        accepted = devtools.load_baseline(args.baseline)
    except devtools.BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    new = devtools.compare(violations, accepted)
    stale = devtools.stale_entries(violations, accepted)

    if new:
        print(devtools.render_text(new))
        print(
            f"\nFAIL: {len(new)} violation(s) not covered by "
            f"{args.baseline.name} — fix them, waive them with a "
            f"justified '# reprolint: disable=RULE', or (for an "
            f"accepted legacy finding) --update the baseline"
        )
        return 1
    covered = len(violations) - len(new)
    print(
        f"OK: no new lint violations ({covered} baseline-covered, "
        f"{stale} stale baseline entr{'y' if stale == 1 else 'ies'})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
