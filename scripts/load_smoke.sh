#!/usr/bin/env bash
# Load + elasticity smoke test: boot a 3-shard cluster via the CLI
# with auto-split enabled (aggressive knobs so heat is detected within
# seconds), replay ~10s of the hot-range mix through `repro load`, and
# assert that (a) the router split at least one shard online and
# (b) not a single query failed while it did. Exits non-zero on any
# failed step.
#
# Usage: scripts/load_smoke.sh  (from the repo root)

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

PORT="${LOAD_SMOKE_PORT:-7351}"
LOG="$(mktemp /tmp/load_smoke.XXXXXX.log)"
REPORT="$(mktemp /tmp/load_smoke.XXXXXX.report.json)"
CLUSTER_PID=""

cleanup() {
    if [[ -n "$CLUSTER_PID" ]] && kill -0 "$CLUSTER_PID" 2>/dev/null; then
        # Kill the whole process group: router plus shard workers.
        kill -- -"$CLUSTER_PID" 2>/dev/null || kill "$CLUSTER_PID" 2>/dev/null || true
        wait "$CLUSTER_PID" 2>/dev/null || true
    fi
    rm -f "$LOG" "$REPORT"
}
trap cleanup EXIT

echo "== booting cluster (3 shards, auto-split on) on port $PORT"
setsid python -m repro cluster \
    --shards 3 --port "$PORT" \
    --auto-split --split-interval 0.3 --split-factor 1.8 \
    --split-sustain 2 --split-min-hits 50 --max-shards 8 \
    >"$LOG" 2>&1 &
CLUSTER_PID=$!

for _ in $(seq 1 120); do
    if grep -q "cluster serving on" "$LOG"; then
        break
    fi
    if ! kill -0 "$CLUSTER_PID" 2>/dev/null; then
        echo "FAIL: cluster process died during startup" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done
grep -q "cluster serving on" "$LOG" || {
    echo "FAIL: cluster never reported serving" >&2
    cat "$LOG" >&2
    exit 1
}
grep -q "auto-split on" "$LOG" || {
    echo "FAIL: cluster did not report auto-split enabled" >&2
    exit 1
}

echo "== ~10s of the hot-range mix through the router"
python -m repro load \
    --mix hot-range --port "$PORT" \
    --queries 20000 --target-qps 2000 --conns 4 \
    --out "$REPORT" || {
    echo "FAIL: repro load exited non-zero" >&2
    cat "$LOG" >&2
    exit 1
}

echo "== asserting zero failed queries"
python - "$REPORT" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["sent"] == 20000, f"sent {report['sent']} != 20000"
assert report["failed"] == 0, f"{report['failed']} queries failed: {report}"
assert report["ok"] == 20000, f"only {report['ok']} ok"
print(f"   20000/20000 ok, p99(point)={report['point_latency_s']['p99']*1e3:.2f}ms")
EOF

echo "== asserting the hot range was split online"
grep "auto-split:" "$LOG" || {
    echo "FAIL: no auto-split happened during the run" >&2
    cat "$LOG" >&2
    exit 1
}
SHARDS_NOW=$(python -m repro query --hello --port "$PORT" \
    | python -c 'import json,sys; print(json.load(sys.stdin)["cluster"]["shards"])')
[[ "$SHARDS_NOW" -gt 3 ]] || {
    echo "FAIL: hello still reports $SHARDS_NOW shards (expected > 3)" >&2
    exit 1
}
echo "   cluster grew to $SHARDS_NOW shards with zero failed queries"

echo "OK: hot-range load split the cluster online, zero queries lost"
