#!/usr/bin/env python3
"""Performance regression gate.

Compares a fresh pytest-benchmark JSON export against the committed
baseline and fails when any benchmark's median slowed down by more
than the threshold (default 20%).

Workflow::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_primitives.py \
        benchmarks/bench_perf_runner.py benchmarks/bench_service.py \
        benchmarks/bench_stream.py benchmarks/bench_cluster.py \
        benchmarks/bench_loadgen.py benchmarks/bench_adversary.py \
        --benchmark-json=/tmp/bench_current.json -q
    python scripts/perf_regress.py /tmp/bench_current.json

The gated set covers the batch pipeline (primitives + runner), the
online service's query path (index build, in-process and over-the-wire
queries/sec on both the pinned JSON codec and the pipelined binary
codec, plus the 1000-client fan-in), the streaming ingestion path
(delta apply throughput, update-log roundtrip, query p99 under epoch
hot swap), the sharded cluster (scatter-gather batch throughput vs
single-process on JSON, pipelined binary batches end to end, point p99
during shard failover), the load-generation subsystem (schedule
build rate, harness SLO against a live cluster), and the adversary
lab (scenario build rate, end-to-end scenario scoring), so a slowdown
on any side of the serving story fails the same gate.

Refreshing the baseline after an intentional perf change::

    python scripts/perf_regress.py /tmp/bench_current.json --update

Benchmarks present on only one side are reported but never fail the
gate (new benches appear, old ones retire); a regression verdict needs
both medians. Microbenchmark medians on shared CI hardware jitter, so
the threshold is deliberately loose — the gate exists to catch real
regressions (an accidental O(n^2), a dropped cache), not 5% noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"


def _medians(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        sys.exit(f"error: benchmark file not found: {path}")
    except ValueError as exc:
        sys.exit(f"error: {path} is not valid JSON: {exc}")
    out = {}
    for bench in data.get("benchmarks", []):
        out[bench["name"]] = bench["stats"]["median"]
    if not out:
        sys.exit(f"error: no benchmarks in {path}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", type=Path, help="fresh --benchmark-json export"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed median slowdown fraction (default: 0.20)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with the current export and exit",
    )
    args = parser.parse_args(argv)

    if args.update:
        args.baseline.write_bytes(args.current.read_bytes())
        print(f"baseline updated from {args.current} -> {args.baseline}")
        return 0

    current = _medians(args.current)
    baseline = _medians(args.baseline)

    regressions = []
    width = max(len(name) for name in current | baseline)
    print(f"{'benchmark':{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in sorted(current | baseline):
        if name not in baseline:
            print(f"{name:{width}}  {'-':>12}  {current[name]*1e6:>10.1f}us  (new)")
            continue
        if name not in current:
            print(f"{name:{width}}  {baseline[name]*1e6:>10.1f}us  {'-':>12}  (gone)")
            continue
        old, new = baseline[name], current[name]
        change = (new - old) / old
        flag = ""
        if change > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, change))
        print(
            f"{name:{width}}  {old*1e6:>10.1f}us  {new*1e6:>10.1f}us  "
            f"{change:+6.1%}{flag}"
        )

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0%}:"
        )
        for name, change in regressions:
            print(f"  {name}: {change:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
