#!/usr/bin/env bash
# Adversary-lab smoke: run every registered scenario end to end
# through the CLI (build -> feeds -> index -> verdicts -> churn log ->
# streaming fidelity check) and verify the artefacts parse.
#
#   scripts/scenarios_smoke.sh            # all scenarios, seed 2020
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

OUT="$(mktemp -d /tmp/scenarios_smoke.XXXXXX)"
trap 'rm -rf "$OUT"' EXIT

python -m repro.cli scenarios run --seed 2020 --out "$OUT"

python - "$OUT" <<'EOF'
import json
import sys
from pathlib import Path

from repro.adversary import adversary_names

out = Path(sys.argv[1])
for name in adversary_names():
    artefact = out / f"{name}-seed2020.json"
    result = json.loads(artefact.read_text(encoding="utf-8"))
    assert result["format"] == "repro-adversary-result", artefact
    assert result["scenario"] == name, artefact
    assert result["counts"]["listings"] > 0, artefact
    assert (out / f"{name}-seed2020.log").stat().st_size > 0, name
print(f"scenarios_smoke: {len(adversary_names())} scenario(s) ok")
EOF
