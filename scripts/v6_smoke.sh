#!/usr/bin/env bash
# IPv6 serving smoke: the hitlist-v6 scenario compiled to a snapshot,
# served by `repro serve`, queried over the CLI with the binary codec,
# then hammered with the v6-hitlist load mix. Exercises the whole
# 128-bit path a v4-only regression could silently break: snapshot
# round trip, wire framing, dynamic-/64 verdicts, loadgen.
#
#   scripts/v6_smoke.sh                   # seed 2020
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

OUT="$(mktemp -d /tmp/v6_smoke.XXXXXX)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$OUT"
}
trap cleanup EXIT

SNAPSHOT="$OUT/hitlist-v6.idx"

# Compile the scenario index and pick a dynamic-pool address plus a
# confirmed-listed ip-day so the query step checks both verdict
# shapes against what the offline engine said before the snapshot
# round trip.
python - "$SNAPSHOT" "$OUT/ips.txt" <<'EOF'
import sys

from repro.adversary import scenario_index
from repro.net.family import V6
from repro.service.engine import QueryEngine
from repro.v6serve import HitlistV6Model

scenario = HitlistV6Model().build(2020)
index = scenario_index(scenario)
assert index.family is V6, index.family
index.save(sys.argv[1])

engine = QueryEngine(index)
listed_ip, listed_day = next(
    (ip, day)
    for ip, day in sorted(scenario.ledger.malicious_ip_days)
    if engine.query(ip, day).listed
)
dynamic = scenario.ledger.dynamic_prefixes[0]
with open(sys.argv[2], "w", encoding="utf-8") as fh:
    fh.write(str(listed_day) + "\n")
    fh.write(V6.format(dynamic.network | 1) + "\n")
    fh.write(V6.format(listed_ip) + "\n")
EOF

python -m repro.cli serve --snapshot "$SNAPSHOT" --port 0 \
    > "$OUT/serve.log" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^serving on [^:]*:\([0-9]*\) .*/\1/p' "$OUT/serve.log")"
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
        echo "v6_smoke: server died:" >&2
        cat "$OUT/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
[ -n "$PORT" ] || { echo "v6_smoke: server never bound" >&2; exit 1; }

mapfile -t LINES < "$OUT/ips.txt"
DAY="${LINES[0]}"
IPS=("${LINES[@]:1}")

# Point queries over the negotiated binary codec; --json so the
# verdict fields can be asserted.
python -m repro.cli query --port "$PORT" --day "$DAY" \
    --codec binary --json "${IPS[@]}" > "$OUT/verdicts.json"

python - "$OUT/verdicts.json" <<'EOF'
import json
import sys

verdicts = [
    json.loads(line)
    for line in open(sys.argv[1], encoding="utf-8")
    if line.strip()
]
assert len(verdicts) == 2, verdicts
rotating, listed = verdicts
assert rotating["dynamic"], rotating
assert rotating["reuse_kind"] == "dynamic", rotating
assert listed["listed"], listed
print("v6_smoke: verdicts ok")
EOF

# A v4 literal at the v6 plane must be a clean refusal, not a crash.
if python -m repro.cli query --port "$PORT" 192.0.2.1 \
    > "$OUT/reject.log" 2>&1; then
    echo "v6_smoke: v4 literal was not rejected" >&2
    exit 1
fi
grep -q "ipv4" "$OUT/reject.log" || {
    echo "v6_smoke: rejection did not name the family:" >&2
    cat "$OUT/reject.log" >&2
    exit 1
}

# The v6-hitlist mix end to end: schedule generation from the survey's
# de-aliased hitlist, 128-bit binary batches, SLO report.
python -m repro.cli load --mix v6-hitlist --port "$PORT" \
    --queries 4000 --target-qps 8000 --out "$OUT/load.json"

python - "$OUT/load.json" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1], encoding="utf-8"))
assert report["mix"] == "v6-hitlist", report["mix"]
assert report["failed"] == 0, report
assert report["ok"] == report["sent"] > 0, report
print("v6_smoke: load mix ok")
EOF

echo "v6_smoke: all checks passed"
