"""Reproduction of "Quantifying the Impact of Blocklisting in the Age
of Address Reuse" (Ramanathan et al., ACM IMC 2020).

The package provides, against a fully synthetic but ground-truthed
internet:

* a BitTorrent DHT crawler that detects NATed addresses by verifying
  simultaneous users with bt_ping (:mod:`repro.bittorrent`,
  :mod:`repro.natdetect`);
* a RIPE Atlas log pipeline that detects dynamically-addressed /24
  prefixes via knee-point and daily-change filters (:mod:`repro.ripe`);
* the 151-blocklist measurement substrate (:mod:`repro.blocklists`);
* the impact analysis joining the three (:mod:`repro.core`);
* the Cai et al. ICMP census baseline (:mod:`repro.baselines`);
* the operator survey analysis (:mod:`repro.survey`).

Quickest start::

    from repro.experiments import run_full, RunConfig
    run = run_full(RunConfig.small())
    print(run.report.render())
"""

from .experiments.runner import FullRun, RunConfig, cached_run, run_full
from .internet.scenario import Scenario, ScenarioConfig, build_scenario
from .core.report import HeadlineReport, PAPER_VALUES, build_report
from .core.reuse import ReuseAnalysis

__version__ = "1.0.0"

__all__ = [
    "FullRun",
    "RunConfig",
    "cached_run",
    "run_full",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "HeadlineReport",
    "PAPER_VALUES",
    "build_report",
    "ReuseAnalysis",
    "__version__",
]
