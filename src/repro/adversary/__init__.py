"""Adversary lab: evasive-abuse scenarios scored against the stack.

``repro.adversary`` turns the reproduction's question around — instead
of measuring what blocklisting *costs* under address reuse, it
measures how well blocklists *work* when abusers exploit reuse to
evade them. See :mod:`repro.adversary.models` for the scenario
simulations, :mod:`repro.adversary.scoring` for the Deri &
Fusco-style effectiveness metrics, and :mod:`repro.adversary.bridge`
for the streaming-plane fidelity check. ``repro scenarios list/run``
is the CLI front end.
"""

from .bridge import (
    StreamFidelityError,
    scenario_batches,
    verify_stream_fidelity,
    write_scenario_log,
)
from .models import (
    AbuseScenario,
    AbuseStint,
    AdversaryModel,
    GroundTruthLedger,
    adversary_names,
    get_adversary,
    scenario_rng,
)
from .scoring import (
    ScenarioScore,
    render_score_table,
    scenario_index,
    scenario_listings,
    score_scenario,
    score_with_engine,
    verdict_fields,
)

# Imported last, as a module rather than a name: the hitlist-v6 model
# lives in repro.v6serve (it is the v6 serving pipeline's acceptance
# scenario) and self-registers on import, which needs .models fully
# initialised first. The module form keeps the import cycle harmless
# when repro.v6serve is the entry point — at that moment the submodule
# exists in sys.modules but its names are not yet bound.
from ..v6serve import hitlist as _v6_hitlist  # noqa: F401

__all__ = [
    "AbuseScenario",
    "AbuseStint",
    "AdversaryModel",
    "GroundTruthLedger",
    "ScenarioScore",
    "StreamFidelityError",
    "adversary_names",
    "get_adversary",
    "render_score_table",
    "scenario_batches",
    "scenario_index",
    "scenario_listings",
    "scenario_rng",
    "score_scenario",
    "score_with_engine",
    "verdict_fields",
    "verify_stream_fidelity",
    "write_scenario_log",
]
