"""Scenario churn → stream update log, with a fidelity check.

A scored scenario is a static answer; production serves verdicts from
a *live* index that tails an update log
(:mod:`repro.stream`). This bridge closes that gap:

* :func:`write_scenario_log` replays the scenario's listing churn as
  day-advance delta batches into a real append-only update log — the
  same artefact ``repro serve --follow`` or a cluster tails, so an
  adversary scenario can drive a live SLO run
  (``repro load --churn-source``);
* :func:`verify_stream_fidelity` is the acceptance check: start a
  :class:`~repro.stream.follower.LogFollower` from the day-0 rollback
  of the scenario index, let it catch up on the log, score the
  scenario through the followed :class:`~repro.stream.epoch.
  EpochIndex`, and demand field-for-field verdict equality (and equal
  score documents) against the static path. If the streaming plane
  and the offline index ever disagree about a single verdict field,
  the adversary lab's numbers would not describe production — so a
  mismatch raises.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List

from ..service.engine import QueryEngine
from ..stream.delta import DeltaBatch, day_advance_batches
from ..stream.epoch import EpochIndex, index_as_of
from ..stream.follower import LogFollower
from ..stream.log import UpdateLogWriter
from .models import AbuseScenario
from .scoring import ScenarioScore, score_with_engine, verdict_fields

__all__ = [
    "StreamFidelityError",
    "scenario_batches",
    "verify_stream_fidelity",
    "write_scenario_log",
]

#: Scenario logs replay from the world's first day: the follower's
#: base state holds only listings already open on day 0.
LOG_START_DAY = 0


class StreamFidelityError(AssertionError):
    """The streaming scoring path disagreed with the static path."""


def scenario_batches(score: ScenarioScore) -> List[DeltaBatch]:
    """The scenario's churn as ordered day-advance delta batches."""
    return list(
        day_advance_batches(score.store, start_day=LOG_START_DAY)
    )


def write_scenario_log(score: ScenarioScore, path: "Path | str") -> Path:
    """Write the scenario's churn as an update log (replacing any
    existing file — a scenario log is a derived artefact)."""
    target = Path(path)
    if target.exists():
        target.unlink()
    scenario = score.scenario
    base = [
        listing
        for listing in score.store
        if listing.first_day <= LOG_START_DAY
    ]
    meta = {
        "scenario": scenario.name,
        "seed": scenario.seed,
        "horizon_days": scenario.horizon_days,
        "windows": [list(window) for window in scenario.windows],
        "ips": len({listing.ip for listing in base}),
        "intervals": len(base),
    }
    if scenario.family != "ipv4":
        # The family key widens the reader's delta-ip validation;
        # leaving it off v4 logs keeps them byte-identical.
        meta["family"] = scenario.family
    writer = UpdateLogWriter(target, start_day=LOG_START_DAY, meta=meta)
    for batch in scenario_batches(score):
        writer.append(batch)
    return target


def _streamed_engine(
    score: ScenarioScore,
    log_path: "Path | str",
    last_seq: int,
    timeout: float,
) -> QueryEngine:
    """An engine over the epoch state a live follower reached after
    catching up on the whole scenario log."""
    base = index_as_of(score.index, LOG_START_DAY)
    epochs = EpochIndex(base, day=LOG_START_DAY)
    if last_seq == 0:
        return QueryEngine(epochs)
    follower = LogFollower(log_path, epochs, poll_interval=0.01)
    with follower:
        if not follower.wait_for_seq(last_seq, timeout=timeout):
            error = follower.stats().get("error")
            raise StreamFidelityError(
                f"follower failed to reach seq {last_seq} on "
                f"{log_path}: {error or 'timeout'}"
            )
    return QueryEngine(epochs)


def verify_stream_fidelity(
    score: ScenarioScore,
    log_path: "Path | str",
    *,
    timeout: float = 60.0,
) -> Dict[str, Any]:
    """Score through a live follower and compare to the static path.

    Returns a small summary (batches applied, verdicts compared) on
    success; raises :class:`StreamFidelityError` naming the first
    divergent verdict otherwise. ``timeout`` bounds how long the
    follower may take to catch up on the log."""
    batches = scenario_batches(score)
    last_seq = batches[-1].seq if batches else 0
    engine = _streamed_engine(score, log_path, last_seq, timeout)
    streamed_verdicts, streamed_result = score_with_engine(
        score.scenario, engine
    )
    for key in sorted(score.verdicts):
        static_row = verdict_fields(score.verdicts[key])
        streamed_row = verdict_fields(streamed_verdicts[key])
        if static_row != streamed_row:
            raise StreamFidelityError(
                f"verdict mismatch for ip={key[0]} day={key[1]}: "
                f"static {static_row} != streamed {streamed_row}"
            )
    static_result = {
        k: v for k, v in score.result.items() if k != "counts"
    }
    streamed_cmp = {
        k: v for k, v in streamed_result.items() if k != "counts"
    }
    if static_result != streamed_cmp:
        raise StreamFidelityError(
            "score documents diverge despite identical verdicts — "
            "scoring is not a pure function of the verdicts"
        )
    return {
        "batches": last_seq,
        "verdicts_compared": len(score.verdicts),
        "epoch": engine.epoch_state()[0],
    }
