"""Pluggable evasive-abuse models with ground-truth ledgers.

The measurement pipeline asks what blocklisting *costs* under address
reuse; this package asks how well it *works* when the abuser actively
exploits reuse. Each :class:`AdversaryModel` simulates one evasion
strategy day by day over a small, fully-controlled address world and
returns an :class:`AbuseScenario`: the abuse-event stream the feeds
observe, plus a :class:`GroundTruthLedger` recording what was *really*
malicious — which ``(ip, day)`` pairs carried abuse, which innocent
users held or shared those addresses, and the per-address tenure
stints the time-to-detection curves are computed over.

Four strategies ship (Deri & Fusco's effectiveness framing):

* **fast-flux** — attackers redraw a fresh dynamic-pool address every
  day, so listings chronically lag the abuse and land on the innocent
  subscribers who inherit the address;
* **cgn-shelter** — one abuser hides among hundreds of users behind a
  carrier-grade-NAT gateway IP; listing the gateway is detection *and*
  mass collateral damage at once;
* **campaign-hop** — a coordinated botnet burns ~20 addresses of one
  dynamic /24 for a few days, then hops to the next block, leaving a
  trail of stale listings behind;
* **slow-drip** — static-address attackers emit just often enough to
  matter but rarely enough to stay under feed sensitivity and let
  removal TTLs expire between events.

Everything is a pure function of ``(scenario name, seed)``: every
random draw comes from a stream derived by hashing both, so the same
pair reproduces a byte-identical event stream and ledger (a pinned
test).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..blocklists.timeline import Window
from ..internet.abuse import AbuseCategory, AbuseEvent, event_sort_key
from ..net.ipv4 import Prefix, ip_to_int

__all__ = [
    "AbuseScenario",
    "AbuseStint",
    "AdversaryModel",
    "GroundTruthLedger",
    "adversary_names",
    "get_adversary",
    "scenario_rng",
]

#: Simulated days per scenario (one collection window covering all).
HORIZON_DAYS = 60

#: (ip, day) — the unit detection and false positives are scored on.
IpDay = Tuple[int, int]


def scenario_rng(name: str, seed: int, stream: str) -> random.Random:
    """A named random stream for one ``(scenario, seed)`` pair.

    Derivation by hash means streams are independent: adding draws to
    one can never perturb another, which is what keeps the event
    stream byte-identical across code that consumes the ledger
    differently."""
    digest = hashlib.sha256(
        f"{name}:{seed}:{stream}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class AbuseStint:
    """One attacker's continuous tenure on one address.

    ``first_day``/``last_day`` bound the abuse activity during the
    tenure (inclusive). Time-to-detection is measured from
    ``first_day``; a stint whose address is never listed while (or
    after) it runs has fully evaded."""

    attacker: str
    ip: int
    first_day: int
    last_day: int


@dataclass
class GroundTruthLedger:
    """What actually happened — the scorer's answer key.

    The feeds only ever see :class:`AbuseEvent` samples; the ledger
    keeps the omniscient view: truly-malicious ip-days, the innocent
    user population sharing each address each day (bystanders), and
    the reuse facts (NAT gateways, dynamic pools) the reputation index
    is built from."""

    #: Every (ip, day) that carried real abuse.
    malicious_ip_days: FrozenSet[IpDay] = frozenset()
    #: (ip, day) -> number of innocent users on that address that day.
    innocent_user_days: Dict[IpDay, int] = field(default_factory=dict)
    #: Per-address attacker tenures, for time-to-detection curves.
    stints: Tuple[AbuseStint, ...] = ()
    #: CGN gateway address -> users behind it (feeds the NAT verdict).
    nated_ips: Dict[int, int] = field(default_factory=dict)
    #: Dynamically-reassigned pools (feeds the dynamic verdict).
    dynamic_prefixes: Tuple[Prefix, ...] = ()
    #: Origin AS of every address in play.
    asn_by_ip: Dict[int, int] = field(default_factory=dict)

    def benign_ip_days(self) -> List[IpDay]:
        """Innocent-held ip-days that carried no abuse — the false-
        positive denominator, sorted for deterministic iteration."""
        return sorted(
            key
            for key in self.innocent_user_days
            if key not in self.malicious_ip_days
        )

    def eval_points(self) -> List[IpDay]:
        """Every ip-day the scorer queries, sorted."""
        return sorted(
            set(self.malicious_ip_days) | set(self.innocent_user_days)
        )

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form (sorted, no sets)."""
        return {
            "malicious_ip_days": sorted(
                list(pair) for pair in self.malicious_ip_days
            ),
            "innocent_user_days": [
                [ip, day, users]
                for (ip, day), users in sorted(
                    self.innocent_user_days.items()
                )
            ],
            "stints": [
                [s.attacker, s.ip, s.first_day, s.last_day]
                for s in self.stints
            ],
            "nated_ips": [
                [ip, users] for ip, users in sorted(self.nated_ips.items())
            ],
            "dynamic_prefixes": [
                str(prefix) for prefix in self.dynamic_prefixes
            ],
            "asn_by_ip": [
                [ip, asn] for ip, asn in sorted(self.asn_by_ip.items())
            ],
        }


@dataclass(frozen=True)
class AbuseScenario:
    """One built scenario: the observable stream plus the answer key.

    ``family`` names the address family of every ``ip`` in the events
    and ledger (``"ipv4"`` unless a model says otherwise — the
    hitlist-v6 model plays out over 128-bit addresses)."""

    name: str
    seed: int
    horizon_days: int
    windows: Tuple[Window, ...]
    events: Tuple[AbuseEvent, ...]
    ledger: GroundTruthLedger
    family: str = "ipv4"

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for one
        ``(name, seed)`` pair, which is the determinism contract the
        tests pin."""
        payload = {
            "format": "repro-adversary-scenario",
            "version": 1,
            "name": self.name,
            "seed": self.seed,
            "horizon_days": self.horizon_days,
            "windows": [list(window) for window in self.windows],
            "events": [
                [e.day, e.ip, e.user_key, e.category]
                for e in self.events
            ],
            "ledger": self.ledger.as_dict(),
        }
        # Key present only off the v4 default, keeping pre-family v4
        # scenario documents byte-identical.
        if self.family != "ipv4":
            payload["family"] = self.family
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
        )


class AdversaryModel:
    """One evasion strategy; ``build(seed)`` emits its scenario.

    Implementations must be pure functions of the seed (all draws via
    :func:`scenario_rng`) — the registry and the CLI treat them as
    stateless singletons."""

    name: str = ""
    description: str = ""

    def build(self, seed: int) -> AbuseScenario:
        raise NotImplementedError


class _DynamicPool:
    """Per-day exclusive address assignment inside dynamic prefixes.

    At most one holder per address at a time, so an innocent can only
    inherit an attacker's address *after* the attacker released it —
    exactly the reassignment sequence that turns a lagged listing into
    a false positive."""

    def __init__(
        self, prefixes: Sequence[Prefix], rng: random.Random
    ) -> None:
        self._free: List[int] = [
            ip
            for prefix in prefixes
            for ip in range(prefix.first(), prefix.last() + 1)
        ]
        self._rng = rng
        self._held: Dict[str, int] = {}

    def acquire(self, holder: str) -> int:
        """Release the holder's current address and lease a fresh one."""
        self.release(holder)
        index = self._rng.randrange(len(self._free))
        self._free[index], self._free[-1] = (
            self._free[-1],
            self._free[index],
        )
        ip = self._free.pop()
        self._held[holder] = ip
        return ip

    def release(self, holder: str) -> None:
        ip = self._held.pop(holder, None)
        if ip is not None:
            self._free.append(ip)

    def address_of(self, holder: str) -> int:
        return self._held[holder]


class _StintTracker:
    """Folds per-day attacker activity into per-address stints."""

    def __init__(self) -> None:
        self._open: Dict[str, List[int]] = {}  # attacker -> [ip, first, last]
        self._closed: List[AbuseStint] = []

    def record(self, attacker: str, ip: int, day: int) -> None:
        current = self._open.get(attacker)
        if current is not None and current[0] == ip:
            current[2] = day
            return
        if current is not None:
            self.close(attacker)
        self._open[attacker] = [ip, day, day]

    def close(self, attacker: str) -> None:
        current = self._open.pop(attacker, None)
        if current is not None:
            self._closed.append(
                AbuseStint(attacker, current[0], current[1], current[2])
            )

    def finish(self) -> Tuple[AbuseStint, ...]:
        for attacker in sorted(self._open):
            self.close(attacker)
        return tuple(
            sorted(
                self._closed,
                key=lambda s: (s.attacker, s.first_day, s.ip),
            )
        )


def _build_scenario(
    name: str,
    seed: int,
    events: List[AbuseEvent],
    ledger: GroundTruthLedger,
) -> AbuseScenario:
    return AbuseScenario(
        name=name,
        seed=seed,
        horizon_days=HORIZON_DAYS,
        windows=((0, HORIZON_DAYS - 1),),
        events=tuple(sorted(events, key=event_sort_key)),
        ledger=ledger,
    )


class FastFluxModel(AdversaryModel):
    """Daily address rotation inside dynamic pools.

    Eight attackers redraw a fresh pool address every active day and
    emit a burst of events from it; 120 innocent subscribers lease
    addresses from the same pools for about a week at a time. Lagged
    or TTL-extended listings therefore overwhelmingly land on whoever
    holds the address *next* — the canonical dynamic-reuse injustice,
    now driven by a deliberate evader."""

    name = "fast-flux"
    description = (
        "attackers rotate to a fresh dynamic-pool address daily; "
        "innocent subscribers inherit the listings"
    )

    POOLS = 4
    ATTACKERS = 8
    INNOCENTS = 180
    ACTIVE = (4, 52)  # attacker activity span, inclusive

    def build(self, seed: int) -> AbuseScenario:
        rng = scenario_rng(self.name, seed, "world")
        prefixes = tuple(
            Prefix(ip_to_int(f"81.10.{block}.0"), 24)
            for block in range(self.POOLS)
        )
        pool = _DynamicPool(prefixes, rng)
        categories = {
            f"ff-attacker-{i}": rng.choice(
                (AbuseCategory.SPAM, AbuseCategory.MALWARE,
                 AbuseCategory.BRUTEFORCE)
            )
            for i in range(self.ATTACKERS)
        }
        lease_until = {
            f"ff-user-{i}": rng.randint(1, 8)
            for i in range(self.INNOCENTS)
        }
        for user in sorted(lease_until):
            pool.acquire(user)

        events: List[AbuseEvent] = []
        malicious: Set[IpDay] = set()
        innocent: Dict[IpDay, int] = {}
        stints = _StintTracker()
        first_active, last_active = self.ACTIVE
        for day in range(HORIZON_DAYS):
            for user in sorted(lease_until):
                if day >= lease_until[user]:
                    pool.acquire(user)
                    lease_until[user] = day + rng.randint(5, 9)
                key = (pool.address_of(user), day)
                innocent[key] = innocent.get(key, 0) + 1
            for attacker in sorted(categories):
                if not first_active <= day <= last_active:
                    if day == last_active + 1:
                        pool.release(attacker)
                    continue
                ip = pool.acquire(attacker)
                malicious.add((ip, day))
                stints.record(attacker, ip, day)
                for _ in range(2):
                    events.append(
                        AbuseEvent(
                            day=day,
                            ip=ip,
                            user_key=attacker,
                            category=categories[attacker],
                        )
                    )
        asn_by_ip = {
            ip: 64500 + (ip >> 8) % self.POOLS
            for (ip, _) in set(innocent) | malicious
        }
        ledger = GroundTruthLedger(
            malicious_ip_days=frozenset(malicious),
            innocent_user_days=innocent,
            stints=stints.finish(),
            dynamic_prefixes=prefixes,
            asn_by_ip=asn_by_ip,
        )
        return _build_scenario(self.name, seed, events, ledger)


class CgnShelterModel(AdversaryModel):
    """Abusers sheltered behind carrier-grade NAT gateways.

    Six gateway addresses each front hundreds of users; two of them
    shelter one persistent abuser each. The gateway address is static,
    so feeds detect it quickly and keep it listed — but every listed
    day blocks the whole innocent population behind it. Detection and
    collateral damage are the same act; only a reuse-aware policy can
    split them."""

    name = "cgn-shelter"
    description = (
        "persistent abusers hide among hundreds of users behind "
        "static CGN gateway addresses"
    )

    GATEWAYS = 6
    SHELTERED = 2  # gateways hosting one abuser each
    ACTIVE = (5, 55)

    def build(self, seed: int) -> AbuseScenario:
        rng = scenario_rng(self.name, seed, "world")
        gateways = [
            ip_to_int(f"100.64.{block}.1") for block in range(self.GATEWAYS)
        ]
        users_behind = {
            gateway: rng.randint(150, 400) for gateway in gateways
        }
        abuser_category = {
            f"cgn-abuser-{i}": rng.choice(
                (AbuseCategory.BRUTEFORCE, AbuseCategory.SPAM)
            )
            for i in range(self.SHELTERED)
        }

        events: List[AbuseEvent] = []
        malicious: Set[IpDay] = set()
        innocent: Dict[IpDay, int] = {}
        stints = _StintTracker()
        first_active, last_active = self.ACTIVE
        for day in range(HORIZON_DAYS):
            for index, gateway in enumerate(gateways):
                sheltered = index < self.SHELTERED
                innocent[(gateway, day)] = users_behind[gateway] - int(
                    sheltered
                )
                if not sheltered:
                    continue
                abuser = f"cgn-abuser-{index}"
                if first_active <= day <= last_active and (
                    rng.random() < 0.85
                ):
                    malicious.add((gateway, day))
                    stints.record(abuser, gateway, day)
                    events.append(
                        AbuseEvent(
                            day=day,
                            ip=gateway,
                            user_key=abuser,
                            category=abuser_category[abuser],
                        )
                    )
        ledger = GroundTruthLedger(
            malicious_ip_days=frozenset(malicious),
            innocent_user_days=innocent,
            stints=stints.finish(),
            nated_ips=users_behind,
            asn_by_ip={gateway: 64610 for gateway in gateways},
        )
        return _build_scenario(self.name, seed, events, ledger)


class CampaignHopModel(AdversaryModel):
    """A coordinated botnet hopping across dynamic /24s.

    Eighteen bots burn addresses in one dynamic /24 for a few dwell
    days — DDoS plus the bruteforce noise a botnet brings along — then
    the whole campaign hops to the next block. The listings it leaves
    behind keep covering the block while ordinary subscribers cycle
    back onto the burned addresses."""

    name = "campaign-hop"
    description = (
        "a DDoS botnet burns one dynamic /24 for a few days, then "
        "hops to the next block, leaving stale listings behind"
    )

    BLOCKS = 10
    BOTS = 18
    INNOCENTS = 200
    DWELL_DAYS = 4
    START_DAY = 4

    def build(self, seed: int) -> AbuseScenario:
        rng = scenario_rng(self.name, seed, "world")
        prefixes = tuple(
            Prefix(ip_to_int(f"92.40.{block}.0"), 24)
            for block in range(self.BLOCKS)
        )
        pool = _DynamicPool(prefixes, rng)
        hop_order = list(range(self.BLOCKS))
        rng.shuffle(hop_order)
        bots = [f"hop-bot-{i}" for i in range(self.BOTS)]
        lease_until = {
            f"hop-user-{i}": rng.randint(1, 9)
            for i in range(self.INNOCENTS)
        }
        for user in sorted(lease_until):
            pool.acquire(user)

        events: List[AbuseEvent] = []
        malicious: Set[IpDay] = set()
        innocent: Dict[IpDay, int] = {}
        stints = _StintTracker()
        for day in range(HORIZON_DAYS):
            for user in sorted(lease_until):
                if day >= lease_until[user]:
                    pool.acquire(user)
                    lease_until[user] = day + rng.randint(6, 10)
                key = (pool.address_of(user), day)
                innocent[key] = innocent.get(key, 0) + 1
            dwell = (day - self.START_DAY) // self.DWELL_DAYS
            if day < self.START_DAY or dwell >= len(hop_order):
                if dwell == len(hop_order):
                    for bot in bots:
                        pool.release(bot)
                continue
            block = prefixes[hop_order[dwell]]
            if (day - self.START_DAY) % self.DWELL_DAYS == 0:
                # Hop day: the whole campaign re-homes into the block.
                for bot in bots:
                    ip = pool.acquire(bot)
                    while not block.contains(ip):
                        ip = pool.acquire(bot)
            for bot in bots:
                ip = pool.address_of(bot)
                malicious.add((ip, day))
                stints.record(bot, ip, day)
                # The attack itself plus the credential-stuffing noise
                # a botnet brings along: the DDoS event is nearly
                # invisible to the damped feeds, but the bruteforce
                # side draws listings whose *policy category* stays
                # DDoS-free — only the rare direct DDoS pickup makes a
                # reuse-aware operator hard-block the block.
                for category in (
                    AbuseCategory.DDOS, AbuseCategory.BRUTEFORCE
                ):
                    events.append(
                        AbuseEvent(
                            day=day,
                            ip=ip,
                            user_key=bot,
                            category=category,
                        )
                    )
        asn_by_ip = {
            ip: 64550 + (ip >> 8) % self.BLOCKS
            for (ip, _) in set(innocent) | malicious
        }
        ledger = GroundTruthLedger(
            malicious_ip_days=frozenset(malicious),
            innocent_user_days=innocent,
            stints=stints.finish(),
            dynamic_prefixes=prefixes,
            asn_by_ip=asn_by_ip,
        )
        return _build_scenario(self.name, seed, events, ledger)


class SlowDripModel(AdversaryModel):
    """Static-address abuse paced to stay under feed sensitivity.

    Twelve attackers on plain static addresses emit one event every
    week or so — rare enough that most per-event sensitivity draws
    miss, and any listing's removal TTL usually expires before the
    next event lands. A clean static control population measures the
    false-positive floor."""

    name = "slow-drip"
    description = (
        "static attackers drip one event every ~week, under feed "
        "sensitivity and across removal TTLs"
    )

    ATTACKERS = 12
    CONTROLS = 30
    ACTIVE = (2, 57)

    def build(self, seed: int) -> AbuseScenario:
        rng = scenario_rng(self.name, seed, "world")
        events: List[AbuseEvent] = []
        malicious: Set[IpDay] = set()
        stints = _StintTracker()
        first_active, last_active = self.ACTIVE
        asn_by_ip: Dict[int, int] = {}
        for index in range(self.ATTACKERS):
            attacker = f"drip-attacker-{index}"
            ip = ip_to_int(f"203.0.113.{10 + index}")
            asn_by_ip[ip] = 64700
            # Malware-heavy on purpose: the damped catalog watches
            # those categories with its least sensitive feeds, which
            # is exactly where a patient abuser hides.
            category = rng.choice(
                (
                    AbuseCategory.SCAN,
                    AbuseCategory.MALWARE,
                    AbuseCategory.MALWARE,
                )
            )
            day = rng.randint(first_active, first_active + 6)
            while day <= last_active:
                malicious.add((ip, day))
                stints.record(attacker, ip, day)
                events.append(
                    AbuseEvent(
                        day=day,
                        ip=ip,
                        user_key=attacker,
                        category=category,
                    )
                )
                day += rng.randint(7, 11)
        innocent: Dict[IpDay, int] = {}
        for index in range(self.CONTROLS):
            ip = ip_to_int(f"198.51.100.{10 + index}")
            asn_by_ip[ip] = 64701
            for day in range(HORIZON_DAYS):
                innocent[(ip, day)] = 1
        ledger = GroundTruthLedger(
            malicious_ip_days=frozenset(malicious),
            innocent_user_days=innocent,
            stints=stints.finish(),
            asn_by_ip=asn_by_ip,
        )
        return _build_scenario(self.name, seed, events, ledger)


#: Registry in presentation order (the CLI's listing order).
_REGISTRY: Dict[str, AdversaryModel] = {
    model.name: model
    for model in (
        FastFluxModel(),
        CgnShelterModel(),
        CampaignHopModel(),
        SlowDripModel(),
    )
}


def register_adversary(model: AdversaryModel) -> AdversaryModel:
    """Add a model to the registry (idempotent per name).

    Models living outside this module — the IPv6 hitlist scenario in
    :mod:`repro.v6serve` — register themselves through here so the CLI
    and tests see one registry."""
    if not model.name:
        raise ValueError("adversary model needs a name")
    _REGISTRY[model.name] = model
    return model


def adversary_names() -> Tuple[str, ...]:
    """Registered scenario names, registry-ordered."""
    return tuple(_REGISTRY)


def get_adversary(name: str) -> AdversaryModel:
    """Look up a model; :class:`KeyError` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise KeyError(
            f"unknown adversary scenario {name!r} (known: {known})"
        ) from None
