"""Blocklist-effectiveness scoring over a ground-truth ledger.

A scenario's events run through the *production* observation path —
:func:`repro.blocklists.feed.generate_listings` with the full
151-list catalog — and the resulting listings are compiled into a real
:class:`~repro.service.index.ReputationIndex` whose reuse facts (NAT
gateways, dynamic pools) come from the scenario ledger. Scoring then
queries a :class:`~repro.service.engine.QueryEngine` verdict for every
ip-day the ledger knows about and confronts the verdicts with the
answer key, in the style of Deri & Fusco's "Evaluating IP Blacklists
Effectiveness":

* **detection rate** — truly-malicious ip-days some list covered;
* **false-positive rate** — innocent-only ip-days a list covered
  (stale listings inherited through address reuse);
* **unjust blocking** — innocent *user-days* dropped by a policy,
  compared between the naive block-every-listing policy and the
  paper's Section 6 reuse-aware policy (greylist reused addresses
  unless a DDoS list is involved);
* **time-to-detection / time-to-evasion** — per attacker-tenure
  (:class:`~repro.adversary.models.AbuseStint`): days from the first
  abusive day on an address until any list covers it, and days the
  attacker kept using an address after it was first listed (a fast
  rotator's evasion latency is ~0 — it is gone before the listing
  lands).

The result is a versioned JSON-ready document; :func:`render_score_
table` renders the cross-scenario comparison the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..blocklists.catalog import BlocklistInfo, build_catalog
from ..blocklists.timeline import ListingStore
from ..core.greylist import BlockAction
from ..net.family import family_named
from ..service.engine import QueryEngine, Verdict
from ..service.index import ReputationIndex, policy_category
from .models import AbuseScenario, IpDay, scenario_rng

__all__ = [
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "ScenarioScore",
    "VERDICT_FIELDS",
    "render_score_table",
    "scenario_index",
    "scenario_listings",
    "score_scenario",
    "score_with_engine",
    "verdict_fields",
]

RESULT_FORMAT = "repro-adversary-result"
RESULT_VERSION = 1

#: Verdict fields two scoring paths must agree on field-for-field.
#: ``epoch``/``seq`` are deliberately absent: they identify *which*
#: index state answered, not *what* it answered.
VERDICT_FIELDS = (
    "ip", "day", "listed", "lists", "nated", "dynamic", "unjust",
    "reuse_kind", "users", "asn", "action",
)


def verdict_fields(verdict: Verdict) -> Tuple[Any, ...]:
    """The comparable projection of one verdict."""
    return tuple(getattr(verdict, name) for name in VERDICT_FIELDS)


def scenario_listings(scenario: AbuseScenario) -> ListingStore:
    """Run the scenario's events through every catalog list.

    The feed sampling stream is derived from the scenario identity, so
    listings are as deterministic as the events themselves."""
    return generate_listings_for(scenario, build_catalog())


def generate_listings_for(
    scenario: AbuseScenario, catalog: Sequence[BlocklistInfo]
) -> ListingStore:
    from ..blocklists.feed import generate_listings

    rng = scenario_rng(scenario.name, scenario.seed, "feed")
    return generate_listings(
        scenario.events,
        catalog,
        rng,
        horizon_days=scenario.horizon_days,
    )


def scenario_index(
    scenario: AbuseScenario, store: Optional[ListingStore] = None
) -> ReputationIndex:
    """Compile scenario listings + ledger reuse facts into an index.

    This is the same constructor shape the batch pipeline uses; the
    only difference is that NAT users, dynamic prefixes and AS origins
    come from the ground-truth ledger instead of the measurement
    study's detectors."""
    if store is None:
        store = scenario_listings(scenario)
    catalog = build_catalog()
    intervals: Dict[int, List[Tuple[int, int, str]]] = {}
    for listing in store:
        intervals.setdefault(listing.ip, []).append(
            (listing.first_day, listing.last_day, listing.list_id)
        )
    ledger = scenario.ledger
    return ReputationIndex(
        windows=scenario.windows,
        intervals=intervals,
        nated=set(ledger.nated_ips),
        users=dict(ledger.nated_ips),
        dynamic_prefixes=ledger.dynamic_prefixes,
        categories={
            info.list_id: policy_category(info) for info in catalog
        },
        asn_by_ip=dict(ledger.asn_by_ip),
        family=family_named(scenario.family),
    )


@dataclass
class ScenarioScore:
    """One scored scenario: artefact document plus the working state
    the streaming-fidelity check replays against."""

    scenario: AbuseScenario
    store: ListingStore
    index: ReputationIndex
    verdicts: Dict[IpDay, Verdict]
    result: Dict[str, Any]


def _histogram(values: List[int]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for value in sorted(values):
        counts[str(value)] = counts.get(str(value), 0) + 1
    return counts


def _median(values: List[int]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _rate(hits: int, total: int) -> float:
    return round(hits / total, 4) if total else 0.0


def score_with_engine(
    scenario: AbuseScenario, engine: QueryEngine
) -> Tuple[Dict[IpDay, Verdict], Dict[str, Any]]:
    """Score the scenario through an engine's verdicts.

    The engine may wrap the static scenario index *or* a streaming
    :class:`~repro.stream.epoch.EpochIndex` that followed the
    scenario's churn log — the fidelity check calls this twice and
    demands identical output."""
    ledger = scenario.ledger
    malicious = ledger.malicious_ip_days
    verdicts: Dict[IpDay, Verdict] = {
        (ip, day): engine.query(ip, day)
        for ip, day in ledger.eval_points()
    }
    benign = ledger.benign_ip_days()

    # -- per-blocklist detection vs false positives --------------------
    per_list: Dict[str, Dict[str, int]] = {}
    for key in sorted(malicious):
        for list_id in verdicts[key].lists:
            row = per_list.setdefault(
                list_id, {"detected": 0, "false_positive": 0}
            )
            row["detected"] += 1
    for key in benign:
        for list_id in verdicts[key].lists:
            row = per_list.setdefault(
                list_id, {"detected": 0, "false_positive": 0}
            )
            row["false_positive"] += 1
    blocklists = {
        list_id: {
            "detected_ip_days": row["detected"],
            "detection_rate": _rate(row["detected"], len(malicious)),
            "false_positive_ip_days": row["false_positive"],
            "false_positive_rate": _rate(
                row["false_positive"], len(benign)
            ),
        }
        for list_id, row in sorted(per_list.items())
    }

    # -- any-list overall rates ----------------------------------------
    detected = sum(1 for key in malicious if verdicts[key].listed)
    false_pos = sum(1 for key in benign if verdicts[key].listed)
    unjust_days = sum(1 for key in benign if verdicts[key].unjust)

    # -- policy comparison: naive block vs Section 6 reuse-aware -------
    policies: Dict[str, Dict[str, Any]] = {}
    for policy in ("block-listed", "reuse-aware"):
        def blocks(verdict: Verdict) -> bool:
            if policy == "block-listed":
                return verdict.listed
            return verdict.action == BlockAction.BLOCK

        blocked_malicious = sum(
            1 for key in malicious if blocks(verdicts[key])
        )
        unjust_user_days = sum(
            ledger.innocent_user_days[key]
            for key in benign
            if blocks(verdicts[key])
        )
        # Users sharing an address with live abuse are collateral too
        # (the CGN case: blocking the gateway on an abusive day still
        # drops every innocent behind it).
        shared_user_days = sum(
            ledger.innocent_user_days.get(key, 0)
            for key in sorted(malicious)
            if blocks(verdicts[key])
        )
        policies[policy] = {
            "blocked_malicious_ip_days": blocked_malicious,
            "blocked_malicious_rate": _rate(
                blocked_malicious, len(malicious)
            ),
            "unjust_user_days": unjust_user_days + shared_user_days,
            "unjust_user_days_stale": unjust_user_days,
            "unjust_user_days_shared": shared_user_days,
        }

    # -- time-to-detection / time-to-evasion over stints ---------------
    listed_days_of: Dict[int, List[int]] = {}
    for key in sorted(verdicts):
        if verdicts[key].listed:
            listed_days_of.setdefault(key[0], []).append(key[1])
    ttd: List[int] = []
    tte: List[int] = []
    evaded = 0
    for stint in ledger.stints:
        first_listed = next(
            (
                day
                for day in listed_days_of.get(stint.ip, ())
                if day >= stint.first_day
            ),
            None,
        )
        if first_listed is None:
            evaded += 1
            continue
        ttd.append(first_listed - stint.first_day)
        tte.append(max(0, stint.last_day - first_listed))

    result: Dict[str, Any] = {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "scenario": scenario.name,
        "seed": scenario.seed,
        "counts": {
            "events": len(scenario.events),
            "malicious_ip_days": len(malicious),
            "benign_ip_days": len(benign),
            "innocent_user_days": sum(
                ledger.innocent_user_days.values()
            ),
            "stints": len(ledger.stints),
            "lists_triggered": len(blocklists),
        },
        "overall": {
            "detection_rate": _rate(detected, len(malicious)),
            "false_positive_rate": _rate(false_pos, len(benign)),
            "unjust_listed_ip_days": unjust_days,
        },
        "policies": policies,
        "blocklists": blocklists,
        "time_to_detection": {
            "detected_stints": len(ttd),
            "evaded_stints": evaded,
            "median_days": _median(ttd),
            "histogram_days": _histogram(ttd),
        },
        "time_to_evasion": {
            "median_days": _median(tte),
            "histogram_days": _histogram(tte),
        },
    }
    return verdicts, result


def score_scenario(scenario: AbuseScenario) -> ScenarioScore:
    """The offline scoring path: listings → index → engine → scores."""
    store = scenario_listings(scenario)
    index = scenario_index(scenario, store)
    verdicts, result = score_with_engine(scenario, QueryEngine(index))
    result["counts"]["listings"] = len(store)
    return ScenarioScore(
        scenario=scenario,
        store=store,
        index=index,
        verdicts=verdicts,
        result=result,
    )


def render_score_table(results: List[Dict[str, Any]]) -> str:
    """The cross-scenario comparison table the CLI prints."""
    from ..analysis.tables import render_table

    rows = []
    for result in results:
        overall = result["overall"]
        naive = result["policies"]["block-listed"]
        aware = result["policies"]["reuse-aware"]
        ttd = result["time_to_detection"]
        median = ttd["median_days"]
        rows.append(
            (
                result["scenario"],
                f"{overall['detection_rate']:.1%}",
                f"{overall['false_positive_rate']:.1%}",
                naive["unjust_user_days"],
                aware["unjust_user_days"],
                "-" if median is None else f"{median:g}",
                ttd["evaded_stints"],
            )
        )
    return render_table(
        [
            "scenario",
            "detection",
            "fp rate",
            "unjust user-days (block-listed)",
            "unjust user-days (reuse-aware)",
            "median TTD",
            "evaded stints",
        ],
        rows,
        title="Adversary lab: blocklist effectiveness per scenario",
    )
