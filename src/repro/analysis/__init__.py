"""Statistics and text-rendering helpers shared by the experiments."""

from .cdf import Ecdf, fraction_at_most, percentile
from .figures import ascii_cdf, ascii_columns
from .tables import render_comparison, render_series, render_table

__all__ = [
    "Ecdf",
    "fraction_at_most",
    "percentile",
    "render_comparison",
    "render_series",
    "render_table",
    "ascii_cdf",
    "ascii_columns",
]
