"""Empirical distribution utilities used by every figure."""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

__all__ = ["Ecdf", "fraction_at_most", "percentile"]


class Ecdf:
    """Empirical CDF over a sample.

    ``F(x)`` is the fraction of samples ≤ x; ``quantile(q)`` its
    inverse. Immutable once built.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("cannot build an ECDF from an empty sample")
        self._sorted: List[float] = sorted(samples)

    def __len__(self) -> int:
        return len(self._sorted)

    def __eq__(self, other: object) -> bool:
        # Value equality (two ECDFs over equal samples are the same
        # distribution) — required for whole-report comparisons in the
        # parallel-determinism and run-cache tests.
        if not isinstance(other, Ecdf):
            return NotImplemented
        return self._sorted == other._sorted

    def __hash__(self) -> int:
        return hash(tuple(self._sorted))

    def __repr__(self) -> str:
        return (
            f"Ecdf(n={len(self._sorted)}, "
            f"min={self._sorted[0]}, max={self._sorted[-1]})"
        )

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._sorted[-1]

    def at(self, x: float) -> float:
        """F(x): fraction of samples ≤ x."""
        return bisect.bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Smallest sample value v with F(v) ≥ q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if q == 0.0:
            return self._sorted[0]
        index = math.ceil(q * len(self._sorted)) - 1
        index = min(len(self._sorted) - 1, max(0, index))
        return self._sorted[index]

    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def points(self) -> List[Tuple[float, float]]:
        """(x, F(x)) step points at each distinct sample value —
        directly plottable / printable as a figure series."""
        out: List[Tuple[float, float]] = []
        previous = None
        for index, value in enumerate(self._sorted):
            if value != previous:
                out.append((value, (index + 1) / len(self._sorted)))
                previous = value
            else:
                out[-1] = (value, (index + 1) / len(self._sorted))
        return out


def fraction_at_most(samples: Sequence[float], x: float) -> float:
    """One-off F(x) without building an Ecdf."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s <= x) / len(samples)


def percentile(samples: Sequence[float], q: float) -> float:
    """One-off quantile."""
    return Ecdf(samples).quantile(q)
