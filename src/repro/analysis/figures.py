"""ASCII figure rendering.

The paper's figures are log-scale scatter/CDF plots. The benchmark
artefacts embed a text rendering so the *shape* of each figure is
visible in ``results/`` without a plotting stack: a step plot for
CDFs, and a (optionally log-scale) column chart for sorted count
series.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_cdf", "ascii_columns"]

_BAR = "#"


def ascii_cdf(
    points: Sequence[Tuple[float, float]],
    *,
    title: str,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
) -> str:
    """Render (x, F(x)) step points as a text CDF plot.

    The y axis is always [0, 1]; the x axis spans the data.
    """
    if not points:
        return f"{title}\n  (empty)"
    xs = [p[0] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    span = (x_hi - x_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    previous_col = 0
    previous_row = height - 1
    for x, y in points:
        col = min(width - 1, int((x - x_lo) / span * (width - 1)))
        row = min(height - 1, int((1.0 - y) * (height - 1)))
        # Draw the horizontal run of the step.
        for c in range(previous_col, col + 1):
            grid[previous_row][c] = "_" if grid[previous_row][c] == " " else grid[previous_row][c]
        grid[row][col] = "*"
        previous_col, previous_row = col, row
    lines = [title]
    for index, row in enumerate(grid):
        y_value = 1.0 - index / (height - 1)
        prefix = f"{y_value:4.2f} |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_lo:<12.4g}{x_label:^{max(0, width - 24)}}{x_hi:>12.4g}")
    return "\n".join(lines)


def ascii_columns(
    values: Sequence[float],
    *,
    title: str,
    height: int = 12,
    max_columns: int = 60,
    log_scale: bool = False,
) -> str:
    """Render a sorted count series as columns (the Figure 5/6 look).

    ``log_scale`` plots log10(1 + value), matching the paper's
    log-scale y axes where counts span decades.
    """
    if not values:
        return f"{title}\n  (empty)"
    series: List[float] = list(values)
    if len(series) > max_columns:
        step = (len(series) - 1) / (max_columns - 1)
        series = [series[round(i * step)] for i in range(max_columns)]
    plotted = [
        math.log10(1 + v) if log_scale else float(v) for v in series
    ]
    top = max(plotted) or 1.0
    columns = [
        min(height, round(v / top * height)) for v in plotted
    ]
    lines = [title]
    for level in range(height, 0, -1):
        row = "".join(_BAR if c >= level else " " for c in columns)
        lines.append(f"{'|':>6}{row}")
    lines.append("     +" + "-" * len(columns))
    scale = "log10(1+y)" if log_scale else "y"
    lines.append(
        f"      {len(values)} values, max={max(values):g} ({scale} scale)"
    )
    return "\n".join(lines)
