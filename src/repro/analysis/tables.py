"""Plain-text rendering of tables and figure series.

Every benchmark prints its table/figure through these helpers so the
output of ``pytest benchmarks/`` reads like the paper's evaluation
section: same rows, paper value next to measured value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_comparison"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    points: Sequence[Tuple[float, float]],
    *,
    title: str,
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 24,
) -> str:
    """A figure's data series as text, downsampled evenly so the shape
    is readable without a plotting stack."""
    if not points:
        return f"{title}\n  (empty series)"
    if len(points) > max_points:
        step = (len(points) - 1) / (max_points - 1)
        sampled = [points[round(i * step)] for i in range(max_points)]
    else:
        sampled = list(points)
    lines = [title, f"  {x_label:>14}  {y_label}"]
    for x, y in sampled:
        lines.append(f"  {x:>14.4g}  {y:.4g}")
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[Tuple[str, object, object]],
    *,
    title: str,
) -> str:
    """Paper-vs-measured comparison block (the EXPERIMENTS.md shape)."""
    table = render_table(
        ["quantity", "paper", "measured"],
        [(name, paper, measured) for name, paper, measured in rows],
    )
    return f"{title}\n{table}"
