"""Baseline techniques the paper compares against."""

from .icmp_census import BlockMetrics, CensusConfig, CensusResult, run_census

__all__ = ["BlockMetrics", "CensusConfig", "CensusResult", "run_census"]
