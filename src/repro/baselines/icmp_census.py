"""Reimplementation of Cai & Heidemann's ICMP census methodology
("Understanding block-level address usage in the visible internet",
SIGCOMM 2010) — the only prior technique the paper could compare
against at scale (Section 5, Figure 6's black line).

Method: repeatedly ping sampled /24 blocks, build a per-address
up/down observation series, and derive per-block metrics —
**availability** (fraction of probes answered), **volatility** (state
flips per opportunity) and **median up-time** (typical continuous
up-run). Blocks with short up-times and high volatility are inferred
to be dynamically allocated.

The paper's critique of this baseline is reproduced faithfully,
because our simulated ICMP plane has the same confounders:

* firewalled lines never answer (undercounting);
* middleboxes answer *on behalf of* hosts (an address looks stable
  even though the host behind it changes);
* the dynamic-block threshold is ad hoc — there is no knee-point
  procedure here, just a cutoff.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..internet.groundtruth import ADDRESSING_STATIC, GroundTruth
from ..net.ipv4 import Prefix, slash24_int, slash24_of

__all__ = ["CensusConfig", "BlockMetrics", "CensusResult", "run_census"]


@dataclass
class CensusConfig:
    """Census design parameters."""

    #: Observation window in days (IT86c/IT89w-style datasets span
    #: roughly two months).
    window: Tuple[float, float] = (437.0, 497.0)
    #: Days between probe rounds for one address.
    probe_interval_days: float = 1.0
    #: Fraction of candidate /24 blocks actually probed. The survey
    #: pings ~1% of the IPv4 space; our candidate set is already
    #: narrowed to occupied blocks, so a partial sample stands in for
    #: that partial coverage and keeps the census/RIPE listing ratio in
    #: the paper's regime (≈1).
    block_sample_fraction: float = 0.3
    #: Per-probe response probability for an occupied, unfirewalled
    #: address (ICMP rate limiting, transient loss).
    response_rate: float = 0.85
    #: Fraction of lines that never answer ICMP.
    firewalled_fraction: float = 0.25
    #: Fraction of lines fronted by a middlebox that answers always,
    #: regardless of who currently holds the address.
    middlebox_fraction: float = 0.05
    #: Classification: a block is dynamic when its median up-time is
    #: below this many days...
    max_median_uptime_days: float = 10.0
    #: ...and its volatility is at least this much.
    min_volatility: float = 0.05
    #: Blocks need at least this many responsive addresses to be
    #: classified at all.
    min_responsive: int = 3


@dataclass
class BlockMetrics:
    """Per-/24 census metrics."""

    block: Prefix
    responsive_addresses: int
    availability: float
    volatility: float
    median_uptime_days: float
    inferred_dynamic: bool


@dataclass
class CensusResult:
    """Census outcome over all probed blocks."""

    metrics: Dict[int, BlockMetrics]  # keyed by /24 network int
    probes_sent: int

    def dynamic_blocks(self) -> Set[Prefix]:
        """Blocks the census infers as dynamically allocated."""
        return {
            m.block for m in self.metrics.values() if m.inferred_dynamic
        }

    def covers(self, ip: int) -> bool:
        """True when the census probed the /24 containing ``ip``."""
        return slash24_int(ip) in self.metrics


def _address_occupancy(
    truth: GroundTruth,
) -> Dict[int, List[Tuple[float, float, str]]]:
    """Per-address occupied intervals (start, end, holding line key).

    Static lines occupy their address for the whole horizon; pool
    addresses are occupied whenever some line holds them. Knowing the
    holder matters: a firewalled line keeps "its" current address dark
    even when the address itself is pingable at other times.
    """
    occupancy: Dict[int, List[Tuple[float, float, str]]] = {}
    for line in truth.lines.values():
        if line.addressing == ADDRESSING_STATIC:
            assert line.static_ip is not None
            occupancy.setdefault(line.static_ip, []).append(
                (0.0, truth.horizon_days, line.key)
            )
    for pool in truth.pools.values():
        for line_key, timeline in pool.timelines.items():
            for start, end, ip in timeline.intervals():
                occupancy.setdefault(ip, []).append((start, end, line_key))
    for intervals in occupancy.values():
        intervals.sort()
    return occupancy


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _block_rng(base: int, net: int) -> random.Random:
    """Independent probe RNG for one /24 block.

    Derived the same way :class:`~repro.sim.rng.RngHub` names streams:
    hashing ``base`` (one draw from the census stream) with the block's
    network integer. Each block's Bernoulli series is therefore a pure
    function of (census seed, block) — independent of how many other
    blocks are probed, in what order, or on which worker process.
    """
    digest = hashlib.sha256(f"{base}:{net}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


_BlockShared = Tuple[
    Dict[int, List[int]],  # blocks: net -> member addresses
    Dict[int, List[Tuple[float, float, str]]],  # occupancy
    GroundTruth,
    Dict[int, str],  # line_of_static
    Set[str],  # firewalled
    Set[str],  # middleboxed
    CensusConfig,
    int,  # n_rounds
    int,  # base (per-block RNG derivation salt)
]


def _census_block(
    shared: _BlockShared, net: int
) -> Tuple[Optional[BlockMetrics], int]:
    """Probe one /24 block: its metrics (or ``None`` when it stays
    unclassified) and the number of probes spent on it."""
    (
        blocks,
        occupancy,
        truth,
        line_of_static,
        firewalled,
        middleboxed,
        config,
        n_rounds,
        base,
    ) = shared
    rng = _block_rng(base, net)
    uptimes: List[float] = []
    availabilities: List[float] = []
    volatilities: List[float] = []
    responsive = 0
    probes_sent = 0
    for ip in sorted(blocks[net]):
        series = _probe_series(
            ip,
            occupancy[ip],
            truth,
            line_of_static,
            firewalled,
            middleboxed,
            config,
            rng,
            n_rounds,
        )
        probes_sent += n_rounds
        series = _debounce(series)
        up = sum(series)
        if up == 0:
            continue
        responsive += 1
        availabilities.append(up / n_rounds)
        flips = sum(
            1 for a, b in zip(series, series[1:]) if a != b
        )
        volatilities.append(flips / max(1, n_rounds - 1))
        uptimes.extend(
            run * config.probe_interval_days
            for run in _up_runs(series)
        )
    if responsive < config.min_responsive:
        return None, probes_sent
    availability = sum(availabilities) / len(availabilities)
    volatility = sum(volatilities) / len(volatilities)
    median_uptime = _median(uptimes) if uptimes else 0.0
    inferred = (
        median_uptime <= config.max_median_uptime_days
        and volatility >= config.min_volatility
    )
    return (
        BlockMetrics(
            block=Prefix(net, 24),
            responsive_addresses=responsive,
            availability=availability,
            volatility=volatility,
            median_uptime_days=median_uptime,
            inferred_dynamic=inferred,
        ),
        probes_sent,
    )


def run_census(
    truth: GroundTruth,
    config: CensusConfig,
    rng: random.Random,
    *,
    workers: int = 1,
) -> CensusResult:
    """Probe the world and classify blocks.

    Probing is simulated per address as a Bernoulli observation series
    over the occupancy ground truth — equivalent to scheduling pings on
    the simulated fabric but several orders of magnitude cheaper, and
    the detection input (noisy up/down series) is identical in law.

    Block sampling and per-line ICMP personalities draw from ``rng``;
    each probed /24 then gets its own RNG derived from one ``rng`` draw
    and the block's network address, so the probe plane shards cleanly:
    ``workers`` distributes blocks across a process pool with results
    bit-identical to the serial (``workers=1``) path.
    """
    # Imported here, not at module top: the experiments package imports
    # this module while wiring the runner, so a top-level import would
    # be circular.
    from ..experiments.parallel import map_shards

    start, end = config.window
    if end <= start:
        raise ValueError(f"bad census window {config.window}")
    occupancy = _address_occupancy(truth)

    # Candidate blocks: everything with any occupied address.
    blocks: Dict[int, List[int]] = {}
    for ip in occupancy:
        blocks.setdefault(slash24_int(ip), []).append(ip)
    probed = sorted(
        net
        for net in blocks
        if rng.random() < config.block_sample_fraction
    )

    # Per-line ICMP personality.
    firewalled: Set[str] = set()
    middleboxed: Set[str] = set()
    for key in truth.lines:
        draw = rng.random()
        if draw < config.firewalled_fraction:
            firewalled.add(key)
        elif draw < config.firewalled_fraction + config.middlebox_fraction:
            middleboxed.add(key)

    line_of_static: Dict[int, str] = {
        line.static_ip: line.key
        for line in truth.lines.values()
        if line.static_ip is not None
    }

    n_rounds = int((end - start) / config.probe_interval_days)
    base = rng.getrandbits(64)
    shared: _BlockShared = (
        blocks,
        occupancy,
        truth,
        line_of_static,
        firewalled,
        middleboxed,
        config,
        n_rounds,
        base,
    )
    results = map_shards(_census_block, probed, workers=workers, shared=shared)

    metrics: Dict[int, BlockMetrics] = {}
    probes_sent = 0
    for net, (block_metrics, block_probes) in zip(probed, results):
        probes_sent += block_probes
        if block_metrics is not None:
            metrics[net] = block_metrics
    return CensusResult(metrics=metrics, probes_sent=probes_sent)


def _probe_series(
    ip: int,
    intervals: List[Tuple[float, float, str]],
    truth: GroundTruth,
    line_of_static: Dict[int, str],
    firewalled: Set[str],
    middleboxed: Set[str],
    config: CensusConfig,
    rng: random.Random,
    n_rounds: int,
) -> List[bool]:
    """One address's up/down observations across the census rounds."""
    start, _ = config.window
    static_line = line_of_static.get(ip)
    if static_line is not None and static_line in middleboxed:
        # Middlebox answers every probe regardless of the host.
        return [
            rng.random() < config.response_rate for _ in range(n_rounds)
        ]
    series: List[bool] = []
    interval_index = 0
    for round_index in range(n_rounds):
        when = start + round_index * config.probe_interval_days
        while (
            interval_index < len(intervals)
            and intervals[interval_index][1] <= when
        ):
            interval_index += 1
        answering = False
        if (
            interval_index < len(intervals)
            and intervals[interval_index][0] <= when < intervals[interval_index][1]
        ):
            holder = intervals[interval_index][2]
            answering = holder not in firewalled
        series.append(answering and rng.random() < config.response_rate)
    return series


def _debounce(series: List[bool]) -> List[bool]:
    """Fill single-probe gaps: one missed ping between two answered
    ones is probe loss, not an outage. The census analyses smooth their
    observation series the same way before computing up-times."""
    smoothed = list(series)
    for index in range(1, len(smoothed) - 1):
        if not smoothed[index] and series[index - 1] and series[index + 1]:
            smoothed[index] = True
    return smoothed


def _up_runs(series: Sequence[bool]) -> List[int]:
    """Lengths of continuous up-runs in an observation series."""
    runs: List[int] = []
    current = 0
    for observed in series:
        if observed:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs
