"""Bencoding (BEP 3) encoder/decoder.

The DHT's KRPC messages are bencoded dictionaries. This is a strict,
allocation-light implementation: the decoder rejects non-canonical
integers (``i-0e``, leading zeros), unsorted dictionary keys are
tolerated on decode (real clients emit them) but the encoder always
emits canonical sorted keys, and trailing bytes after the root object
are an error — a truncated or concatenated datagram must not silently
half-parse.

Both directions are iterative (explicit work stacks, no recursion):
the crawler pushes millions of datagrams through here, and avoiding a
Python frame per nested value roughly halves codec time on the KRPC
message mix. Deeply nested garbage also can no longer trigger
``RecursionError`` — depth is bounded only by memory.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

__all__ = ["BencodeError", "bencode", "bdecode"]

Bencodable = Union[int, bytes, str, list, dict]


class BencodeError(ValueError):
    """Raised for any malformed bencode input or un-encodable value."""


class _End:
    """Stack sentinel closing a container during encoding."""

    __slots__ = ()


_END = _End()


def _normalise_dict(value: dict) -> List[Tuple[bytes, Any]]:
    """Sorted, validated (key, item) pairs for canonical dict output."""
    normalised: List[Tuple[bytes, Any]] = []
    for key, item in value.items():
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not isinstance(key, bytes):
            raise BencodeError(
                f"dict keys must be bytes/str, got {type(key).__name__}"
            )
        normalised.append((key, item))
    normalised.sort(key=lambda pair: pair[0])
    previous = None
    for key, _ in normalised:
        if key == previous:
            raise BencodeError(f"duplicate dict key {key!r}")
        previous = key
    return normalised


# Length/integer prefixes for byte strings are two-byte-ish and highly
# repetitive (KRPC keys are 1-9 bytes long); a precomputed table beats
# bytes %-formatting on the hot path.
_LEN_PREFIX = tuple(b"%d:" % n for n in range(256))


def bencode(value: Bencodable) -> bytes:
    """Encode ``value`` into canonical bencode bytes.

    ``str`` values are encoded as UTF-8 byte strings for convenience;
    dictionary keys may be ``str`` or ``bytes`` and are emitted in
    sorted byte order as the spec requires.
    """
    parts: List[bytes] = []
    append = parts.append
    stack: List[Any] = [value]
    pop = stack.pop
    push = stack.append
    len_prefix = _LEN_PREFIX
    while stack:
        item = pop()
        kind = type(item)
        # Exact type checks keep the hot path to one dict lookup per
        # value; subclasses (incl. bool, an int subclass) fall through
        # to the strict slow path below.
        if kind is bytes:
            size = len(item)
            append(len_prefix[size] if size < 256 else b"%d:" % size)
            append(item)
        elif kind is int:
            append(b"i%de" % item)
        elif kind is str:
            raw = item.encode("utf-8")
            size = len(raw)
            append(len_prefix[size] if size < 256 else b"%d:" % size)
            append(raw)
        elif kind is _End:
            append(b"e")
        elif kind is dict:
            append(b"d")
            push(_END)
            # Fast path: a dict whose keys are all bytes cannot contain
            # duplicates and sorts directly. Mixed/str keys fail one of
            # the two probes and take the validating slow path.
            try:
                keys = sorted(item, reverse=True)
            except TypeError:
                keys = None
            if keys is None or (keys and type(keys[0]) is not bytes):
                for key, val in reversed(_normalise_dict(item)):
                    push(val)
                    push(key)
            else:
                for key in keys:
                    push(item[key])
                    push(key)
        elif kind is list:
            append(b"l")
            push(_END)
            for val in reversed(item):
                push(val)
        elif isinstance(item, bool):
            # bool is an int subclass; encoding True as i1e would be a
            # silent schema bug in message construction, so refuse it.
            raise BencodeError("refusing to bencode bool")
        elif isinstance(item, int):
            append(b"i%de" % item)
        elif isinstance(item, bytes):
            append(b"%d:" % len(item))
            append(item)
        elif isinstance(item, str):
            raw = item.encode("utf-8")
            append(b"%d:" % len(raw))
            append(raw)
        elif isinstance(item, dict):
            append(b"d")
            stack.append(_END)
            for key, val in reversed(_normalise_dict(item)):
                stack.append(val)
                stack.append(key)
        elif isinstance(item, list):
            append(b"l")
            stack.append(_END)
            for val in reversed(item):
                stack.append(val)
        else:
            raise BencodeError(
                f"cannot bencode values of type {type(item).__name__}"
            )
    return b"".join(parts)


_MISSING_KEY = object()


def bdecode(data: bytes) -> Bencodable:
    """Decode one bencoded object from ``data``.

    Raises :class:`BencodeError` on malformed input, including trailing
    bytes after the root object.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise BencodeError(
            f"bdecode needs bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    size = len(data)
    if not size:
        raise BencodeError("empty input")
    find = data.find
    offset = 0
    # The innermost container under construction lives in two locals:
    # ``container`` (None at root) and ``pending`` (the dict key
    # awaiting its value, or _MISSING_KEY). Enclosing frames are saved
    # on ``stack``; keeping the innermost state out of the stack avoids
    # an index + tuple rebuild per decoded value.
    container: Any = None
    pending: Any = _MISSING_KEY
    stack: List[Tuple[Any, Any]] = []
    while True:
        if offset >= size:
            if container is not None:
                raise BencodeError(
                    "unterminated dict"
                    if type(container) is dict
                    else "unterminated list"
                )
            raise BencodeError("truncated input")
        lead = data[offset]
        if 0x30 <= lead <= 0x39:  # '0'..'9' — byte string
            # KRPC keys are short, so a single-digit length followed by
            # the colon is the overwhelmingly common case.
            start = offset + 2
            if start <= size and data[offset + 1] == 0x3A:
                end = start + lead - 0x30
            else:
                colon = find(b":", offset)
                if colon == -1:
                    raise BencodeError("unterminated string length")
                length_text = data[offset:colon]
                if not length_text.isdigit():
                    raise BencodeError(
                        f"malformed string length {length_text!r}"
                    )
                if length_text != b"0" and length_text.startswith(b"0"):
                    raise BencodeError(
                        f"leading zero in string length {length_text!r}"
                    )
                start = colon + 1
                end = start + int(length_text)
            if end > size:
                raise BencodeError("string runs past end of input")
            value: Any = data[start:end]
            offset = end
        elif lead == 0x69:  # 'i' — integer
            end = find(b"e", offset + 1)
            if end == -1:
                raise BencodeError("unterminated integer")
            body = data[offset + 1 : end]
            if not body:
                raise BencodeError("empty integer")
            digits = body[1:] if body[:1] == b"-" else body
            if not digits.isdigit():
                raise BencodeError(f"malformed integer {body!r}")
            if digits != b"0" and digits.startswith(b"0"):
                raise BencodeError(f"leading zero in integer {body!r}")
            if body == b"-0":
                raise BencodeError("negative zero integer")
            value = int(body)
            offset = end + 1
        elif lead == 0x6C:  # 'l' — open list
            stack.append((container, pending))
            container = []
            pending = _MISSING_KEY
            offset += 1
            continue
        elif lead == 0x64:  # 'd' — open dict
            stack.append((container, pending))
            container = {}
            pending = _MISSING_KEY
            offset += 1
            continue
        elif lead == 0x65:  # 'e' — close container
            if container is None:
                raise BencodeError(
                    f"unexpected byte b'e' at offset {offset}"
                )
            if pending is not _MISSING_KEY:
                raise BencodeError("unterminated dict")
            value = container
            container, pending = stack.pop()
            offset += 1
        else:
            raise BencodeError(
                f"unexpected byte {data[offset:offset + 1]!r} "
                f"at offset {offset}"
            )
        # Attach the completed value to the enclosing container (or
        # finish, when it is the root object).
        if container is None:
            if offset != size:
                raise BencodeError(
                    f"{size - offset} trailing bytes after root object"
                )
            return value
        if type(container) is list:
            container.append(value)
        elif pending is _MISSING_KEY:
            if type(value) is not bytes:
                raise BencodeError(
                    f"dict key must be a byte string, "
                    f"got {type(value).__name__}"
                )
            if value in container:
                raise BencodeError(f"duplicate dict key {value!r}")
            pending = value
        else:
            container[pending] = value
            pending = _MISSING_KEY
