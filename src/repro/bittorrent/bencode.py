"""Bencoding (BEP 3) encoder/decoder.

The DHT's KRPC messages are bencoded dictionaries. This is a strict,
allocation-light implementation: the decoder rejects non-canonical
integers (``i-0e``, leading zeros), unsorted dictionary keys are
tolerated on decode (real clients emit them) but the encoder always
emits canonical sorted keys, and trailing bytes after the root object
are an error — a truncated or concatenated datagram must not silently
half-parse.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

__all__ = ["BencodeError", "bencode", "bdecode"]

Bencodable = Union[int, bytes, str, list, dict]


class BencodeError(ValueError):
    """Raised for any malformed bencode input or un-encodable value."""


def bencode(value: Bencodable) -> bytes:
    """Encode ``value`` into canonical bencode bytes.

    ``str`` values are encoded as UTF-8 byte strings for convenience;
    dictionary keys may be ``str`` or ``bytes`` and are emitted in
    sorted byte order as the spec requires.
    """
    parts: List[bytes] = []
    _encode(value, parts)
    return b"".join(parts)


def _encode(value: Bencodable, parts: List[bytes]) -> None:
    if isinstance(value, bool):
        # bool is an int subclass; encoding True as i1e would be a silent
        # schema bug in message construction, so refuse it.
        raise BencodeError("refusing to bencode bool")
    if isinstance(value, int):
        parts.append(b"i%de" % value)
    elif isinstance(value, bytes):
        parts.append(b"%d:" % len(value))
        parts.append(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(b"%d:" % len(raw))
        parts.append(raw)
    elif isinstance(value, list):
        parts.append(b"l")
        for item in value:
            _encode(item, parts)
        parts.append(b"e")
    elif isinstance(value, dict):
        parts.append(b"d")
        normalised: List[Tuple[bytes, Any]] = []
        for key, item in value.items():
            if isinstance(key, str):
                key = key.encode("utf-8")
            if not isinstance(key, bytes):
                raise BencodeError(
                    f"dict keys must be bytes/str, got {type(key).__name__}"
                )
            normalised.append((key, item))
        normalised.sort(key=lambda pair: pair[0])
        previous = None
        for key, item in normalised:
            if key == previous:
                raise BencodeError(f"duplicate dict key {key!r}")
            previous = key
            _encode(key, parts)
            _encode(item, parts)
        parts.append(b"e")
    else:
        raise BencodeError(
            f"cannot bencode values of type {type(value).__name__}"
        )


def bdecode(data: bytes) -> Bencodable:
    """Decode one bencoded object from ``data``.

    Raises :class:`BencodeError` on malformed input, including trailing
    bytes after the root object.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise BencodeError(
            f"bdecode needs bytes, got {type(data).__name__}"
        )
    data = bytes(data)
    if not data:
        raise BencodeError("empty input")
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise BencodeError(
            f"{len(data) - offset} trailing bytes after root object"
        )
    return value


def _decode(data: bytes, offset: int) -> Tuple[Bencodable, int]:
    if offset >= len(data):
        raise BencodeError("truncated input")
    lead = data[offset : offset + 1]
    if lead == b"i":
        return _decode_int(data, offset)
    if lead == b"l":
        return _decode_list(data, offset)
    if lead == b"d":
        return _decode_dict(data, offset)
    if lead.isdigit():
        return _decode_bytes(data, offset)
    raise BencodeError(f"unexpected byte {lead!r} at offset {offset}")


def _decode_int(data: bytes, offset: int) -> Tuple[int, int]:
    end = data.find(b"e", offset + 1)
    if end == -1:
        raise BencodeError("unterminated integer")
    body = data[offset + 1 : end]
    if not body:
        raise BencodeError("empty integer")
    digits = body[1:] if body[:1] == b"-" else body
    if not digits.isdigit():
        raise BencodeError(f"malformed integer {body!r}")
    if digits != b"0" and digits.startswith(b"0"):
        raise BencodeError(f"leading zero in integer {body!r}")
    if body == b"-0":
        raise BencodeError("negative zero integer")
    return int(body), end + 1


def _decode_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    colon = data.find(b":", offset)
    if colon == -1:
        raise BencodeError("unterminated string length")
    length_text = data[offset:colon]
    if not length_text.isdigit():
        raise BencodeError(f"malformed string length {length_text!r}")
    if length_text != b"0" and length_text.startswith(b"0"):
        raise BencodeError(f"leading zero in string length {length_text!r}")
    length = int(length_text)
    start = colon + 1
    end = start + length
    if end > len(data):
        raise BencodeError("string runs past end of input")
    return data[start:end], end


def _decode_list(data: bytes, offset: int) -> Tuple[list, int]:
    items: List[Bencodable] = []
    offset += 1
    while True:
        if offset >= len(data):
            raise BencodeError("unterminated list")
        if data[offset : offset + 1] == b"e":
            return items, offset + 1
        item, offset = _decode(data, offset)
        items.append(item)


def _decode_dict(data: bytes, offset: int) -> Tuple[Dict[bytes, Any], int]:
    result: Dict[bytes, Any] = {}
    offset += 1
    while True:
        if offset >= len(data):
            raise BencodeError("unterminated dict")
        if data[offset : offset + 1] == b"e":
            return result, offset + 1
        key, offset = _decode(data, offset)
        if not isinstance(key, bytes):
            raise BencodeError(
                f"dict key must be a byte string, got {type(key).__name__}"
            )
        if key in result:
            raise BencodeError(f"duplicate dict key {key!r}")
        value, offset = _decode(data, offset)
        result[key] = value
