"""The BitTorrent DHT crawler (paper Section 3.1).

Walks the DHT with ``get_nodes``, collects every (IP, port) sighting,
and verifies multi-port IPs with ``bt_ping`` rounds. Operational
behaviour follows the paper exactly:

* queries are paced (the unrestricted crawler "generated tremendous
  amount of incoming traffic");
* the crawl can be **restricted to the blocklisted address space**
  (a :class:`~repro.net.prefixtrie.PrefixSet` of /24s);
* after contacting *all discovered ports* of an IP, that IP is left
  alone for a 20-minute cooldown;
* bt_ping is over UDP and lossy, so ping rounds for multi-port IPs
  repeat every hour;
* everything sent and received is logged with timestamps; NAT
  detection happens offline over the log (:mod:`repro.natdetect`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..net.ipv4 import slash24_int
from ..net.prefixtrie import PrefixSet
from ..sim.clock import HOUR, MINUTE
from ..sim.events import Scheduler
from ..sim.udp import Datagram, Endpoint
from ..sim.nat import Socket
from .crawllog import (
    QUERY_GET_NODES,
    QUERY_PING,
    CrawlLog,
    ReceivedRecord,
    SentRecord,
)
from .krpc import (
    GetNodesQuery,
    GetNodesResponse,
    KrpcError,
    PingQuery,
    PingResponse,
    TransactionCounter,
    decode_message,
    encode_message,
)
from .nodeid import NODE_ID_BYTES

__all__ = ["CrawlerConfig", "CrawlerStats", "DhtCrawler"]

# Stable, recognisable crawler node id (shared by every query we send).
_SENDER_ID = bytes(16) + b"crwl"


@dataclass
class CrawlerConfig:
    """Operational knobs; defaults mirror the paper."""

    #: Leave an IP alone for this long after contacting all its ports.
    contact_cooldown: float = 20 * MINUTE
    #: Re-ping multi-port IPs this often (UDP-loss compensation).
    reping_interval: float = 1 * HOUR
    #: Pacing tick — how often the crawler drains its work queue.
    tick_interval: float = 1.0
    #: Maximum get_nodes contacts initiated per tick (rate limit).
    queries_per_tick: int = 200
    #: Restrict discovery to this address space (None = unrestricted).
    allowed_space: Optional[PrefixSet] = None
    #: Stop issuing new queries after this much crawl time (seconds).
    duration: float = 12 * HOUR
    #: Minimum ports an IP needs before it enters ping verification.
    multiport_threshold: int = 2
    #: get_nodes attempts per IP before giving up (UDP loss recovery).
    max_get_nodes_attempts: int = 4
    #: Retry pacing for endpoints that have never answered. The 20-min
    #: cooldown is a politeness rule towards *users we probe*; an
    #: endpoint that has never responded gets ordinary timeout-driven
    #: retries instead (the paper does not specify this detail).
    retry_interval: float = 60.0
    #: The paper's crawler runs continuously, so it keeps re-learning
    #: routing tables and notices port changes. We model that by
    #: re-queueing every responsive IP for get_nodes at this interval
    #: (0 disables re-walking).
    rewalk_interval: float = 2 * HOUR


@dataclass
class CrawlerStats:
    """Aggregate counters (the paper's Section 4 accounting)."""

    get_nodes_sent: int = 0
    get_nodes_received: int = 0
    pings_sent: int = 0
    ping_responses: int = 0
    unique_ips: int = 0
    unique_node_ids: int = 0
    malformed: int = 0

    def ping_response_rate(self) -> float:
        """Fraction of bt_pings answered (paper: 48.6%)."""
        return self.ping_responses / self.pings_sent if self.pings_sent else 0.0


class DhtCrawler:
    """Event-driven crawler bound to one public socket."""

    def __init__(
        self,
        scheduler: Scheduler,
        socket: Socket,
        rng: random.Random,
        config: Optional[CrawlerConfig] = None,
    ) -> None:
        self._scheduler = scheduler
        self._socket = socket
        self._rng = rng
        self.config = config or CrawlerConfig()
        self.log = CrawlLog()
        self.stats = CrawlerStats()
        self._txns = TransactionCounter()
        # ip -> every port ever seen for it
        self._ports: Dict[int, Set[int]] = {}
        # IPs awaiting their first get_nodes contact, in discovery order
        self._queue: Deque[int] = deque()
        self._queued: Set[int] = set()
        self._contacted: Set[int] = set()
        self._attempts: Dict[int, int] = {}
        self._responded: Set[int] = set()
        self._awaiting: Set[int] = set()
        self._last_contact: Dict[int, float] = {}
        self._multiport: Set[int] = set()
        self._node_ids: Set[str] = set()
        self._outstanding: Dict[bytes, str] = {}
        self._started = False
        self._deadline = 0.0
        self._socket.on_receive(self._handle)

    # -- public surface ----------------------------------------------

    def start(self, bootstrap: List[Endpoint]) -> None:
        """Begin crawling from the given bootstrap endpoints."""
        if self._started:
            raise RuntimeError("crawler already started")
        if not bootstrap:
            raise ValueError("need at least one bootstrap endpoint")
        self._started = True
        self._deadline = self._scheduler.now + self.config.duration
        for endpoint in bootstrap:
            self._note_sighting(endpoint.ip, endpoint.port, force=True)
        self._scheduler.every(
            self.config.tick_interval, self._tick, until=self._deadline
        )
        self._scheduler.every(
            self.config.reping_interval,
            self._ping_round,
            start_after=self.config.reping_interval,
            until=self._deadline,
        )
        if self.config.rewalk_interval > 0:
            self._scheduler.every(
                self.config.rewalk_interval,
                self._rewalk,
                start_after=self.config.rewalk_interval,
                until=self._deadline,
            )

    @property
    def discovered_ips(self) -> int:
        """Unique IP addresses seen so far."""
        return len(self._ports)

    def discovered_addresses(self) -> Set[int]:
        """The unique addresses sighted (the paper's "48.7M unique IP
        addresses that use BitTorrent")."""
        return set(self._ports)

    @property
    def multiport_ips(self) -> Set[int]:
        """IPs observed with ≥ ``multiport_threshold`` distinct ports."""
        return set(self._multiport)

    def ports_of(self, ip: int) -> Set[int]:
        """Every port ever sighted for ``ip``."""
        return set(self._ports.get(ip, ()))

    # -- discovery bookkeeping -----------------------------------------

    def _allowed(self, ip: int) -> bool:
        space = self.config.allowed_space
        return space is None or space.contains_ip(ip)

    def _note_sighting(self, ip: int, port: int, *, force: bool = False) -> None:
        """Record an (ip, port) sighting from get_nodes payloads."""
        if not force and not self._allowed(ip):
            return
        ports = self._ports.get(ip)
        if ports is None:
            ports = set()
            self._ports[ip] = ports
            self.stats.unique_ips += 1
        before = len(ports)
        ports.add(port)
        if len(ports) > before and ip not in self._queued:
            # New IP, or a fresh port on a known IP: (re-)queue it for
            # get_nodes in discovery order, and reset the attempt budget
            # (the new port deserves its own loss-recovery retries).
            self._queue.append(ip)
            self._queued.add(ip)
            self._attempts[ip] = 0
        if (
            len(ports) >= self.config.multiport_threshold
            and before < self.config.multiport_threshold
        ):
            self._multiport.add(ip)

    # -- sending -------------------------------------------------------

    def _send_get_nodes(self, ip: int) -> None:
        """Contact every known port of ``ip`` with get_nodes."""
        now = self._scheduler.now
        target = bytes(
            self._rng.getrandbits(8) for _ in range(NODE_ID_BYTES)
        )
        send = self._socket.send
        log_append = self.log.append
        next_txn = self._txns.next
        outstanding = self._outstanding
        sent = 0
        for port in sorted(self._ports.get(ip, ())):
            txn = next_txn()
            outstanding[txn] = QUERY_GET_NODES
            query = GetNodesQuery(txn, _SENDER_ID, target)
            send(Endpoint(ip, port), encode_message(query))
            log_append(
                SentRecord(now, QUERY_GET_NODES, ip, port, txn.hex())
            )
            sent += 1
        self.stats.get_nodes_sent += sent
        self._last_contact[ip] = now

    def _send_pings(self, ip: int) -> None:
        """bt_ping every known port of ``ip`` (one verification round)."""
        now = self._scheduler.now
        send = self._socket.send
        log_append = self.log.append
        next_txn = self._txns.next
        outstanding = self._outstanding
        sent = 0
        for port in sorted(self._ports.get(ip, ())):
            txn = next_txn()
            outstanding[txn] = QUERY_PING
            query = PingQuery(txn, _SENDER_ID)
            send(Endpoint(ip, port), encode_message(query))
            log_append(SentRecord(now, QUERY_PING, ip, port, txn.hex()))
            sent += 1
        self.stats.pings_sent += sent
        self._last_contact[ip] = now

    def _cooled_down(self, ip: int, now: Optional[float] = None) -> bool:
        last = self._last_contact.get(ip)
        if last is None:
            return True
        wait = (
            self.config.contact_cooldown
            if ip in self._responded
            else self.config.retry_interval
        )
        if now is None:
            now = self._scheduler.now
        return now - last >= wait

    def _tick(self) -> None:
        """Pacing tick: contact up to ``queries_per_tick`` queued IPs."""
        budget = self.config.queries_per_tick
        deferred: List[int] = []
        # The clock only advances between callbacks, so one read serves
        # the whole tick — this method and its cooldown checks run a few
        # million times per crawl.
        now = self._scheduler.now
        queue = self._queue
        queued = self._queued
        attempts = self._attempts
        responded = self._responded
        cooled_down = self._cooled_down
        while budget > 0 and queue:
            ip = queue.popleft()
            if not cooled_down(ip, now):
                deferred.append(ip)
                continue
            queued.discard(ip)
            self._contacted.add(ip)
            attempts[ip] = attempts.get(ip, 0) + 1
            self._awaiting.add(ip)
            self._send_get_nodes(ip)
            budget -= 1
        # IPs still cooling down go to the back of the queue.
        queue.extend(deferred)
        # Loss recovery: unanswered IPs get re-queued once their
        # cooldown expires, up to the attempt budget.
        max_attempts = self.config.max_get_nodes_attempts
        awaiting = self._awaiting
        for ip in list(awaiting):
            if ip in responded:
                awaiting.discard(ip)
                continue
            if not cooled_down(ip, now):
                continue
            awaiting.discard(ip)
            if attempts.get(ip, 0) < max_attempts and ip not in queued:
                queue.append(ip)
                queued.add(ip)

    def _rewalk(self) -> None:
        """Re-queue every previously-responsive IP for get_nodes: the
        steady-state behaviour of a continuously running crawler."""
        for ip in self._responded:
            if ip not in self._queued:
                self._queue.append(ip)
                self._queued.add(ip)
                self._attempts[ip] = 0

    def _ping_round(self) -> None:
        """Hourly verification: ping all ports of multi-port IPs."""
        now = self._scheduler.now
        for ip in sorted(self._multiport):
            if self._cooled_down(ip, now):
                self._send_pings(ip)

    # -- receiving -----------------------------------------------------

    def _handle(self, datagram: Datagram) -> None:
        try:
            message = decode_message(datagram.payload)
        except KrpcError:
            self.stats.malformed += 1
            return
        now = self._scheduler.now
        src = datagram.src
        if isinstance(message, PingResponse):
            if self._outstanding.pop(message.txn, None) != QUERY_PING:
                return  # unsolicited or duplicate
            node_hex = message.responder_id.hex()
            self._node_ids.add(node_hex)
            self.stats.unique_node_ids = len(self._node_ids)
            self.stats.ping_responses += 1
            self._responded.add(src.ip)
            self.log.append(
                ReceivedRecord(
                    now,
                    QUERY_PING,
                    src.ip,
                    src.port,
                    node_hex,
                    message.txn.hex(),
                    message.version.hex() if message.version else None,
                )
            )
        elif isinstance(message, GetNodesResponse):
            if self._outstanding.pop(message.txn, None) != QUERY_GET_NODES:
                return
            node_hex = message.responder_id.hex()
            self._node_ids.add(node_hex)
            self.stats.unique_node_ids = len(self._node_ids)
            self.stats.get_nodes_received += 1
            self._responded.add(src.ip)
            self.log.append(
                ReceivedRecord(
                    now,
                    QUERY_GET_NODES,
                    src.ip,
                    src.port,
                    node_hex,
                    message.txn.hex(),
                    message.version.hex() if message.version else None,
                )
            )
            # The responder itself is a sighting (it may answer from a
            # port we had not seen), as is every contact it returned.
            self._note_sighting(src.ip, src.port)
            for contact in message.nodes:
                self._note_sighting(contact.ip, contact.port)
        # Queries and errors directed at the crawler are ignored.
