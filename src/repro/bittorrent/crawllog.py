"""Crawl log records and JSONL (de)serialisation.

The paper: "The crawler logs all the messages (bt_ping or get_nodes)
sent and all the messages received with the timestamps, which are then
processed to determine NATed addresses." Detection (repro.natdetect) is
a pure function over these records, so a crawl can be stored, shared,
and re-analysed — the property that makes the technique replicable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

__all__ = [
    "QUERY_PING",
    "QUERY_GET_NODES",
    "SentRecord",
    "ReceivedRecord",
    "CrawlRecord",
    "CrawlLog",
    "write_jsonl",
    "read_jsonl",
]

QUERY_PING = "bt_ping"
QUERY_GET_NODES = "get_nodes"
_KINDS = (QUERY_PING, QUERY_GET_NODES)


@dataclass(frozen=True, slots=True)
class SentRecord:
    """A query the crawler sent."""

    time: float
    kind: str
    dst_ip: int
    dst_port: int
    txn: str  # hex

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown query kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class ReceivedRecord:
    """A response the crawler received."""

    time: float
    kind: str
    src_ip: int
    src_port: int
    node_id: str  # hex
    txn: str  # hex
    version: Optional[str] = None  # hex or None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown response kind {self.kind!r}")


CrawlRecord = Union[SentRecord, ReceivedRecord]


class CrawlLog:
    """In-memory, append-only crawl log."""

    def __init__(self) -> None:
        self._records: List[CrawlRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CrawlRecord]:
        return iter(self._records)

    def append(self, record: CrawlRecord) -> None:
        """Append one record (records arrive in time order)."""
        self._records.append(record)

    def sent(self) -> Iterator[SentRecord]:
        """All sent-query records."""
        return (r for r in self._records if isinstance(r, SentRecord))

    def received(self) -> Iterator[ReceivedRecord]:
        """All received-response records."""
        return (r for r in self._records if isinstance(r, ReceivedRecord))

    def response_rate(self, kind: Optional[str] = None) -> float:
        """Responses/queries ratio (the paper reports 48.6% for pings)."""
        sent = sum(1 for r in self.sent() if kind is None or r.kind == kind)
        got = sum(
            1 for r in self.received() if kind is None or r.kind == kind
        )
        return got / sent if sent else 0.0


def _to_json(record: CrawlRecord) -> dict:
    if isinstance(record, SentRecord):
        return {
            "dir": "sent",
            "t": record.time,
            "kind": record.kind,
            "ip": record.dst_ip,
            "port": record.dst_port,
            "txn": record.txn,
        }
    return {
        "dir": "recv",
        "t": record.time,
        "kind": record.kind,
        "ip": record.src_ip,
        "port": record.src_port,
        "id": record.node_id,
        "txn": record.txn,
        "v": record.version,
    }


def _from_json(obj: dict) -> CrawlRecord:
    direction = obj.get("dir")
    if direction == "sent":
        return SentRecord(
            time=float(obj["t"]),
            kind=obj["kind"],
            dst_ip=int(obj["ip"]),
            dst_port=int(obj["port"]),
            txn=obj["txn"],
        )
    if direction == "recv":
        return ReceivedRecord(
            time=float(obj["t"]),
            kind=obj["kind"],
            src_ip=int(obj["ip"]),
            src_port=int(obj["port"]),
            node_id=obj["id"],
            txn=obj["txn"],
            version=obj.get("v"),
        )
    raise ValueError(f"unknown record direction {direction!r}")


def write_jsonl(records: Iterable[CrawlRecord], path: Union[str, Path]) -> int:
    """Write records as JSON Lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_to_json(record), separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> CrawlLog:
    """Load a crawl log previously written with :func:`write_jsonl`."""
    log = CrawlLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                log.append(_from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad crawl record: {exc}"
                ) from exc
    return log
