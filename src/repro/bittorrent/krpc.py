"""KRPC: the DHT's RPC layer (BEP 5) over bencoded UDP datagrams.

Implements the full BEP 5 query set. The two the paper's crawler uses:

* ``bt_ping``   — the DHT ``ping`` query; the reply carries the
  responder's ``node_id`` (and client version), which is how the
  crawler counts distinct simultaneous users behind one IP.
* ``get_nodes`` — the DHT ``find_node`` query; the reply carries up to
  eight neighbours in compact ``(node_id, ip, port)`` form, which is
  how the crawler walks the network.

Plus the content-lookup pair any real DHT node must answer (and the
simulated peers do): ``get_peers`` (with BEP 5 announce tokens; see
:mod:`repro.bittorrent.tokens`) and ``announce_peer``.

Every message round-trips through real bencode bytes: the simulated
peers and the crawler agree only on the wire format, exactly like a
live deployment.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..net.ipv4 import is_valid_ip_int
from ..net.ports import is_valid_port
from .bencode import BencodeError, bdecode, bencode
from .nodeid import NODE_ID_BYTES

__all__ = [
    "KrpcError",
    "NodeInfo",
    "PingQuery",
    "GetNodesQuery",
    "GetPeersQuery",
    "AnnouncePeerQuery",
    "PingResponse",
    "GetNodesResponse",
    "GetPeersResponse",
    "PeerEndpoint",
    "ErrorMessage",
    "pack_peers",
    "unpack_peers",
    "KrpcMessage",
    "encode_message",
    "decode_message",
    "TransactionCounter",
    "pack_nodes",
    "unpack_nodes",
    "ERROR_GENERIC",
    "ERROR_SERVER",
    "ERROR_PROTOCOL",
    "ERROR_METHOD_UNKNOWN",
]

ERROR_GENERIC = 201
ERROR_SERVER = 202
ERROR_PROTOCOL = 203
ERROR_METHOD_UNKNOWN = 204

_COMPACT_NODE_BYTES = NODE_ID_BYTES + 6

#: Precompiled compact codecs — the crawl decodes millions of contacts,
#: and ``struct`` beats per-field ``int.from_bytes`` round trips.
_NODE_STRUCT = struct.Struct(f">{NODE_ID_BYTES}sIH")
_PEER_STRUCT = struct.Struct(">IH")


class KrpcError(ValueError):
    """Raised when a datagram is not a well-formed KRPC message."""


@dataclass(frozen=True, slots=True)
class NodeInfo:
    """One contact in compact node format: id + public endpoint."""

    node_id: bytes
    ip: int
    port: int

    def __post_init__(self) -> None:
        if len(self.node_id) != NODE_ID_BYTES:
            raise ValueError("node id must be 20 bytes")
        if not is_valid_ip_int(self.ip):
            raise ValueError(f"bad address integer: {self.ip!r}")
        if not is_valid_port(self.port):
            raise ValueError(f"bad port: {self.port!r}")


_NODE_NEW = NodeInfo.__new__
_FROZEN_SET = object.__setattr__


def pack_nodes(nodes: Sequence[NodeInfo]) -> bytes:
    """Serialise contacts to BEP 5 compact form (26 bytes each)."""
    pack = _NODE_STRUCT.pack
    return b"".join(
        pack(node.node_id, node.ip, node.port) for node in nodes
    )


def unpack_nodes(blob: bytes) -> List[NodeInfo]:
    """Parse compact node info; length must be a multiple of 26."""
    if len(blob) % _COMPACT_NODE_BYTES:
        raise KrpcError(
            f"compact nodes blob of {len(blob)} bytes is not a multiple "
            f"of {_COMPACT_NODE_BYTES}"
        )
    nodes: List[NodeInfo] = []
    append = nodes.append
    node_new = _NODE_NEW
    set_field = _FROZEN_SET
    # struct ``>20sIH`` guarantees a 20-byte id, a 32-bit address and a
    # 16-bit port, so constructing via __new__ skips the (provably
    # redundant) __post_init__ validation — only the zero-port rule
    # needs checking. The crawl unpacks millions of contacts.
    for node_id, ip, port in _NODE_STRUCT.iter_unpack(blob):
        if port == 0:
            raise KrpcError("zero port in compact node info")
        node = node_new(NodeInfo)
        set_field(node, "node_id", node_id)
        set_field(node, "ip", ip)
        set_field(node, "port", port)
        append(node)
    return nodes


@dataclass(frozen=True, slots=True)
class PingQuery:
    """``ping`` query (the paper's *bt_ping*)."""

    txn: bytes
    sender_id: bytes


@dataclass(frozen=True, slots=True)
class GetNodesQuery:
    """``find_node`` query (the paper's *get_nodes*)."""

    txn: bytes
    sender_id: bytes
    target: bytes


@dataclass(frozen=True, slots=True)
class GetPeersQuery:
    """``get_peers`` query: who has ``info_hash``?"""

    txn: bytes
    sender_id: bytes
    info_hash: bytes


@dataclass(frozen=True, slots=True)
class AnnouncePeerQuery:
    """``announce_peer`` query: register me as a peer for
    ``info_hash``. Requires a token from a prior get_peers response."""

    txn: bytes
    sender_id: bytes
    info_hash: bytes
    port: int
    token: bytes


@dataclass(frozen=True, slots=True)
class PingResponse:
    """Reply to ping: responder's id (plus optional client version)."""

    txn: bytes
    responder_id: bytes
    version: Optional[bytes] = None


@dataclass(frozen=True, slots=True)
class GetNodesResponse:
    """Reply to find_node: responder's id and its closest contacts."""

    txn: bytes
    responder_id: bytes
    nodes: Tuple[NodeInfo, ...]
    version: Optional[bytes] = None


@dataclass(frozen=True, slots=True)
class GetPeersResponse:
    """Reply to get_peers: a token plus either known peers (values)
    or the closest contacts (nodes)."""

    txn: bytes
    responder_id: bytes
    token: bytes
    values: Tuple["PeerEndpoint", ...] = ()
    nodes: Tuple[NodeInfo, ...] = ()
    version: Optional[bytes] = None


@dataclass(frozen=True, slots=True)
class PeerEndpoint:
    """A peer in compact 6-byte form: (ip, port)."""

    ip: int
    port: int

    def __post_init__(self) -> None:
        if not is_valid_ip_int(self.ip):
            raise ValueError(f"bad peer address: {self.ip!r}")
        if not is_valid_port(self.port):
            raise ValueError(f"bad peer port: {self.port!r}")


def pack_peers(peers: Sequence["PeerEndpoint"]) -> List[bytes]:
    """Compact peer entries (one 6-byte string per peer)."""
    pack = _PEER_STRUCT.pack
    return [pack(peer.ip, peer.port) for peer in peers]


def unpack_peers(blobs: Sequence[bytes]) -> List["PeerEndpoint"]:
    """Parse compact peer entries."""
    unpack = _PEER_STRUCT.unpack
    peers: List[PeerEndpoint] = []
    append = peers.append
    for blob in blobs:
        if not isinstance(blob, bytes) or len(blob) != 6:
            raise KrpcError(f"bad compact peer entry {blob!r}")
        ip, port = unpack(blob)
        if port == 0:
            raise KrpcError("zero port in compact peer entry")
        append(PeerEndpoint(ip, port))
    return peers


@dataclass(frozen=True, slots=True)
class ErrorMessage:
    """KRPC error (``y`` = ``e``)."""

    txn: bytes
    code: int
    message: str


KrpcMessage = Union[
    PingQuery,
    GetNodesQuery,
    GetPeersQuery,
    AnnouncePeerQuery,
    PingResponse,
    GetNodesResponse,
    GetPeersResponse,
    ErrorMessage,
]


class TransactionCounter:
    """Generates compact unique transaction ids for outgoing queries."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next(self) -> bytes:
        """Return the next transaction id (2+ bytes, big-endian)."""
        value = next(self._counter)
        width = max(2, (value.bit_length() + 7) // 8)
        return value.to_bytes(width, "big")


def encode_message(message: KrpcMessage) -> bytes:
    """Serialise a typed message to bencoded wire bytes."""
    if isinstance(message, PingQuery):
        payload = {
            b"t": message.txn,
            b"y": b"q",
            b"q": b"ping",
            b"a": {b"id": message.sender_id},
        }
    elif isinstance(message, GetNodesQuery):
        payload = {
            b"t": message.txn,
            b"y": b"q",
            b"q": b"find_node",
            b"a": {b"id": message.sender_id, b"target": message.target},
        }
    elif isinstance(message, GetPeersQuery):
        payload = {
            b"t": message.txn,
            b"y": b"q",
            b"q": b"get_peers",
            b"a": {b"id": message.sender_id, b"info_hash": message.info_hash},
        }
    elif isinstance(message, AnnouncePeerQuery):
        payload = {
            b"t": message.txn,
            b"y": b"q",
            b"q": b"announce_peer",
            b"a": {
                b"id": message.sender_id,
                b"info_hash": message.info_hash,
                b"port": message.port,
                b"token": message.token,
            },
        }
    elif isinstance(message, GetPeersResponse):
        body = {
            b"id": message.responder_id,
            b"token": message.token,
        }
        if message.values:
            body[b"values"] = pack_peers(message.values)
        if message.nodes:
            body[b"nodes"] = pack_nodes(message.nodes)
        payload = {b"t": message.txn, b"y": b"r", b"r": body}
        if message.version is not None:
            payload[b"v"] = message.version
    elif isinstance(message, PingResponse):
        payload = {
            b"t": message.txn,
            b"y": b"r",
            b"r": {b"id": message.responder_id},
        }
        if message.version is not None:
            payload[b"v"] = message.version
    elif isinstance(message, GetNodesResponse):
        payload = {
            b"t": message.txn,
            b"y": b"r",
            b"r": {
                b"id": message.responder_id,
                b"nodes": pack_nodes(message.nodes),
            },
        }
        if message.version is not None:
            payload[b"v"] = message.version
    elif isinstance(message, ErrorMessage):
        payload = {
            b"t": message.txn,
            b"y": b"e",
            b"e": [message.code, message.message.encode("utf-8")],
        }
    else:
        raise TypeError(f"not a KRPC message: {type(message).__name__}")
    return bencode(payload)


def decode_message(data: bytes) -> KrpcMessage:
    """Parse wire bytes into a typed message.

    Raises :class:`KrpcError` on anything malformed; a DHT node on the
    open internet sees plenty of garbage and must reject it cleanly.
    """
    try:
        root = bdecode(data)
    except BencodeError as exc:
        raise KrpcError(f"not bencode: {exc}") from exc
    if not isinstance(root, dict):
        raise KrpcError("KRPC root must be a dict")
    txn = root.get(b"t")
    if not isinstance(txn, bytes) or not txn:
        raise KrpcError("missing/invalid transaction id")
    kind = root.get(b"y")
    if kind == b"q":
        return _decode_query(root, txn)
    if kind == b"r":
        return _decode_response(root, txn)
    if kind == b"e":
        return _decode_error(root, txn)
    raise KrpcError(f"unknown message kind {kind!r}")


def _require_id(args: dict, key: bytes) -> bytes:
    value = args.get(key)
    if not isinstance(value, bytes) or len(value) != NODE_ID_BYTES:
        raise KrpcError(f"missing/invalid {key.decode()} field")
    return value


def _decode_query(root: dict, txn: bytes) -> KrpcMessage:
    method = root.get(b"q")
    args = root.get(b"a")
    if not isinstance(args, dict):
        raise KrpcError("query without args dict")
    sender_id = _require_id(args, b"id")
    if method == b"ping":
        return PingQuery(txn, sender_id)
    if method == b"find_node":
        target = _require_id(args, b"target")
        return GetNodesQuery(txn, sender_id, target)
    if method == b"get_peers":
        info_hash = _require_id(args, b"info_hash")
        return GetPeersQuery(txn, sender_id, info_hash)
    if method == b"announce_peer":
        info_hash = _require_id(args, b"info_hash")
        port = args.get(b"port")
        token = args.get(b"token")
        if not isinstance(port, int) or not is_valid_port(port):
            raise KrpcError("missing/invalid announce port")
        if not isinstance(token, bytes) or not token:
            raise KrpcError("missing/invalid announce token")
        return AnnouncePeerQuery(txn, sender_id, info_hash, port, token)
    raise KrpcError(f"unsupported query method {method!r}")


def _decode_response(root: dict, txn: bytes) -> KrpcMessage:
    body = root.get(b"r")
    if not isinstance(body, dict):
        raise KrpcError("response without body dict")
    responder_id = _require_id(body, b"id")
    version = root.get(b"v")
    if version is not None and not isinstance(version, bytes):
        raise KrpcError("version field must be bytes")
    token = body.get(b"token")
    if token is not None:
        # get_peers response: token plus values and/or nodes.
        if not isinstance(token, bytes):
            raise KrpcError("token field must be bytes")
        values_blob = body.get(b"values", [])
        if not isinstance(values_blob, list):
            raise KrpcError("values field must be a list")
        nodes_blob = body.get(b"nodes", b"")
        if not isinstance(nodes_blob, bytes):
            raise KrpcError("nodes field must be bytes")
        return GetPeersResponse(
            txn,
            responder_id,
            token,
            tuple(unpack_peers(values_blob)),
            tuple(unpack_nodes(nodes_blob)),
            version,
        )
    nodes_blob = body.get(b"nodes")
    if nodes_blob is None:
        return PingResponse(txn, responder_id, version)
    if not isinstance(nodes_blob, bytes):
        raise KrpcError("nodes field must be bytes")
    return GetNodesResponse(
        txn, responder_id, tuple(unpack_nodes(nodes_blob)), version
    )


def _decode_error(root: dict, txn: bytes) -> ErrorMessage:
    body = root.get(b"e")
    if (
        not isinstance(body, list)
        or len(body) != 2
        or not isinstance(body[0], int)
        or not isinstance(body[1], bytes)
    ):
        raise KrpcError("error body must be [code, message]")
    return ErrorMessage(txn, body[0], body[1].decode("utf-8", "replace"))
