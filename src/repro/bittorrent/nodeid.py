"""160-bit DHT node identifiers.

Per the paper (Section 3.1): "Every user generates its own unique
160-bit node_id that is obtained by hashing the (possibly private) IP
address of the user and a random number", and ids are regenerated on
reboot — which is precisely why the crawler refuses to use node_ids to
distinguish users and relies on simultaneous port liveness instead.
"""

from __future__ import annotations

import hashlib
import random

from ..net.ipv4 import int_to_ip, is_valid_ip_int

__all__ = [
    "NODE_ID_BYTES",
    "generate_node_id",
    "node_id_hex",
    "xor_distance",
    "common_prefix_bits",
]

#: Width of a DHT node identifier.
NODE_ID_BYTES = 20


def generate_node_id(private_ip: int, rng: random.Random) -> bytes:
    """Generate a node id the way the paper describes: SHA-1 over the
    client's (possibly private) IP address and a random number.

    Each call draws a fresh random number, so calling again for the same
    host models a reboot (new id, same address).
    """
    if not is_valid_ip_int(private_ip):
        raise ValueError(f"bad address integer: {private_ip!r}")
    nonce = rng.getrandbits(64)
    material = f"{int_to_ip(private_ip)}|{nonce}".encode("ascii")
    return hashlib.sha1(material).digest()


def node_id_hex(node_id: bytes) -> str:
    """Render a node id for logs."""
    _check(node_id)
    return node_id.hex()


def xor_distance(a: bytes, b: bytes) -> int:
    """Kademlia XOR metric between two node ids."""
    _check(a)
    _check(b)
    return int.from_bytes(a, "big") ^ int.from_bytes(b, "big")


def common_prefix_bits(a: bytes, b: bytes) -> int:
    """Number of leading bits shared by ``a`` and ``b`` (the k-bucket
    index in a routing table centred on ``a``)."""
    distance = xor_distance(a, b)
    if distance == 0:
        return NODE_ID_BYTES * 8
    return NODE_ID_BYTES * 8 - distance.bit_length()


def _check(node_id: bytes) -> None:
    if not isinstance(node_id, bytes) or len(node_id) != NODE_ID_BYTES:
        raise ValueError(
            f"node id must be {NODE_ID_BYTES} bytes, got {node_id!r}"
        )
