"""Simulated BitTorrent DHT peers.

A peer owns a socket (public or NAT-translated), a node id derived from
its *private* address, a k-bucket routing table, and answers ``ping``
and ``find_node`` queries on the wire. Restarting a peer regenerates its
node id and rebinds on a fresh port — both behaviours the paper calls
out as confounders its crawler must handle (stale port entries, node_id
churn on reboot).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from ..sim.nat import NatBehaviour, NatGateway, Socket
from ..sim.udp import Datagram, Endpoint
from .krpc import (
    AnnouncePeerQuery,
    ErrorMessage,
    GetNodesQuery,
    GetNodesResponse,
    GetPeersQuery,
    GetPeersResponse,
    KrpcError,
    NodeInfo,
    PeerEndpoint,
    PingQuery,
    PingResponse,
    decode_message,
    encode_message,
    ERROR_GENERIC,
    ERROR_PROTOCOL,
)
from .tokens import TokenManager
from .nodeid import generate_node_id
from .routing import BUCKET_SIZE, RoutingTable

__all__ = ["SimulatedPeer", "CLIENT_VERSIONS"]

#: Client version tags observed in the wild (BEP 20 style), used to
#: populate the ``v`` field of responses.
CLIENT_VERSIONS = (b"UT\x03\x05", b"LT\x01\x02", b"TR\x03\x00", b"qB\x04\x03")

SocketFactory = Callable[[], Socket]


class SimulatedPeer:
    """One DHT participant.

    ``private_ip`` is the address the client itself sees (RFC1918 when
    behind a NAT); ``socket.endpoint`` is what the rest of the DHT sees.
    """

    def __init__(
        self,
        peer_key: str,
        private_ip: int,
        socket_factory: SocketFactory,
        rng: random.Random,
        *,
        bucket_size: int = BUCKET_SIZE,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.peer_key = peer_key
        self.private_ip = private_ip
        self._socket_factory = socket_factory
        self._rng = rng
        self.version = rng.choice(CLIENT_VERSIONS)
        self.node_id = generate_node_id(private_ip, rng)
        self.table = RoutingTable(self.node_id, bucket_size)
        self.socket: Optional[Socket] = None
        self.online = False
        self.restarts = 0
        self._now = now_fn if now_fn is not None else (lambda: 0.0)
        self._tokens = TokenManager(
            bytes(rng.getrandbits(8) for _ in range(16))
        )
        # info_hash -> {(ip, port) -> announce time}.
        self.peer_store: Dict[bytes, Dict[Tuple[int, int], float]] = {}

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Bind the socket and begin answering queries."""
        if self.online:
            raise RuntimeError(f"peer {self.peer_key} already online")
        self.socket = self._socket_factory()
        self.socket.on_receive(self._handle)
        self.online = True

    def stop(self) -> None:
        """Go offline (socket closes; routing entries elsewhere go
        stale). Idempotent."""
        if self.socket is not None and not self.socket.closed:
            self.socket.close()
        self.online = False

    def restart(self) -> None:
        """Model a client/machine restart: new port, new node id.

        The routing table survives (clients persist it to disk); the
        rest of the DHT still advertises the *old* endpoint until
        entries age out — the stale-information case of Section 3.1.
        """
        self.stop()
        self.node_id = generate_node_id(self.private_ip, self._rng)
        old_table = self.table
        self.table = RoutingTable(self.node_id, old_table.bucket_size)
        for contact in old_table:
            self.table.insert(contact)
        self.restarts += 1
        self.start()

    @property
    def endpoint(self) -> Endpoint:
        """Public endpoint other nodes see. Peer must be online."""
        if self.socket is None:
            raise RuntimeError(f"peer {self.peer_key} has no socket")
        return self.socket.endpoint

    def contact_info(self) -> NodeInfo:
        """This peer as a compact routing-table contact."""
        endpoint = self.endpoint
        return NodeInfo(self.node_id, endpoint.ip, endpoint.port)

    def learn(self, contact: NodeInfo) -> None:
        """Offer a contact to the routing table (join-time gossip)."""
        self.table.insert(contact)

    # -- query handling ----------------------------------------------

    def _handle(self, datagram: Datagram) -> None:
        if self.socket is None or self.socket.closed:
            return
        try:
            message = decode_message(datagram.payload)
        except KrpcError:
            # Garbage on the DHT port is routine; a real client ignores
            # it or answers with a protocol error. We answer.
            reply = ErrorMessage(b"\x00\x00", ERROR_PROTOCOL, "malformed")
            self.socket.send(datagram.src, encode_message(reply))
            return
        if isinstance(message, PingQuery):
            response = PingResponse(message.txn, self.node_id, self.version)
            self.socket.send(datagram.src, encode_message(response))
        elif isinstance(message, GetPeersQuery):
            token = self._tokens.issue(datagram.src.ip, self._now())
            stored = self.peer_store.get(message.info_hash, {})
            values = tuple(
                PeerEndpoint(ip, port) for ip, port in sorted(stored)
            )
            nodes = (
                ()
                if values
                else tuple(self.table.closest(message.info_hash, BUCKET_SIZE))
            )
            response = GetPeersResponse(
                message.txn, self.node_id, token, values, nodes, self.version
            )
            self.socket.send(datagram.src, encode_message(response))
        elif isinstance(message, AnnouncePeerQuery):
            if not self._tokens.validate(
                datagram.src.ip, message.token, self._now()
            ):
                reply = ErrorMessage(
                    message.txn, ERROR_GENERIC, "bad announce token"
                )
                self.socket.send(datagram.src, encode_message(reply))
                return
            store = self.peer_store.setdefault(message.info_hash, {})
            store[(datagram.src.ip, message.port)] = self._now()
            response = PingResponse(message.txn, self.node_id, self.version)
            self.socket.send(datagram.src, encode_message(response))
        elif isinstance(message, GetNodesQuery):
            nodes = tuple(self.table.closest(message.target, BUCKET_SIZE))
            response = GetNodesResponse(
                message.txn, self.node_id, nodes, self.version
            )
            self.socket.send(datagram.src, encode_message(response))
            self.table.insert(
                NodeInfo(message.sender_id, datagram.src.ip, datagram.src.port)
            )
        # Responses/errors arriving at a peer are ignored: simulated
        # peers never originate queries (overlay construction wires the
        # tables directly; see swarm.py).


def make_nat_socket_factory(
    gateway: NatGateway,
    *,
    reachable: bool,
    rng: random.Random,
) -> SocketFactory:
    """Socket factory for a peer behind ``gateway``.

    ``reachable`` peers get a full-cone (or forwarded) mapping that the
    crawler can ping; unreachable ones get address-restricted mappings
    and are invisible to it — the source of the paper's undercount.
    """

    def factory() -> Socket:
        if reachable:
            return gateway.open_socket(behaviour=NatBehaviour.FULL_CONE)
        return gateway.open_socket(
            behaviour=NatBehaviour.ADDRESS_RESTRICTED
        )

    return factory
