"""Kademlia k-bucket routing table.

Simulated peers answer get_nodes from a real routing table, which is
what makes the crawler's walk (and its encounters with *stale* entries)
faithful: a bucket can hold a contact whose socket has since closed or
whose client restarted on another port.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .krpc import NodeInfo
from .nodeid import NODE_ID_BYTES, common_prefix_bits, xor_distance

__all__ = ["BUCKET_SIZE", "RoutingTable"]

#: Standard Kademlia bucket width (and the number of neighbours a new
#: BitTorrent user learns, per the paper).
BUCKET_SIZE = 8


class RoutingTable:
    """Fixed-depth k-bucket table centred on ``own_id``.

    Buckets are indexed by shared-prefix length. Insertion follows the
    classic policy: update an existing contact in place, append when the
    bucket has room, otherwise drop the newcomer (peers here do not
    evict via liveness checks; churned entries simply go stale — the
    exact behaviour the crawler must cope with).
    """

    def __init__(self, own_id: bytes, bucket_size: int = BUCKET_SIZE) -> None:
        if len(own_id) != NODE_ID_BYTES:
            raise ValueError("own id must be 20 bytes")
        if bucket_size <= 0:
            raise ValueError(f"bucket size must be positive: {bucket_size}")
        self.own_id = own_id
        self.bucket_size = bucket_size
        self._buckets: Dict[int, List[NodeInfo]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __iter__(self) -> Iterator[NodeInfo]:
        for index in sorted(self._buckets):
            yield from self._buckets[index]

    def insert(self, contact: NodeInfo) -> bool:
        """Offer ``contact`` to the table. Returns True when stored
        (inserted or refreshed), False when the bucket was full."""
        if contact.node_id == self.own_id:
            return False
        index = common_prefix_bits(self.own_id, contact.node_id)
        bucket = self._buckets.setdefault(index, [])
        for position, existing in enumerate(bucket):
            if existing.node_id == contact.node_id:
                bucket[position] = contact
                return True
        if len(bucket) < self.bucket_size:
            bucket.append(contact)
            return True
        return False

    def remove(self, node_id: bytes) -> bool:
        """Drop the contact with ``node_id``; True when it was present."""
        index = common_prefix_bits(self.own_id, node_id)
        bucket = self._buckets.get(index)
        if not bucket:
            return False
        for position, existing in enumerate(bucket):
            if existing.node_id == node_id:
                del bucket[position]
                return True
        return False

    def closest(self, target: bytes, count: int = BUCKET_SIZE) -> List[NodeInfo]:
        """The ``count`` contacts closest to ``target`` by XOR metric —
        the payload of a get_nodes response."""
        if len(target) != NODE_ID_BYTES:
            raise ValueError("target must be 20 bytes")
        contacts = list(self)
        contacts.sort(key=lambda node: xor_distance(node.node_id, target))
        return contacts[:count]

    def random_contacts(self, rng, count: int) -> List[NodeInfo]:
        """A random sample of contacts (peer gossip)."""
        contacts = list(self)
        if len(contacts) <= count:
            return contacts
        return rng.sample(contacts, count)

    def contains(self, node_id: bytes) -> bool:
        """True when a contact with ``node_id`` is stored."""
        index = common_prefix_bits(self.own_id, node_id)
        return any(
            existing.node_id == node_id
            for existing in self._buckets.get(index, [])
        )
