"""DHT overlay construction and churn.

Builds the population of simulated peers (public hosts, home-NAT users,
CGN users), wires their routing tables the way joins would (each new
user learns eight neighbours — paper Section 3.1), and schedules churn
during the crawl:

* **restarts** — a client rebinds on a new port with a new node_id,
  leaving stale entries in other tables (the paper's false-NAT signal);
* **departures** — a client goes offline; tables keep advertising it.

The overlay is deliberately decoupled from the internet ground-truth
model: it consumes :class:`PeerSpec` records, which
:mod:`repro.internet.scenario` produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.events import Scheduler
from ..sim.nat import HostStack, Socket
from ..sim.udp import Endpoint, UdpFabric
from .peer import SimulatedPeer
from .routing import BUCKET_SIZE

__all__ = ["PeerSpec", "DhtOverlay", "build_overlay"]

SocketFactory = Callable[[], Socket]


@dataclass
class PeerSpec:
    """Everything the overlay needs to instantiate one DHT user."""

    key: str
    private_ip: int
    socket_factory: SocketFactory


class DhtOverlay:
    """The running overlay: peers, bootstrap node, and churn control."""

    def __init__(
        self,
        peers: Dict[str, SimulatedPeer],
        bootstrap: SimulatedPeer,
        rng: random.Random,
    ) -> None:
        self.peers = peers
        self.bootstrap = bootstrap
        self._rng = rng

    @property
    def bootstrap_endpoint(self) -> Endpoint:
        """Where a crawler should send its first get_nodes."""
        return self.bootstrap.endpoint

    def online_peers(self) -> List[SimulatedPeer]:
        """Peers currently answering queries."""
        return [p for p in self.peers.values() if p.online]

    def announce(self, peer: SimulatedPeer, fanout: int = BUCKET_SIZE) -> None:
        """Insert ``peer`` into ``fanout`` random online tables (what a
        (re)joining client's traffic achieves)."""
        online = [p for p in self.online_peers() if p is not peer]
        if not online:
            return
        contact = peer.contact_info()
        for neighbour in self._rng.sample(online, min(fanout, len(online))):
            neighbour.learn(contact)
        self.bootstrap.learn(contact)

    def schedule_churn(
        self,
        scheduler: Scheduler,
        *,
        duration: float,
        restart_fraction: float = 0.08,
        depart_fraction: float = 0.04,
    ) -> None:
        """Schedule restarts and departures uniformly over ``duration``.

        Restarted peers re-announce, so both their stale and fresh
        endpoints circulate — the crawler must disambiguate them.
        """
        if not 0 <= restart_fraction <= 1 or not 0 <= depart_fraction <= 1:
            raise ValueError("churn fractions must be within [0, 1]")
        population = list(self.peers.values())
        self._rng.shuffle(population)
        n_restart = int(len(population) * restart_fraction)
        n_depart = int(len(population) * depart_fraction)
        restarting = population[:n_restart]
        departing = population[n_restart : n_restart + n_depart]
        # Draw order (restarts, then departures) and batch order match
        # the per-peer ``after`` loops this replaces, so event sequence
        # numbers — and therefore replay — are unchanged.
        base = scheduler.now
        batch = []
        for peer in restarting:
            when = base + self._rng.uniform(0, duration)

            def do_restart(p: SimulatedPeer = peer) -> None:
                if p.online:
                    p.restart()
                    self.announce(p)

            batch.append((when, do_restart))
        for peer in departing:
            when = base + self._rng.uniform(0, duration)

            def do_depart(p: SimulatedPeer = peer) -> None:
                p.stop()

            batch.append((when, do_depart))
        scheduler.at_batch(batch)


def build_overlay(
    fabric: UdpFabric,
    specs: Sequence[PeerSpec],
    bootstrap_stack: HostStack,
    rng: random.Random,
    *,
    join_fanout: int = BUCKET_SIZE,
    bootstrap_sample: int = 2000,
) -> DhtOverlay:
    """Instantiate and wire the overlay.

    Table wiring reproduces the *result* of organic joins without
    paying for millions of join messages: every peer learns
    ``join_fanout`` random live contacts, is learned by that many in
    return, and the bootstrap node knows a broad sample. The crawl
    itself then runs entirely at the message level.
    """
    if not specs:
        raise ValueError("cannot build an empty overlay")
    peers: Dict[str, SimulatedPeer] = {}
    for spec in specs:
        if spec.key in peers:
            raise ValueError(f"duplicate peer key {spec.key!r}")
        peer = SimulatedPeer(
            spec.key,
            spec.private_ip,
            spec.socket_factory,
            rng,
            now_fn=lambda: fabric.scheduler.now,
        )
        peer.start()
        peers[spec.key] = peer

    bootstrap = SimulatedPeer(
        "bootstrap",
        bootstrap_stack.ip,
        bootstrap_stack.open_socket,
        rng,
        bucket_size=64,  # router-class node: deep buckets
        now_fn=lambda: fabric.scheduler.now,
    )
    bootstrap.start()

    all_peers = list(peers.values())
    for peer in all_peers:
        others = rng.sample(
            all_peers, min(join_fanout + 1, len(all_peers))
        )
        learned = 0
        for other in others:
            if other is peer:
                continue
            peer.learn(other.contact_info())
            other.learn(peer.contact_info())
            learned += 1
            if learned >= join_fanout:
                break

    for peer in rng.sample(all_peers, min(bootstrap_sample, len(all_peers))):
        bootstrap.learn(peer.contact_info())

    return DhtOverlay(peers, bootstrap, rng)
