"""BEP 5 announce tokens.

A DHT node must not let arbitrary parties register peers for arbitrary
info-hashes: ``get_peers`` responses carry an opaque *token* bound to
the requester's IP, and ``announce_peer`` is only accepted with a
token the node recently issued to that IP. Tokens are an HMAC-style
hash of a rotating secret and the requester address; the previous
secret stays valid for one rotation period (a requester may announce
up to ~10 minutes after asking).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from ..net.ipv4 import int_to_ip, is_valid_ip_int

__all__ = ["TOKEN_ROTATION_SECONDS", "TokenManager"]

#: BEP 5 suggests tokens stay acceptable for up to ten minutes.
TOKEN_ROTATION_SECONDS = 300.0


class TokenManager:
    """Issues and validates announce tokens for one node."""

    def __init__(
        self,
        node_secret: bytes,
        *,
        rotation_seconds: float = TOKEN_ROTATION_SECONDS,
    ) -> None:
        if not node_secret:
            raise ValueError("node secret must be non-empty")
        if rotation_seconds <= 0:
            raise ValueError("rotation period must be positive")
        self._secret = node_secret
        self._rotation = rotation_seconds

    def _epoch(self, now: float) -> int:
        return int(now // self._rotation)

    def _token_for_epoch(self, ip: int, epoch: int) -> bytes:
        material = b"%s|%d|%s" % (
            self._secret,
            epoch,
            int_to_ip(ip).encode("ascii"),
        )
        return hashlib.sha1(material).digest()[:8]

    def issue(self, ip: int, now: float) -> bytes:
        """Token for requester ``ip`` at time ``now``."""
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad requester address: {ip!r}")
        return self._token_for_epoch(ip, self._epoch(now))

    def validate(self, ip: int, token: bytes, now: float) -> bool:
        """True when ``token`` was issued to ``ip`` in the current or
        previous rotation period."""
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad requester address: {ip!r}")
        epoch = self._epoch(now)
        candidates: List[bytes] = [self._token_for_epoch(ip, epoch)]
        if epoch > 0:
            candidates.append(self._token_for_epoch(ip, epoch - 1))
        return token in candidates
