"""Blocklist substrate: catalog, formats, feeds, listing timelines."""

from .catalog import MAINTAINERS, BlocklistInfo, build_catalog, catalog_by_maintainer
from .formats import FORMATS, FeedFormatError, parse_feed, serialize_feed
from .timeline import Listing, ListingStore, Window, listings_from_snapshots
from .feed import generate_listings, materialize_snapshot
from .collector import CollectionRun, Collector, FetchResult, publishing_fetcher

__all__ = [
    "MAINTAINERS",
    "BlocklistInfo",
    "build_catalog",
    "catalog_by_maintainer",
    "FORMATS",
    "FeedFormatError",
    "parse_feed",
    "serialize_feed",
    "Listing",
    "ListingStore",
    "Window",
    "listings_from_snapshots",
    "generate_listings",
    "materialize_snapshot",
    "CollectionRun",
    "Collector",
    "FetchResult",
    "publishing_fetcher",
]
