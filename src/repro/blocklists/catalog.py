"""The 151-blocklist catalog (paper Table 2, Appendix B).

The paper monitors 151 public IPv4 blocklists from the BLAG dataset,
spread over 41 maintainers. This module reconstructs that catalog:
every maintainer with its list count, a category profile (what kind of
abuse each list monitors), and feed-behaviour parameters (sensitivity,
removal latency) that the synthetic feed generator uses.

Transcription note: the rows of Table 2 as printed sum to 149; the
dataset description (Section 4) also names DShield and Spamhaus as
included lists, so we add one list for each to reach the paper's total
of exactly 151.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..internet.abuse import AbuseCategory

__all__ = ["BlocklistInfo", "MAINTAINERS", "build_catalog"]


@dataclass(frozen=True)
class BlocklistInfo:
    """One monitored blocklist and its feed behaviour."""

    list_id: str
    name: str
    maintainer: str
    #: Abuse categories the list reacts to.
    categories: Tuple[str, ...]
    #: Probability an in-category abuse event is picked up on its day.
    sensitivity: float
    #: Days after the last observed event before delisting.
    removal_ttl_days: float
    #: Days between an event and its listing appearing.
    report_lag_days: int
    #: File format the feed publishes (see formats.py).
    fmt: str = "plain"
    #: Marked with (*) in Table 2: named by surveyed operators.
    surveyed: bool = False


#: (maintainer, list count, categories, surveyed, base sensitivity,
#:  removal TTL days) — row order follows Table 2.
MAINTAINERS: Tuple[
    Tuple[str, int, Tuple[str, ...], bool, float, float], ...
] = (
    ("Bad IPs", 44, (AbuseCategory.BRUTEFORCE, AbuseCategory.SCAN, AbuseCategory.REPUTATION), False, 0.30, 4.0),
    ("Bambenek", 22, (AbuseCategory.MALWARE,), False, 0.25, 2.0),
    ("Abuse.ch", 10, (AbuseCategory.MALWARE, AbuseCategory.REPUTATION), True, 0.35, 5.0),
    ("Normshield", 9, (AbuseCategory.SCAN, AbuseCategory.REPUTATION), False, 0.25, 3.0),
    ("Blocklist.de", 9, (AbuseCategory.BRUTEFORCE, AbuseCategory.SPAM), True, 0.40, 2.0),
    ("Malware Bytes", 9, (AbuseCategory.MALWARE,), False, 0.25, 6.0),
    ("Project Honeypot", 4, (AbuseCategory.SPAM,), True, 0.35, 6.0),
    ("CoinBlockerLists", 4, (AbuseCategory.MALWARE,), False, 0.20, 8.0),
    ("NoThink", 3, (AbuseCategory.BRUTEFORCE, AbuseCategory.SCAN), False, 0.25, 3.0),
    ("Emerging Threats", 2, (AbuseCategory.REPUTATION, AbuseCategory.DDOS), False, 0.35, 7.0),
    ("ImproWare", 2, (AbuseCategory.SPAM,), False, 0.30, 1.0),
    ("Botvrij.EU", 2, (AbuseCategory.MALWARE,), False, 0.20, 8.0),
    ("IP Finder", 1, (AbuseCategory.REPUTATION,), False, 0.25, 5.0),
    ("Cleantalk", 1, (AbuseCategory.SPAM,), True, 0.45, 1.0),
    ("Sblam!", 1, (AbuseCategory.SPAM,), False, 0.30, 4.0),
    ("Nixspam", 1, (AbuseCategory.SPAM,), True, 0.60, 1.0),
    ("Blocklist Project", 1, (AbuseCategory.REPUTATION,), False, 0.25, 6.0),
    ("BruteforceBlocker", 1, (AbuseCategory.BRUTEFORCE,), False, 0.30, 4.0),
    ("Cruzit", 1, (AbuseCategory.REPUTATION,), False, 0.25, 5.0),
    ("Haley", 1, (AbuseCategory.BRUTEFORCE,), False, 0.30, 6.0),
    ("Botscout", 1, (AbuseCategory.SPAM,), False, 0.35, 2.0),
    ("My IP", 1, (AbuseCategory.REPUTATION,), False, 0.20, 7.0),
    ("Taichung", 1, (AbuseCategory.SCAN,), False, 0.25, 4.0),
    ("Cisco Talos", 1, (AbuseCategory.REPUTATION,), True, 0.40, 4.0),
    ("Alienvault", 1, (AbuseCategory.REPUTATION, AbuseCategory.SPAM), False, 0.55, 3.0),
    ("Binary Defense", 1, (AbuseCategory.REPUTATION,), False, 0.30, 5.0),
    ("GreenSnow", 1, (AbuseCategory.BRUTEFORCE,), False, 0.30, 3.0),
    ("Snort Labs", 1, (AbuseCategory.REPUTATION,), False, 0.25, 5.0),
    ("GPF Comics", 1, (AbuseCategory.SPAM,), False, 0.25, 5.0),
    ("Turris", 1, (AbuseCategory.SCAN,), False, 0.25, 6.0),
    ("CINSscore", 1, (AbuseCategory.REPUTATION,), False, 0.30, 4.0),
    ("Nullsecure", 1, (AbuseCategory.MALWARE,), False, 0.20, 6.0),
    ("DYN", 1, (AbuseCategory.MALWARE,), False, 0.20, 7.0),
    ("Malware Domain List", 1, (AbuseCategory.MALWARE,), False, 0.20, 8.0),
    ("Malc0de", 1, (AbuseCategory.MALWARE,), False, 0.20, 8.0),
    ("URLVir", 1, (AbuseCategory.MALWARE,), False, 0.20, 7.0),
    ("Threatcrowd", 1, (AbuseCategory.REPUTATION,), False, 0.25, 5.0),
    ("CyberCrime", 1, (AbuseCategory.MALWARE,), False, 0.20, 6.0),
    ("IBM X-Force", 1, (AbuseCategory.REPUTATION,), False, 0.30, 5.0),
    ("VXVault", 1, (AbuseCategory.MALWARE,), False, 0.20, 7.0),
    ("Stopforumspam", 1, (AbuseCategory.SPAM,), True, 0.65, 1.0),
    # Reconstructed rows (see module docstring):
    ("DShield", 1, (AbuseCategory.SCAN, AbuseCategory.BRUTEFORCE), False, 0.45, 2.0),
    ("Spamhaus", 1, (AbuseCategory.SPAM,), False, 0.50, 5.0),
)

_SERVICE_TAGS = (
    "ssh", "mail", "http", "ftp", "sip", "rdp", "vnc", "telnet", "dns",
    "smtp", "imap", "proxy", "vpn", "irc", "mysql", "badbots", "apache",
    "nginx", "wordpress", "postfix", "courier", "sasl", "pop3",
)

_FORMATS = ("plain", "cidr", "csv")


def build_catalog() -> List[BlocklistInfo]:
    """Instantiate all 151 lists.

    Multi-list maintainers publish per-service sub-lists (Bad IPs'
    fail2ban-style service feeds, Bambenek's per-family C2 feeds); we
    name them by service tag and vary their sensitivity slightly so the
    per-list volume distribution is heavy-tailed like the real corpus.
    """
    lists: List[BlocklistInfo] = []
    for row_index, (
        maintainer, count, categories, surveyed, sensitivity, ttl
    ) in enumerate(MAINTAINERS):
        for sub_index in range(count):
            slug = maintainer.lower().replace(" ", "").replace(".", "").replace("!", "")
            if count == 1:
                list_id = slug
                name = maintainer
            else:
                tag = _SERVICE_TAGS[sub_index % len(_SERVICE_TAGS)]
                list_id = f"{slug}-{tag}-{sub_index}"
                name = f"{maintainer} ({tag})"
            # Sub-lists of one maintainer shrink in sensitivity: a
            # per-service feed sees only a slice of the abuse stream.
            # Small lists are further damped so listing mass
            # concentrates in the big feeds (the paper's top-10 lists
            # carry 53-70%% of all listed addresses).
            sub_sensitivity = sensitivity / (1.0 + 0.8 * sub_index)
            if sub_sensitivity < 0.4:
                sub_sensitivity *= 0.12
            fmt = _FORMATS[(row_index + sub_index) % len(_FORMATS)]
            lists.append(
                BlocklistInfo(
                    list_id=list_id,
                    name=name,
                    maintainer=maintainer,
                    categories=categories,
                    sensitivity=round(sub_sensitivity, 4),
                    removal_ttl_days=ttl,
                    report_lag_days=(sub_index % 2),
                    fmt=fmt,
                    surveyed=surveyed,
                )
            )
    if len(lists) != 151:
        raise AssertionError(
            f"catalog must contain exactly 151 lists, built {len(lists)}"
        )
    return lists


def catalog_by_maintainer() -> Dict[str, List[BlocklistInfo]]:
    """Catalog grouped by maintainer (Table 2's row structure)."""
    grouped: Dict[str, List[BlocklistInfo]] = {}
    for info in build_catalog():
        grouped.setdefault(info.maintainer, []).append(info)
    return grouped
