"""BLAG-style daily blocklist collection.

The paper's blocklist data comes from a collector that downloads each
feed's published document every day and diffs the snapshots. This
module closes that loop inside the reproduction: lists *publish* daily
documents (in their native formats), the collector fetches and parses
them, and reconstructs listing intervals from the snapshot series —
the inverse of the synthesis the feed generator performs.

A fetch can fail (feeds go down); failed days are recorded as gaps,
and gap handling is the conservative one a real pipeline uses: a gap
splits a presence run rather than papering over it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from .catalog import BlocklistInfo
from .feed import materialize_snapshot
from .formats import FeedFormatError, parse_feed
from .timeline import Listing, ListingStore, listings_from_snapshots

__all__ = ["FetchResult", "CollectionRun", "Collector"]

#: A fetcher returns the document text for (list, day) or raises.
Fetcher = Callable[[BlocklistInfo, int], str]


@dataclass
class FetchResult:
    """Outcome accounting of one collection campaign."""

    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    parse_errors: int = 0

    def success_rate(self) -> float:
        """Fraction of fetches that yielded a parseable document."""
        return self.succeeded / self.attempted if self.attempted else 0.0


@dataclass
class CollectionRun:
    """Everything one campaign collected."""

    store: ListingStore
    stats: FetchResult
    #: (list_id, day) pairs that could not be collected.
    gaps: List[tuple] = field(default_factory=list)


class Collector:
    """Downloads and reconstructs blocklists day by day."""

    def __init__(
        self,
        catalog: Sequence[BlocklistInfo],
        fetcher: Fetcher,
        *,
        failure_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not catalog:
            raise ValueError("collector needs at least one list")
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure rate out of range: {failure_rate}")
        if failure_rate > 0 and rng is None:
            raise ValueError("failure injection needs an RNG")
        self._catalog = list(catalog)
        self._fetcher = fetcher
        self._failure_rate = failure_rate
        self._rng = rng

    def collect(self, days: Sequence[int]) -> CollectionRun:
        """Collect every list on every day in ``days``."""
        stats = FetchResult()
        gaps: List[tuple] = []
        store = ListingStore()
        for info in self._catalog:
            snapshots: Dict[int, Set[int]] = {}
            for day in days:
                stats.attempted += 1
                if (
                    self._failure_rate
                    and self._rng is not None
                    and self._rng.random() < self._failure_rate
                ):
                    stats.failed += 1
                    gaps.append((info.list_id, day))
                    continue
                try:
                    document = self._fetcher(info, day)
                except Exception:
                    stats.failed += 1
                    gaps.append((info.list_id, day))
                    continue
                try:
                    entries = parse_feed(info.fmt, document)
                except FeedFormatError:
                    stats.parse_errors += 1
                    gaps.append((info.list_id, day))
                    continue
                stats.succeeded += 1
                snapshots[day] = {
                    prefix.network
                    for prefix in entries
                    if prefix.length == 32
                }
            for listing in listings_from_snapshots(snapshots, info.list_id):
                store.add(listing)
        return CollectionRun(store=store, stats=stats, gaps=gaps)


def publishing_fetcher(source: ListingStore) -> Fetcher:
    """A fetcher backed by a ground-truth listing store: each list
    'publishes' its daily document in its native format. This is what
    the synthetic world's feeds look like on the wire."""

    def fetch(info: BlocklistInfo, day: int) -> str:
        return materialize_snapshot(info, source, day)

    return fetch
