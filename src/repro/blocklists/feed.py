"""Synthetic feed generation: abuse events → listing intervals.

Models how a real blocklist behaves as an observer of the abuse stream:

* it only reacts to categories it monitors;
* it samples — a feed sees a fraction (``sensitivity``) of in-category
  events on any given day;
* it lists with a small reporting lag;
* it delists ``removal_ttl_days`` after the *last* event it observed
  (which is why dynamic addresses fall off lists quickly: the abuser
  moves to a new address and the old one goes quiet).

The output is a :class:`~repro.blocklists.timeline.ListingStore`;
daily snapshot documents can be materialised on demand.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, Tuple

from ..internet.abuse import AbuseEvent
from ..net.ipv4 import Prefix
from .catalog import BlocklistInfo
from .formats import serialize_feed
from .timeline import Listing, ListingStore

__all__ = ["generate_listings", "materialize_snapshot"]


def _list_rng(root: int, list_id: str) -> random.Random:
    """The sampling stream of one list, derived from the shared feed
    stream's root draw plus the list's identity. Because the root is
    drawn exactly once, every list's draws are a pure function of
    ``(seed, list_id)`` — reordering or slicing the catalog cannot
    perturb any other list's output."""
    digest = hashlib.sha256(
        f"{root}:{list_id}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def generate_listings(
    events: Sequence[AbuseEvent],
    catalog: Sequence[BlocklistInfo],
    rng: random.Random,
    *,
    horizon_days: float,
) -> ListingStore:
    """Run every list in ``catalog`` over the abuse event stream."""
    store = ListingStore()
    root = rng.getrandbits(64)
    events_by_category: Dict[str, List[AbuseEvent]] = {}
    for event in events:
        events_by_category.setdefault(event.category, []).append(event)
    for info in catalog:
        list_rng = _list_rng(root, info.list_id)
        observed_days: Dict[int, List[int]] = {}
        for category in info.categories:
            for event in events_by_category.get(category, ()):
                if list_rng.random() < info.sensitivity:
                    observed_days.setdefault(event.ip, []).append(
                        event.day + info.report_lag_days
                    )
        for ip, days in observed_days.items():
            for listing in _merge_observations(
                info, ip, days, horizon_days
            ):
                store.add(listing)
    return store


def _merge_observations(
    info: BlocklistInfo, ip: int, days: List[int], horizon_days: float
) -> Iterable[Listing]:
    """Collapse observed event days into listing intervals.

    A listing opens at the first observation and closes
    ``removal_ttl_days`` after the most recent one; a quiet gap longer
    than the TTL splits the presence into separate listings
    (delist-then-relist).

    An observation lagged past the horizon is dropped: the collection
    ended before the report landed, so no listing can open for it (and
    clamping such a start to the horizon would invert the interval).
    """
    horizon = int(horizon_days)
    days = sorted({day for day in days if day <= horizon})
    if not days:
        return
    ttl = int(info.removal_ttl_days)
    start = days[0]
    last = days[0]
    for day in days[1:]:
        if day - last > ttl:
            yield Listing(info.list_id, ip, start, min(last + ttl, horizon))
            start = day
        last = day
    yield Listing(info.list_id, ip, start, min(last + ttl, horizon))


def materialize_snapshot(
    info: BlocklistInfo, store: ListingStore, day: int
) -> str:
    """Render one list's daily snapshot as its published feed document
    (the artefact a BLAG-style collector downloads)."""
    entries = [Prefix(ip, 32) for ip in store.snapshot(info.list_id, day)]
    return serialize_feed(info.fmt, entries, list_name=info.name, day=day)
