"""Blocklist feed file formats.

Real public feeds come in several shapes; the BLAG collector had to
parse all of them. We implement the three that cover the corpus:

* ``plain`` — one address per line, ``#`` comments, blank lines;
* ``cidr``  — addresses and/or CIDR blocks per line;
* ``csv``   — ``ip,category,last_seen`` rows with a header.

Parsers are tolerant of the junk real feeds contain (comments,
whitespace, stray blank lines) but raise on lines that are neither
junk nor parseable — silently skipping malformed entries is how
collectors end up with holes nobody notices.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..net.ipv4 import Prefix, int_to_ip, parse_ip_or_prefix

__all__ = [
    "FORMATS",
    "serialize_feed",
    "parse_feed",
    "FeedFormatError",
]

FORMATS = ("plain", "cidr", "csv")


class FeedFormatError(ValueError):
    """Raised when a feed document cannot be parsed."""


def serialize_feed(
    fmt: str,
    entries: Sequence[Prefix],
    *,
    list_name: str = "",
    day: int = 0,
) -> str:
    """Render ``entries`` as a feed document in ``fmt``."""
    if fmt not in FORMATS:
        raise ValueError(f"unknown feed format {fmt!r}")
    ordered = sorted(entries, key=lambda p: (p.network, p.length))
    lines: List[str] = []
    if fmt == "plain":
        lines.append(f"# {list_name} snapshot day={day}")
        lines.append(f"# {len(ordered)} entries")
        for prefix in ordered:
            if prefix.length != 32:
                raise ValueError(
                    f"plain format cannot express {prefix} (not a /32)"
                )
            lines.append(int_to_ip(prefix.network))
    elif fmt == "cidr":
        lines.append(f"; {list_name} snapshot day={day}")
        for prefix in ordered:
            if prefix.length == 32:
                lines.append(int_to_ip(prefix.network))
            else:
                lines.append(str(prefix))
    else:  # csv
        lines.append("ip,category,last_seen")
        for prefix in ordered:
            if prefix.length != 32:
                raise ValueError(
                    f"csv format cannot express {prefix} (not a /32)"
                )
            lines.append(f"{int_to_ip(prefix.network)},listed,{day}")
    return "\n".join(lines) + "\n"


def parse_feed(fmt: str, document: str) -> List[Prefix]:
    """Parse a feed document back into prefixes.

    Raises :class:`FeedFormatError` with the offending line number on
    malformed input.
    """
    if fmt not in FORMATS:
        raise ValueError(f"unknown feed format {fmt!r}")
    if fmt == "csv":
        return _parse_csv(document)
    return _parse_linewise(document)


def _parse_linewise(document: str) -> List[Prefix]:
    entries: List[Prefix] = []
    for line_number, raw in enumerate(document.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        # Some feeds append inline comments after the address.
        token = line.split()[0].split("#")[0].split(";")[0]
        try:
            entries.append(parse_ip_or_prefix(token))
        except ValueError as exc:
            raise FeedFormatError(
                f"line {line_number}: {exc}"
            ) from exc
    return entries


def _parse_csv(document: str) -> List[Prefix]:
    lines = document.splitlines()
    if not lines:
        return []
    start = 1 if lines and lines[0].lower().startswith("ip,") else 0
    entries: List[Prefix] = []
    for line_number, raw in enumerate(lines[start:], start=start + 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 1 or not fields[0]:
            raise FeedFormatError(f"line {line_number}: empty ip field")
        try:
            entries.append(parse_ip_or_prefix(fields[0]))
        except ValueError as exc:
            raise FeedFormatError(f"line {line_number}: {exc}") from exc
    return entries
