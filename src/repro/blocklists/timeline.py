"""Listing intervals and the queries the analysis needs.

The authoritative representation of "what was listed when" is the
:class:`Listing` interval — daily snapshots are a *view* materialised
from it (as in a real collection pipeline the direction is reversed,
and :func:`listings_from_snapshots` performs that reconstruction; a
round-trip property test pins the two down as inverses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "Listing",
    "ListingStore",
    "Window",
    "listings_from_snapshots",
]

#: An observation window as (first_day, last_day), both inclusive.
Window = Tuple[int, int]


@dataclass(frozen=True)
class Listing:
    """One continuous presence of ``ip`` on ``list_id``.

    ``first_day`` and ``last_day`` are inclusive day indices.
    """

    list_id: str
    ip: int
    first_day: int
    last_day: int

    def __post_init__(self) -> None:
        if self.last_day < self.first_day:
            raise ValueError(
                f"listing ends before it starts: {self.first_day}..{self.last_day}"
            )

    def duration_days(self) -> int:
        """Days the listing was present (inclusive count)."""
        return self.last_day - self.first_day + 1

    def active_on(self, day: int) -> bool:
        """True when the listing covers ``day``."""
        return self.first_day <= day <= self.last_day

    def observed_days(self, windows: Sequence[Window]) -> int:
        """Days of this listing that fall inside the collection
        windows — what a BLAG-style collector would have seen."""
        total = 0
        for start, end in windows:
            lo = max(self.first_day, start)
            hi = min(self.last_day, end)
            if hi >= lo:
                total += hi - lo + 1
        return total

    def max_observed_run(self, windows: Sequence[Window]) -> int:
        """Longest continuous observed presence within one window (the
        paper's "days in blocklist" caps at a window length: 44)."""
        best = 0
        for start, end in windows:
            lo = max(self.first_day, start)
            hi = min(self.last_day, end)
            if hi >= lo:
                best = max(best, hi - lo + 1)
        return best


class ListingStore:
    """All listings of a measurement campaign, indexed for analysis."""

    def __init__(self, listings: Iterable[Listing] = ()) -> None:
        self._listings: List[Listing] = []
        self._by_list: Dict[str, List[Listing]] = {}
        self._by_ip: Dict[int, List[Listing]] = {}
        for listing in listings:
            self.add(listing)

    def __len__(self) -> int:
        return len(self._listings)

    def __iter__(self) -> Iterator[Listing]:
        return iter(self._listings)

    def add(self, listing: Listing) -> None:
        """Insert one listing interval."""
        self._listings.append(listing)
        self._by_list.setdefault(listing.list_id, []).append(listing)
        self._by_ip.setdefault(listing.ip, []).append(listing)

    # -- basic queries -------------------------------------------------

    def list_ids(self) -> List[str]:
        """Every list that recorded at least one listing."""
        return sorted(self._by_list)

    def listings_of_list(self, list_id: str) -> List[Listing]:
        """Listings on one blocklist."""
        return list(self._by_list.get(list_id, ()))

    def listings_of_ip(self, ip: int) -> List[Listing]:
        """Listings of one address across all blocklists."""
        return list(self._by_ip.get(ip, ()))

    def all_ips(self) -> Set[int]:
        """Every address that was ever listed."""
        return set(self._by_ip)

    # -- window-scoped queries ------------------------------------------

    def observed(self, windows: Sequence[Window]) -> "ListingStore":
        """Restrict to listings visible during the collection windows
        (what the measurement study actually sees)."""
        return ListingStore(
            l for l in self._listings if l.observed_days(windows) > 0
        )

    def ips_listed_in(
        self, list_id: str, windows: Sequence[Window]
    ) -> Set[int]:
        """Addresses visible on ``list_id`` during the windows."""
        return {
            l.ip
            for l in self._by_list.get(list_id, ())
            if l.observed_days(windows) > 0
        }

    def snapshot(self, list_id: str, day: int) -> Set[int]:
        """Addresses on ``list_id`` on ``day`` (a daily snapshot)."""
        return {
            l.ip for l in self._by_list.get(list_id, ()) if l.active_on(day)
        }

    def listings_active_on(self, ip: int, day: int) -> List[Listing]:
        """Listings of ``ip`` covering ``day``, across all lists.

        The interval-query dual of :meth:`snapshot` (which slices by
        list, this slices by address) — what an online consumer asks
        per connection. Ordered by list id, then start day.
        """
        return sorted(
            (l for l in self._by_ip.get(ip, ()) if l.active_on(day)),
            key=lambda l: (l.list_id, l.first_day),
        )

    def diff_against(self, other: "ListingStore") -> List:
        """Per-IP interval changes that turn this store into ``other``.

        Returns :class:`~repro.stream.delta.ListingDelta` records (the
        streaming layer's unit of churn), ordered by address then list.
        ``apply_deltas(self, self.diff_against(other))`` reproduces
        ``other`` exactly — pinned by a property test against
        :meth:`listings_active_on` on random day pairs.
        """
        from ..stream.delta import diff_stores  # circular at module load

        return diff_stores(self, other)

    def listing_count_per_list(
        self, windows: Sequence[Window], ips: Optional[Set[int]] = None
    ) -> Dict[str, int]:
        """Per-list count of observed listings, optionally restricted
        to a set of addresses (e.g. reused ones) — Figures 5/6."""
        counts: Dict[str, int] = {}
        for list_id, listings in self._by_list.items():
            seen: Set[int] = set()
            for listing in listings:
                if listing.observed_days(windows) == 0:
                    continue
                if ips is not None and listing.ip not in ips:
                    continue
                seen.add(listing.ip)
            counts[list_id] = len(seen)
        return counts

    def max_run_per_ip(self, windows: Sequence[Window]) -> Dict[int, int]:
        """Per-address longest continuous observed presence on any one
        list (Figure 7's duration measure)."""
        runs: Dict[int, int] = {}
        for listing in self._listings:
            run = listing.max_observed_run(windows)
            if run > 0:
                runs[listing.ip] = max(runs.get(listing.ip, 0), run)
        return runs


def listings_from_snapshots(
    snapshots: Mapping[int, Set[int]], list_id: str
) -> List[Listing]:
    """Reconstruct listing intervals from daily snapshots of one list.

    ``snapshots`` maps day → set of listed addresses. Days missing from
    the mapping are treated as gaps (collection outages split runs, the
    conservative choice a real pipeline makes).
    """
    if not snapshots:
        return []
    listings: List[Listing] = []
    open_runs: Dict[int, int] = {}  # ip -> run start day
    previous_day: Optional[int] = None
    for day in sorted(snapshots):
        listed = snapshots[day]
        contiguous = previous_day is not None and day == previous_day + 1
        if not contiguous and previous_day is not None:
            for ip, start in open_runs.items():
                listings.append(Listing(list_id, ip, start, previous_day))
            open_runs = {}
        ended = [ip for ip in open_runs if ip not in listed]
        for ip in ended:
            assert previous_day is not None
            listings.append(Listing(list_id, ip, open_runs.pop(ip), previous_day))
        for ip in listed:
            open_runs.setdefault(ip, day)
        previous_day = day
    assert previous_day is not None
    for ip, start in open_runs.items():
        listings.append(Listing(list_id, ip, start, previous_day))
    listings.sort(key=lambda l: (l.ip, l.first_day))
    return listings
