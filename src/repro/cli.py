"""Command-line entry point: ``repro-blocklist-reuse`` / ``python -m repro``.

Subcommands:

* ``run``      — full reproduction; prints the headline table and
  optionally writes the greylist and crawl/Atlas logs.
* ``figures``  — regenerate every figure/table artefact into a
  directory (what the benchmark suite does, without pytest).
* ``survey``   — print Table 1 and Figure 9.
* ``catalog``  — print Table 2 (the 151-blocklist catalog).
* ``cache``    — inspect or empty the persistent run cache.
* ``serve``    — compile a run into a reputation index and answer
  online queries over TCP; with ``--follow`` the server tails an
  update log and hot-swaps index epochs with zero downtime.
* ``cluster``  — the same service sharded: N worker processes each
  holding one slice of the index behind a scatter-gather router that
  speaks the identical wire protocol (``--replicas`` adds failover
  backends per shard; ``--follow`` has every shard tail the shared
  update log independently).
* ``query``    — ask a running server (or cluster router — the
  protocol is the same) for per-address verdicts.
* ``load``     — replay a named, seeded traffic mix against a running
  server or cluster (open-loop pacing, pipelined batches) and report
  the measured SLO (p50/p99 latency, error ledger) as text or JSON.
* ``stream``   — emit a run's listing churn as an append-only update
  log (whole-window, or paced with ``--replay-days``).
* ``scenarios`` — the adversary lab: list the registered evasive-abuse
  models, or run them end to end (events → feeds → index → verdicts →
  effectiveness scores), writing versioned JSON artefacts plus each
  scenario's churn log and verifying that a live log follower scores
  field-for-field identically to the static index.
* ``lint``     — run ``reprolint``, the AST-based invariant linter
  (determinism in simulation paths, bounded wire reads, lock
  discipline in threaded serving code), optionally gated against the
  committed ``LINT_baseline.json``.

Failures exit non-zero with one ``error:`` line on stderr — a bad
preset, port, snapshot or an unreachable server never escapes as a
traceback.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.tables import render_table
from .blocklists.catalog import catalog_by_maintainer
from .core.asreport import render_as_report
from .core.greylist import build_greylist, render_greylist
from .experiments.runner import preset_config, run_full
from .service import (
    QueryEngine,
    ReputationClient,
    ReputationIndex,
    ReputationServer,
    ServiceError,
    SnapshotError,
)
from .loadgen.mixes import mix_names
from .service.server import DEFAULT_CONNECTION_TIMEOUT
from .stream import UpdateLogError
from .survey.analyze import figure9_usage, render_table1, summarize
from .survey.generate import generate_responses

__all__ = ["main"]

#: Default TCP port of the reputation service (unassigned range).
DEFAULT_SERVICE_PORT = 7339


class CliError(Exception):
    """A user-facing failure: printed as one line, exits non-zero."""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-blocklist-reuse",
        description=(
            "Reproduction of 'Quantifying the Impact of Blocklisting in "
            "the Age of Address Reuse' (IMC 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the full measurement study")
    run_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
        help=(
            "scenario scale (small: ~1 s; default: ~15 s; "
            "large: ~1 min)"
        ),
    )
    run_p.add_argument("--seed", type=int, default=2020)
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard independent work units (vantage points, census "
            "blocks, probe groups) across this many processes; 0 uses "
            "every core. Results are identical for any value."
        ),
    )
    run_p.add_argument(
        "--greylist",
        metavar="PATH",
        help="write the reused-address greylist here",
    )
    run_p.add_argument(
        "--export-dir",
        metavar="DIR",
        help=(
            "write the full artefact bundle (greylist, AS/window "
            "reports, crawl + Atlas logs, serialized world) here"
        ),
    )

    fig_p = sub.add_parser(
        "figures", help="regenerate every table/figure artefact"
    )
    fig_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
    )
    fig_p.add_argument("--seed", type=int, default=2020)

    survey_p = sub.add_parser("survey", help="print Table 1 and Figure 9")
    survey_p.add_argument("--seed", type=int, default=2020)

    sub.add_parser("catalog", help="print Table 2")

    cache_p = sub.add_parser(
        "cache", help="inspect or empty the persistent run cache"
    )
    cache_p.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats: show entries/size/hit counters; clear: delete all",
    )

    serve_p = sub.add_parser(
        "serve",
        help="serve reuse-aware blocklist verdicts over TCP",
    )
    serve_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
        help="run to compile the index from (loaded via the run cache)",
    )
    serve_p.add_argument("--seed", type=int, default=2020)
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=f"TCP port (default {DEFAULT_SERVICE_PORT}; 0 = ephemeral)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the pipeline run on an index-cache miss",
    )
    serve_p.add_argument(
        "--snapshot",
        metavar="PATH",
        help=(
            "index snapshot: loaded when the file exists, otherwise "
            "written after the index is built"
        ),
    )
    serve_p.add_argument(
        "--follow",
        metavar="LOG",
        help=(
            "tail this update log (see 'repro stream'): start from the "
            "log's start-day index state and hot-swap epochs as "
            "batches arrive"
        ),
    )
    serve_p.add_argument(
        "--conn-timeout",
        type=float,
        default=DEFAULT_CONNECTION_TIMEOUT,
        metavar="SECONDS",
        help=(
            "per-connection idle timeout before the server hangs up "
            f"(default {DEFAULT_CONNECTION_TIMEOUT:g}s)"
        ),
    )

    cluster_p = sub.add_parser(
        "cluster",
        help="serve verdicts from a sharded cluster behind a router",
    )
    cluster_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
        help="run to compile the index from (loaded via the run cache)",
    )
    cluster_p.add_argument("--seed", type=int, default=2020)
    cluster_p.add_argument("--host", default="127.0.0.1")
    cluster_p.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=(
            f"router TCP port (default {DEFAULT_SERVICE_PORT}; "
            "0 = ephemeral); shards always bind ephemeral ports"
        ),
    )
    cluster_p.add_argument(
        "--shards",
        type=int,
        default=3,
        metavar="N",
        help="number of address-space partitions (default 3)",
    )
    cluster_p.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="R",
        help="extra failover backends per shard (default 0)",
    )
    cluster_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the pipeline run on an index-cache miss",
    )
    cluster_p.add_argument(
        "--snapshot",
        metavar="PATH",
        help=(
            "index snapshot: loaded when the file exists, otherwise "
            "written after the index is built"
        ),
    )
    cluster_p.add_argument(
        "--follow",
        metavar="LOG",
        help=(
            "every shard tails this update log independently "
            "(filtered to its range; epochs roll shard-by-shard)"
        ),
    )
    cluster_p.add_argument(
        "--conn-timeout",
        type=float,
        default=DEFAULT_CONNECTION_TIMEOUT,
        metavar="SECONDS",
        help=(
            "per-connection idle timeout on the router and every "
            f"shard (default {DEFAULT_CONNECTION_TIMEOUT:g}s)"
        ),
    )
    cluster_p.add_argument(
        "--auto-split",
        action="store_true",
        help=(
            "watch per-shard load and split a sustained hot range "
            "online (new half-range shards boot, traffic cuts over, "
            "no in-flight query fails)"
        ),
    )
    cluster_p.add_argument(
        "--split-factor",
        type=float,
        default=2.0,
        metavar="X",
        help=(
            "a shard is hot when it takes X times its fair share of "
            "a poll window's traffic (default 2.0)"
        ),
    )
    cluster_p.add_argument(
        "--split-sustain",
        type=int,
        default=3,
        metavar="N",
        help="consecutive hot windows before splitting (default 3)",
    )
    cluster_p.add_argument(
        "--split-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between load polls (default 1.0)",
    )
    cluster_p.add_argument(
        "--split-min-hits",
        type=int,
        default=100,
        metavar="N",
        help=(
            "ignore poll windows with fewer than N routed queries "
            "(default 100)"
        ),
    )
    cluster_p.add_argument(
        "--max-shards",
        type=int,
        default=64,
        metavar="N",
        help="stop auto-splitting at N shards (default 64)",
    )

    load_p = sub.add_parser(
        "load",
        help=(
            "replay a deterministic traffic mix against a running "
            "server/cluster and report the SLO"
        ),
    )
    load_p.add_argument(
        "--mix",
        choices=mix_names(),
        default="steady",
        help="named query mix (default steady)",
    )
    load_p.add_argument("--host", default="127.0.0.1")
    load_p.add_argument(
        "--port", type=int, default=DEFAULT_SERVICE_PORT
    )
    load_p.add_argument(
        "--queries",
        type=int,
        default=20_000,
        metavar="N",
        help="total queries to offer (default 20000)",
    )
    load_p.add_argument(
        "--target-qps",
        type=float,
        default=5_000.0,
        metavar="QPS",
        help="open-loop offered rate (default 5000)",
    )
    load_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
        help=(
            "run the address population is drawn from (must match "
            "what the server was built with)"
        ),
    )
    load_p.add_argument("--seed", type=int, default=2020)
    load_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the pipeline run on a cache miss",
    )
    load_p.add_argument(
        "--load-seed",
        type=int,
        default=0,
        metavar="N",
        help=(
            "traffic-schedule seed (same mix + population + seed "
            "replays the identical query stream; default 0)"
        ),
    )
    load_p.add_argument(
        "--conns",
        type=int,
        default=4,
        metavar="N",
        help="client connections driving the schedule (default 4)",
    )
    load_p.add_argument(
        "--window",
        type=int,
        default=16,
        metavar="N",
        help="pipelined batches in flight per connection (default 16)",
    )
    load_p.add_argument(
        "--codec",
        choices=("auto", "json", "binary"),
        default="auto",
        help="wire framing towards the server (default auto)",
    )
    load_p.add_argument(
        "--churn-log",
        metavar="PATH",
        help=(
            "update log to append churn-storm day batches to (mixes "
            "with storms need the target cluster following this log)"
        ),
    )
    load_p.add_argument(
        "--churn-source",
        metavar="LOG",
        help=(
            "take the storm day batches from this pre-generated "
            "update log (e.g. an adversary scenario's churn log from "
            "'repro scenarios run') instead of deriving them from the "
            "preset run; requires --churn-log"
        ),
    )
    load_p.add_argument(
        "--out",
        metavar="PATH",
        help="also write the report as JSON here",
    )

    stream_p = sub.add_parser(
        "stream",
        help="emit a run's listing churn as an update log",
    )
    stream_p.add_argument(
        "--preset",
        choices=("small", "default", "large"),
        default="small",
        help="run whose churn to replay (loaded via the run cache)",
    )
    stream_p.add_argument("--seed", type=int, default=2020)
    stream_p.add_argument(
        "--out",
        metavar="PATH",
        required=True,
        help="update log to write (existing file is replaced)",
    )
    stream_p.add_argument(
        "--start-day",
        type=int,
        default=None,
        help=(
            "day the consumer's base index corresponds to (default: "
            "first collection-window day)"
        ),
    )
    stream_p.add_argument(
        "--replay-days",
        type=float,
        default=None,
        metavar="N",
        help=(
            "pace emission at N simulated days per second so a "
            "--follow server ingests live (default: whole stream at "
            "once)"
        ),
    )
    stream_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="workers for the pipeline run on a cache miss",
    )

    scen_p = sub.add_parser(
        "scenarios",
        help=(
            "adversary lab: run evasive-abuse scenarios and score "
            "blocklist effectiveness"
        ),
    )
    scen_sub = scen_p.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser(
        "list", help="print the registered adversary scenarios"
    )
    scen_run_p = scen_sub.add_parser(
        "run",
        help=(
            "build, score and verify scenarios; write JSON artefacts "
            "and churn logs"
        ),
    )
    scen_run_p.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help=(
            "scenario to run (repeatable; default: every registered "
            "scenario — see 'repro scenarios list')"
        ),
    )
    scen_run_p.add_argument("--seed", type=int, default=2020)
    scen_run_p.add_argument(
        "--out",
        metavar="DIR",
        default="results/scenarios",
        help=(
            "directory for the per-scenario result JSON and churn "
            "logs (default results/scenarios)"
        ),
    )
    scen_run_p.add_argument(
        "--skip-fidelity",
        action="store_true",
        help=(
            "skip the live-follower fidelity check (it replays every "
            "churn log through a real LogFollower; scoring output is "
            "unchanged)"
        ),
    )

    lint_p = sub.add_parser(
        "lint",
        help="run the AST-based invariant linter (reprolint)",
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or trees to lint (default: the repo's src/repro)",
    )
    lint_p.add_argument(
        "--json",
        action="store_true",
        help="print findings as JSON instead of one line per finding",
    )
    lint_p.add_argument(
        "--baseline",
        action="store_true",
        help=(
            "gate mode: fail only on violations not covered by the "
            "committed baseline file"
        ),
    )
    lint_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="freeze the current findings as the new baseline and exit",
    )
    lint_p.add_argument(
        "--baseline-file",
        metavar="PATH",
        help="baseline location (default: <repo>/LINT_baseline.json)",
    )
    lint_p.add_argument(
        "--root",
        metavar="DIR",
        help=(
            "directory violation paths are reported relative to "
            "(default: the repo checkout root)"
        ),
    )
    lint_p.add_argument(
        "--rules",
        action="store_true",
        help="print the rule table and exit",
    )
    lint_p.add_argument(
        "--explain",
        metavar="CODE",
        help=(
            "print one rule's full description, an example finding, "
            "and the waiver syntax, then exit"
        ),
    )
    lint_p.add_argument(
        "--no-flow",
        action="store_true",
        help=(
            "run per-module rules only, skipping the whole-program "
            "flow pass (FLOW-*) — faster, for partial file sets"
        ),
    )
    lint_p.add_argument(
        "--strict-waivers",
        action="store_true",
        help=(
            "fail (exit 1) when a waiver names an unknown rule code "
            "or matches no violation, instead of just warning"
        ),
    )

    query_p = sub.add_parser(
        "query", help="query a running reputation server"
    )
    query_p.add_argument(
        "ip", nargs="*", help="address(es) to look up (dotted quad)"
    )
    query_p.add_argument(
        "--day",
        type=int,
        default=None,
        help="day index to evaluate (default: last collection day)",
    )
    query_p.add_argument("--host", default="127.0.0.1")
    query_p.add_argument(
        "--port", type=int, default=DEFAULT_SERVICE_PORT
    )
    query_p.add_argument(
        "--json",
        action="store_true",
        help="print raw JSON verdicts instead of one-line summaries",
    )
    query_p.add_argument(
        "--codec",
        choices=("auto", "json", "binary"),
        default="auto",
        help=(
            "wire framing: auto negotiates binary and falls back to "
            "JSON, json forces the legacy framing, binary fails the "
            "handshake loudly if the server cannot speak it"
        ),
    )
    query_p.add_argument(
        "--stats",
        action="store_true",
        help="print server-side engine/index stats and exit",
    )
    query_p.add_argument(
        "--hello",
        action="store_true",
        help=(
            "print the server handshake (protocol/epoch; for a "
            "cluster router also the fleet min/max epoch) and exit"
        ),
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        run = run_full(
            preset_config(args.preset, args.seed),
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(run.report.render())
    print()
    print(render_as_report(run.analysis, top=5))
    stats = run.crawl.crawler.stats
    print()
    print(
        f"crawler: {stats.get_nodes_sent} get_nodes / {stats.pings_sent} "
        f"bt_pings, ping response rate "
        f"{stats.ping_response_rate():.1%}"
    )
    if args.greylist:
        entries = build_greylist(run.analysis)
        Path(args.greylist).write_text(
            render_greylist(entries), encoding="utf-8"
        )
        print(f"greylist: {len(entries)} addresses -> {args.greylist}")
    if args.export_dir:
        _export_bundle(run, Path(args.export_dir))
    return 0


def _export_bundle(run, out: Path) -> None:
    """Write the study's complete artefact bundle — the reproduction's
    counterpart of the address lists the paper publishes."""
    from .bittorrent.crawllog import write_jsonl as write_crawl
    from .core.windows import render_window_report
    from .internet.serialize import save_listings, save_truth
    from .ripe.connlog import write_jsonl as write_atlas

    out.mkdir(parents=True, exist_ok=True)
    entries = build_greylist(run.analysis)
    (out / "greylist.txt").write_text(
        render_greylist(entries), encoding="utf-8"
    )
    (out / "as_report.txt").write_text(
        render_as_report(run.analysis, top=10) + "\n", encoding="utf-8"
    )
    (out / "window_report.txt").write_text(
        render_window_report(run.analysis) + "\n", encoding="utf-8"
    )
    (out / "headline.txt").write_text(
        run.report.render() + "\n", encoding="utf-8"
    )
    write_crawl(run.crawl.merged_log(), out / "crawl_log.jsonl")
    write_atlas(run.scenario.atlas_log, out / "atlas_log.jsonl")
    save_truth(run.scenario.truth, out / "world.json")
    save_listings(run.scenario.listings, out / "listings.jsonl")
    print(f"artefact bundle -> {out} ({len(list(out.iterdir()))} files)")


def _cmd_figures(args: argparse.Namespace) -> int:
    # The benchmark modules are the single source of truth for figure
    # rendering; reuse their compute/render logic via pytest.
    import pytest

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.exists():
        print(
            "benchmarks/ directory not found (installed without sources); "
            "run from a source checkout",
            file=sys.stderr,
        )
        return 2
    import os

    os.environ["REPRO_BENCH_PRESET"] = args.preset
    code = pytest.main(
        ["-q", "--benchmark-disable", str(bench_dir)]
    )
    # The bench conftest writes next to the benchmarks directory.
    print(f"artefacts in {bench_dir.parent / 'results'}")
    return int(code)


def _cmd_survey(args: argparse.Namespace) -> int:
    import random

    responses = generate_responses(random.Random(args.seed))
    print(render_table1(summarize(responses)))
    print()
    rows = [
        (name, f"{pct:.0f}%") for name, pct in figure9_usage(responses)
    ]
    print(
        render_table(
            ["blocklist type", "% of reuse-affected operators"],
            rows,
            title="Figure 9",
        )
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments import cache

    if args.action == "clear":
        directory = cache.cache_dir()
        if not directory.is_dir():
            print(f"cache dir {directory} does not exist — nothing to clear")
            return 0
        removed = cache.clear()
        if removed:
            print(f"removed {removed} cached run(s) from {directory}")
        else:
            print(f"cache at {directory} was already empty")
        return 0
    stats = cache.cache_stats()
    if not stats["exists"]:
        print(
            f"cache dir : {stats['dir']} (not created yet — no runs cached)"
        )
        return 0
    print(f"cache dir : {stats['dir']}")
    print(f"entries   : {stats['entries']}")
    print(f"size      : {stats['bytes'] / 1024:.1f} KiB")
    print(f"hits      : {stats['hits']}")
    print(f"misses    : {stats['misses']}")
    return 0


def _checked_port(port: int) -> int:
    if not 0 <= port <= 65535:
        raise CliError(f"port out of range 0-65535: {port}")
    return port


def _cached_preset_run(preset: str, seed: int, workers: int):
    """One full run for a preset, through the persistent run cache."""
    from .experiments import cache as results_cache

    config = preset_config(preset, seed)
    was_cached = results_cache.has(config)
    run = results_cache.fetch(
        config, lambda: run_full(config, workers=workers)
    )
    source = "run cache" if was_cached else "fresh run (now cached)"
    print(f"run <- {source} [preset={preset} seed={seed}]")
    return run


def _build_service_index(args: argparse.Namespace) -> ReputationIndex:
    """The index ``repro serve`` binds: snapshot if present, else the
    run cache (computing and caching the run on a first start)."""
    snapshot = Path(args.snapshot) if args.snapshot else None
    if snapshot is not None and snapshot.exists():
        index = ReputationIndex.load(snapshot)
        print(f"index <- snapshot {snapshot}")
        return index
    run = _cached_preset_run(args.preset, args.seed, args.workers)
    index = ReputationIndex.from_run(run)
    if snapshot is not None:
        index.save(snapshot)
        print(f"snapshot -> {snapshot}")
    return index


def _follow_base(args: argparse.Namespace):
    """The starting state behind ``--follow``: the full index rolled
    back to the log's start day, validated against the log header.
    Returns ``(log_path, start_day, base)``."""
    from .stream import UpdateLogReader, index_as_of

    log_path = Path(args.follow)
    header = UpdateLogReader(log_path).header
    start_day = header.get("start_day")
    if not isinstance(start_day, int):
        raise CliError(f"update log {log_path} has no start day")
    run = _cached_preset_run(args.preset, args.seed, args.workers)
    base = index_as_of(ReputationIndex.from_run(run), start_day)
    meta = header.get("meta", {})
    sizes = base.stats()
    for key in ("ips", "intervals"):
        expected = meta.get(key)
        if expected is not None and expected != sizes[key]:
            raise CliError(
                f"update log base state mismatch: log expects "
                f"{expected} {key} on day {start_day}, this run has "
                f"{sizes[key]} — wrong preset/seed?"
            )
    return log_path, start_day, base


def _build_follow_state(args: argparse.Namespace):
    """The streaming pieces behind ``serve --follow``: the epoch index
    rolled back to the log's start day, plus its follower."""
    from .stream import EpochIndex, LogFollower

    log_path, start_day, base = _follow_base(args)
    epochs = EpochIndex(base, day=start_day)

    def announce(epoch, n_deltas):
        print(
            f"epoch {epoch.number} <- seq {epoch.seq} day {epoch.day} "
            f"(+{n_deltas} deltas)"
        )

    follower = LogFollower(log_path, epochs, on_batch=announce)
    return epochs, follower


def _checked_conn_timeout(value: float) -> float:
    if not value > 0:
        raise CliError(f"--conn-timeout must be positive: {value}")
    return float(value)


def _cmd_serve(args: argparse.Namespace) -> int:
    port = _checked_port(args.port)
    conn_timeout = _checked_conn_timeout(args.conn_timeout)
    follower = None
    if args.follow:
        if args.snapshot:
            raise CliError("--follow and --snapshot are mutually exclusive")
        epochs, follower = _build_follow_state(args)
        engine_source = epochs
        index = epochs.index
    else:
        index = _build_service_index(args)
        engine_source = index
    server = ReputationServer(
        QueryEngine(engine_source),
        args.host,
        port,
        connection_timeout=conn_timeout,
        streaming=follower is not None,
    )
    host, bound_port = server.address
    sizes = index.stats()
    print(
        f"serving on {host}:{bound_port} — {sizes['ips']} addresses, "
        f"{sizes['intervals']} listing intervals, {sizes['lists']} "
        f"lists, {sizes['dynamic_prefixes']} dynamic "
        f"/{index.family.atom_bits}s"
        + (f", following {args.follow}" if follower else "")
    )
    if follower is not None:
        follower.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.shutdown()
    finally:
        if follower is not None:
            follower.stop()
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import MAX_SHARDS, AutoSplitter, LocalCluster

    port = _checked_port(args.port)
    conn_timeout = _checked_conn_timeout(args.conn_timeout)
    if not 1 <= args.shards <= MAX_SHARDS:
        raise CliError(
            f"--shards must be in 1..{MAX_SHARDS}: {args.shards}"
        )
    if args.replicas < 0:
        raise CliError(f"--replicas must be >= 0: {args.replicas}")
    if args.auto_split:
        if not args.shards < args.max_shards <= MAX_SHARDS:
            raise CliError(
                f"--max-shards must be in {args.shards + 1}.."
                f"{MAX_SHARDS}: {args.max_shards}"
            )
        if args.split_factor <= 1.0:
            raise CliError(
                f"--split-factor must exceed 1.0: {args.split_factor}"
            )
        if args.split_sustain < 1:
            raise CliError(
                f"--split-sustain must be >= 1: {args.split_sustain}"
            )
        if args.split_interval <= 0:
            raise CliError(
                f"--split-interval must be positive: "
                f"{args.split_interval}"
            )
        if args.split_min_hits < 1:
            raise CliError(
                f"--split-min-hits must be >= 1: {args.split_min_hits}"
            )
    follow = None
    start_day = None
    if args.follow:
        if args.snapshot:
            raise CliError("--follow and --snapshot are mutually exclusive")
        follow, start_day, index = _follow_base(args)
    else:
        index = _build_service_index(args)
    cluster = LocalCluster(
        index,
        shards=args.shards,
        replicas=args.replicas,
        follow=follow,
        start_day=start_day,
        mode="process",
        host=args.host,
        router_port=port,
        connection_timeout=conn_timeout,
    )
    try:
        addresses = cluster.start_backends()
        for shard_id, shard_range in enumerate(cluster.partition.ranges):
            for replica, (host, bound) in enumerate(addresses[shard_id]):
                backend = cluster.backend(shard_id, replica)
                role = "primary" if replica == 0 else f"replica {replica}"
                print(
                    f"shard {shard_id} {role} pid={backend.pid} "
                    f"addr={host}:{bound} range={shard_range}"
                )
        router = cluster.build_router(addresses)
        host, bound_port = router.address
        sizes = index.stats()
        print(
            f"cluster serving on {host}:{bound_port} — {args.shards} "
            f"shards x {1 + args.replicas} backends, {sizes['ips']} "
            f"addresses, {sizes['intervals']} listing intervals"
            + (f", following {follow}" if follow else "")
            + (", auto-split on" if args.auto_split else "")
        )
        splitter = None
        if args.auto_split:

            def announce_split(info: dict) -> None:
                print(
                    f"auto-split: shard {info['shard']} -> shards "
                    f"{info['new_shards'][0]}+{info['new_shards'][1]} "
                    f"({info['ranges'][0]} | {info['ranges'][1]}), "
                    f"now {info['shards']} shards",
                    flush=True,
                )

            splitter = AutoSplitter(
                cluster,
                interval=args.split_interval,
                factor=args.split_factor,
                sustain=args.split_sustain,
                min_hits=args.split_min_hits,
                max_shards=args.max_shards,
                on_split=announce_split,
            )
            splitter.start()
        try:
            router.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            if splitter is not None:
                splitter.stop()
    finally:
        cluster.close()
    return 0


def _build_storm_hook(args: argparse.Namespace, run):
    """Churn storms for ``repro load``: each storm appends the next
    not-yet-logged day batch to ``--churn-log``, so a ``--follow``
    cluster swaps epochs while the harness is mid-schedule. Returns
    ``(storm_fn, pending_count)``."""
    from .stream import (
        UpdateLogReader,
        UpdateLogWriter,
        day_advance_batches,
    )

    log_path = Path(args.churn_log)
    if not log_path.exists():
        raise CliError(f"--churn-log does not exist: {log_path}")
    reader = UpdateLogReader(log_path)
    logged = reader.poll()
    last_seq = logged[-1].seq if logged else 0
    start_day = reader.header.get("start_day", 0)
    pending = [
        batch
        for batch in day_advance_batches(
            run.analysis.observed, start_day=start_day
        )
        if batch.seq > last_seq
    ]
    writer = UpdateLogWriter(log_path)

    def storm(index: int) -> None:
        if index < len(pending):
            writer.append(pending[index])

    return storm, len(pending)


def _cmd_load(args: argparse.Namespace) -> int:
    from .loadgen import (
        LoadHarness,
        TrafficGenerator,
        get_mix,
        population_from_analysis,
        population_from_hitlist,
        render_report,
    )
    from .net.family import V4, V6

    port = _checked_port(args.port)
    mix = get_mix(args.mix)
    if args.queries < 1:
        raise CliError(f"--queries must be >= 1: {args.queries}")
    if args.target_qps <= 0:
        raise CliError(
            f"--target-qps must be positive: {args.target_qps}"
        )
    if args.conns < 1:
        raise CliError(f"--conns must be >= 1: {args.conns}")
    if args.window < 1:
        raise CliError(f"--window must be >= 1: {args.window}")
    if args.churn_source and not args.churn_log:
        raise CliError("--churn-source requires --churn-log")
    if mix.family == "ipv6":
        # A v6 mix draws from the seeded hitlist-v6 survey instead of
        # a preset run: same seed, same de-aliased hitlist the server
        # side serves.
        from .adversary.models import HORIZON_DAYS
        from .v6serve import HitlistV6Model

        survey = HitlistV6Model().survey(args.seed)
        ips, days = population_from_hitlist(
            mix, survey.facts.hitlist, horizon_days=HORIZON_DAYS
        )
    else:
        run = _cached_preset_run(args.preset, args.seed, args.workers)
        ips, days = population_from_analysis(mix, run.analysis)
    generator = TrafficGenerator(mix, ips, days, seed=args.load_seed)
    events = generator.schedule(args.queries, args.target_qps)
    storm_times: list = []
    on_storm = None
    if mix.churn_storms:
        if args.churn_log:
            if args.churn_source:
                from .loadgen import storm_hook_from_log

                source = Path(args.churn_source)
                if not source.exists():
                    raise CliError(
                        f"--churn-source does not exist: {source}"
                    )
                if not Path(args.churn_log).exists():
                    raise CliError(
                        f"--churn-log does not exist: {args.churn_log}"
                    )
                try:
                    on_storm, pending = storm_hook_from_log(
                        source, args.churn_log
                    )
                except (ValueError, UpdateLogError) as exc:
                    raise CliError(str(exc)) from None
            else:
                on_storm, pending = _build_storm_hook(args, run)
            storm_times = generator.storm_times(events[-1].at)
            if pending < len(storm_times):
                print(
                    f"note: log has only {pending} unwritten day "
                    f"batch(es) for {len(storm_times)} storms"
                )
        else:
            print(
                "note: mix schedules churn storms but --churn-log "
                "was not given; storms skipped"
            )
    print(
        f"load: mix={mix.name} — {args.queries} queries at "
        f"{args.target_qps:g} q/s over {args.conns} connection(s) "
        f"against {args.host}:{port}"
    )
    harness = LoadHarness(
        args.host,
        port,
        conns=args.conns,
        codec=args.codec,
        window=args.window,
        family=V6 if mix.family == "ipv6" else V4,
    )
    report = harness.run(
        events,
        mix=mix.name,
        seed=args.load_seed,
        target_qps=args.target_qps,
        storm_times=storm_times,
        on_storm=on_storm,
    )
    print(render_report(report))
    if args.out:
        Path(args.out).write_text(
            report.to_json() + "\n", encoding="utf-8"
        )
        print(f"report -> {args.out}")
    if report.ok == 0:
        raise CliError(
            f"no queries succeeded against {args.host}:{port} "
            f"({report.transport_errors} transport errors)"
        )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import time

    from .stream import UpdateLogWriter, day_advance_batches

    run = _cached_preset_run(args.preset, args.seed, args.workers)
    observed = run.analysis.observed
    windows = [list(w) for w in run.analysis.windows]
    start_day = (
        args.start_day
        if args.start_day is not None
        else int(windows[0][0])
    )
    base_listings = [l for l in observed if l.first_day <= start_day]
    out = Path(args.out)
    if out.exists():
        out.unlink()
    writer = UpdateLogWriter(
        out,
        start_day=start_day,
        meta={
            "preset": args.preset,
            "seed": args.seed,
            "windows": windows,
            "ips": len({l.ip for l in base_listings}),
            "intervals": len(base_listings),
        },
    )
    total_deltas = 0
    batches = 0
    pace = (
        1.0 / args.replay_days
        if args.replay_days and args.replay_days > 0
        else 0.0
    )
    for batch in day_advance_batches(observed, start_day=start_day):
        writer.append(batch)
        batches += 1
        total_deltas += len(batch.deltas)
        if pace:
            time.sleep(pace)
    print(
        f"update log -> {out}: {batches} day batches, "
        f"{total_deltas} deltas (start day {start_day})"
    )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .adversary import (
        StreamFidelityError,
        adversary_names,
        get_adversary,
        render_score_table,
        score_scenario,
        verify_stream_fidelity,
        write_scenario_log,
    )

    if args.scenarios_command == "list":
        rows = [
            (name, get_adversary(name).description)
            for name in adversary_names()
        ]
        print(
            render_table(
                ["scenario", "strategy"],
                rows,
                title="Adversary lab: registered scenarios",
            )
        )
        return 0

    names = list(args.scenario or adversary_names())
    for name in names:
        if name not in adversary_names():
            known = ", ".join(adversary_names())
            raise CliError(
                f"unknown scenario {name!r} (known: {known})"
            )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    results = []
    for name in names:
        scenario = get_adversary(name).build(args.seed)
        score = score_scenario(scenario)
        stem = f"{name}-seed{args.seed}"
        log_path = write_scenario_log(score, out / f"{stem}.log")
        if args.skip_fidelity:
            fidelity = "skipped"
        else:
            try:
                info = verify_stream_fidelity(score, log_path)
            except StreamFidelityError as exc:
                raise CliError(f"stream fidelity [{name}]: {exc}") from None
            fidelity = (
                f"ok ({info['batches']} batches, "
                f"{info['verdicts_compared']} verdicts)"
            )
        result_path = out / f"{stem}.json"
        result_path.write_text(
            json.dumps(score.result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        results.append(score.result)
        print(
            f"{name}: {len(scenario.events)} events, "
            f"{len(score.store)} listings -> {result_path} "
            f"(churn log {log_path}, stream fidelity {fidelity})"
        )
    print()
    print(render_score_table(results))
    return 0


def _lint_root(args: argparse.Namespace) -> Path:
    if args.root:
        root = Path(args.root)
        if not root.is_dir():
            raise CliError(f"--root is not a directory: {root}")
        return root
    # src/repro/cli.py -> the checkout root two levels above src/.
    return Path(__file__).resolve().parents[2]


def _cmd_lint(args: argparse.Namespace) -> int:
    from . import devtools

    if args.rules:
        for lint_rule in devtools.all_rules():
            print(
                f"{lint_rule.code:10} [{lint_rule.severity}/"
                f"{lint_rule.scope}] {lint_rule.summary}"
            )
        return 0
    if args.explain:
        wanted = args.explain.upper()
        for lint_rule in devtools.all_rules():
            if lint_rule.code == wanted:
                print(f"{lint_rule.code} [{lint_rule.severity}]")
                print(f"scope: {lint_rule.scope}")
                print(f"summary: {lint_rule.summary}")
                if lint_rule.check.__doc__:
                    print()
                    print(inspect.cleandoc(lint_rule.check.__doc__))
                if lint_rule.example:
                    print()
                    print("example finding:")
                    print(f"  {lint_rule.example}")
                print()
                print(
                    f"waive one line:  # reprolint: "
                    f"disable={lint_rule.code} — <why>"
                )
                print(
                    f"waive a file:    # reprolint: "
                    f"disable-file={lint_rule.code} — <why> "
                    f"(within the first {devtools.FILE_WAIVER_WINDOW} "
                    f"lines)"
                )
                return 0
        known = ", ".join(r.code for r in devtools.all_rules())
        raise CliError(
            f"no such rule: {args.explain} (known: {known})"
        )
    root = _lint_root(args)
    if args.paths:
        targets = [Path(p) for p in args.paths]
        for target in targets:
            if not target.exists():
                raise CliError(f"no such path: {target}")
    else:
        targets = [root / "src" / "repro"]
        if not targets[0].is_dir():
            raise CliError(
                f"default lint target {targets[0]} not found (installed "
                f"without sources?) — pass explicit paths"
            )
    baseline_file = Path(
        args.baseline_file
        if args.baseline_file
        else root / "LINT_baseline.json"
    )
    active_rules = devtools.all_rules()
    if args.no_flow:
        active_rules = tuple(
            r for r in active_rules if r.scope == "module"
        )
    report = devtools.lint_report(targets, root, rules=active_rules)
    violations = report.violations
    for issue in report.waiver_issues:
        print(
            f"warning: {issue.path}:{issue.line}: stale waiver for "
            f"{issue.code} ({issue.reason})",
            file=sys.stderr,
        )
    if args.update_baseline:
        devtools.save_baseline(baseline_file, violations)
        print(
            f"lint baseline -> {baseline_file} "
            f"({len(violations)} accepted violation(s))"
        )
        return 0
    if args.baseline:
        try:
            accepted = devtools.load_baseline(baseline_file)
        except devtools.BaselineError as exc:
            raise CliError(str(exc)) from None
        failures = devtools.compare(violations, accepted)
        stale = devtools.stale_entries(violations, accepted)
    else:
        failures = violations
        stale = 0
    if args.json:
        print(devtools.render_json(failures))
    elif failures:
        print(devtools.render_text(failures))
    if args.baseline and not args.json:
        covered = len(violations) - len(failures)
        print(
            f"lint gate: {len(failures)} new violation(s), "
            f"{covered} baseline-covered, {stale} stale baseline "
            f"entr{'y' if stale == 1 else 'ies'}"
        )
    elif not failures and not args.json:
        print("lint: clean")
    if args.strict_waivers and report.waiver_issues:
        return 1
    return 1 if failures else 0


def _render_verdict(verdict: dict) -> str:
    lists = ",".join(verdict["lists"]) or "-"
    return (
        f"{verdict['ip']} day={verdict['day']} "
        f"listed={'yes' if verdict['listed'] else 'no'} "
        f"lists={lists} kind={verdict['reuse_kind'] or '-'} "
        f"users={verdict['users']} asn={verdict['asn']} "
        f"unjust={'yes' if verdict['unjust'] else 'no'} "
        f"action={verdict['action']}"
    )


def _cmd_query(args: argparse.Namespace) -> int:
    port = _checked_port(args.port)
    if not args.stats and not args.hello and not args.ip:
        raise CliError(
            "no addresses given (and --stats/--hello not requested)"
        )
    with ReputationClient(args.host, port, codec=args.codec) as client:
        if args.codec == "binary" and client.codec != "binary":
            raise CliError(
                f"server at {args.host}:{port} did not accept the "
                "binary codec (use --codec auto to fall back to JSON)"
            )
        if args.hello:
            print(json.dumps(client.hello(), indent=2, sort_keys=True))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if len(args.ip) == 1:
            verdicts = [client.query(args.ip[0], args.day)]
        else:
            verdicts = client.query_batch(
                (ip, args.day) for ip in args.ip
            )
    for verdict in verdicts:
        if args.json:
            print(json.dumps(verdict, sort_keys=True))
        elif "error" in verdict:
            # A cluster router degrades per-IP when a shard is down
            # instead of failing the whole batch.
            shard = verdict.get("shard")
            where = f" shard={shard}" if shard is not None else ""
            print(f"{verdict['ip']} error={verdict['error']}{where}")
        else:
            print(_render_verdict(verdict))
    return 0


def _cmd_catalog(_: argparse.Namespace) -> int:
    grouped = catalog_by_maintainer()
    rows = sorted(
        ((name, len(lists)) for name, lists in grouped.items()),
        key=lambda kv: (-kv[1], kv[0]),
    )
    total = sum(count for _, count in rows)
    print(
        render_table(
            ["maintainer", "# of blocklists"],
            rows + [("Total", total)],
            title="Table 2: monitored blocklists",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "figures": _cmd_figures,
        "survey": _cmd_survey,
        "catalog": _cmd_catalog,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "query": _cmd_query,
        "load": _cmd_load,
        "stream": _cmd_stream,
        "scenarios": _cmd_scenarios,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into head/less that exited early — not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (
        CliError,
        ServiceError,
        SnapshotError,
        UpdateLogError,
        ValueError,
    ) as exc:
        # User-facing failures (bad preset/port/address, unreadable
        # snapshot or update log, unreachable server): one line, exit
        # code 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Bind failures, refused connections, unwritable paths.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
