"""Sharded, replicated serving for the reputation service.

One process and one index copy cap the single-server stack of
:mod:`repro.service`; real deployments consult blocklists per flow, so
query capacity must scale horizontally. This package partitions the
IPv4 space across worker shards and puts a protocol-identical router
in front:

* :mod:`repro.cluster.partition` — :class:`PartitionMap`, the
  deterministic /24-aligned split of the address space (no dynamic-
  prefix verdict ever straddles shards);
* :mod:`repro.cluster.shard` — :class:`ShardServer` /
  :class:`ShardProcess`, the existing service stack over
  ``ReputationIndex.restrict(...)``, each shard independently tailing
  the shared update log (filtered to its range, epochs in lockstep);
* :mod:`repro.cluster.router` — :class:`Router`, the scatter-gather
  front speaking the unchanged wire protocol: point routing, batched
  fan-out with in-order merge, merged ``stats``/``hello`` with
  min/max epoch, heartbeats, replica failover, and explicit
  ``SHARD_UNAVAILABLE`` degradation instead of failed batches;
* :mod:`repro.cluster.local` — :class:`LocalCluster`, the one-machine
  bootstrapper behind ``repro cluster`` and the tests, including
  :meth:`LocalCluster.split_shard`, the online shard split;
* :mod:`repro.cluster.elastic` — :class:`HotRangeDetector` /
  :class:`AutoSplitter`, the closed loop that watches the router's
  per-shard load and splits sustained hot ranges automatically.
"""

from .elastic import AutoSplitter, HotRangeDetector
from .local import LocalCluster
from .partition import MAX_SHARDS, PartitionMap, ShardRange
from .router import SHARD_UNAVAILABLE, Backend, Router, ShardSlot
from .shard import ShardProcess, ShardServer, filter_batch

__all__ = [
    "AutoSplitter",
    "Backend",
    "HotRangeDetector",
    "LocalCluster",
    "MAX_SHARDS",
    "PartitionMap",
    "Router",
    "SHARD_UNAVAILABLE",
    "ShardProcess",
    "ShardRange",
    "ShardServer",
    "ShardSlot",
    "filter_batch",
]
