"""Close the loop: watch routed load, split sustained hot ranges.

Two pieces, split so the policy is unit-testable without a cluster:

* :class:`HotRangeDetector` is a pure decision function over
  successive :meth:`~repro.cluster.router.Router.load_snapshot`
  payloads. It works on per-window *deltas* (counters are cumulative),
  resets its baseline whenever the router's ``partition_epoch`` moves
  (fresh slots mean fresh counters — not a traffic collapse), and
  nominates a shard only after it has taken at least ``factor`` times
  its fair share of the window's traffic for ``sustain`` consecutive
  windows. Quiet windows (below ``min_hits`` total) break the streak:
  skew over a handful of queries is noise, not heat.

* :class:`AutoSplitter` is the controller thread: poll the router,
  feed the detector, and on a nomination drive
  :meth:`~repro.cluster.local.LocalCluster.split_shard` — boot the two
  half-range backends, cut routing over, drain, retire. Every
  decision (split, skip, failure) lands in ``events`` so tests and the
  CLI can show exactly what the loop did and why.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .partition import MAX_SHARDS

__all__ = ["AutoSplitter", "HotRangeDetector"]


class HotRangeDetector:
    """Streak detector over per-shard load deltas.

    ``observe`` consumes one load snapshot and returns the shard id to
    split, or ``None``. Deterministic: the same snapshot sequence
    always yields the same nominations.
    """

    def __init__(
        self,
        *,
        factor: float = 2.0,
        sustain: int = 3,
        min_hits: int = 100,
    ) -> None:
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1.0: {factor}")
        if sustain < 1:
            raise ValueError(f"sustain must be >= 1: {sustain}")
        if min_hits < 1:
            raise ValueError(f"min_hits must be >= 1: {min_hits}")
        self.factor = factor
        self.sustain = sustain
        self.min_hits = min_hits
        self._lock = threading.Lock()
        self._epoch: Optional[int] = None
        self._last: List[int] = []
        self._candidate: Optional[int] = None
        self._streak = 0

    def observe(self, snapshot: Dict[str, Any]) -> Optional[int]:
        """Feed one ``load_snapshot`` payload; maybe nominate a shard."""
        with self._lock:
            epoch = snapshot["partition_epoch"]
            hits = [row["hits"] for row in snapshot["shards"]]
            if self._epoch != epoch or len(hits) != len(self._last):
                # Layout changed under us: counters restarted, every
                # earlier streak is about a shard id that may not even
                # mean the same range any more.
                self._epoch = epoch
                self._last = hits
                self._candidate = None
                self._streak = 0
                return None
            deltas = [
                now - before for now, before in zip(hits, self._last)
            ]
            self._last = hits
            total = sum(deltas)
            if total < self.min_hits or len(deltas) < 2:
                self._candidate = None
                self._streak = 0
                return None
            fair = total / len(deltas)
            hottest = max(range(len(deltas)), key=lambda i: deltas[i])
            if deltas[hottest] < self.factor * fair:
                self._candidate = None
                self._streak = 0
                return None
            if hottest == self._candidate:
                self._streak += 1
            else:
                self._candidate = hottest
                self._streak = 1
            if self._streak >= self.sustain:
                self._streak = 0
                self._candidate = None
                return hottest
            return None


class AutoSplitter:
    """Background controller: detector nominations become live splits.

    ``cluster`` must be a started
    :class:`~repro.cluster.local.LocalCluster` (its ``router`` is
    polled). ``on_split`` (if given) fires after each successful split
    with the split-info dict ``split_shard`` returned.
    """

    def __init__(
        self,
        cluster: Any,
        *,
        interval: float = 1.0,
        factor: float = 2.0,
        sustain: int = 3,
        min_hits: int = 100,
        max_shards: int = MAX_SHARDS,
        on_split: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"poll interval must be positive: {interval}")
        if not 1 <= max_shards <= MAX_SHARDS:
            raise ValueError(
                f"max_shards out of 1..{MAX_SHARDS}: {max_shards}"
            )
        self._cluster = cluster
        self._interval = interval
        self._max_shards = max_shards
        self._on_split = on_split
        self._detector = HotRangeDetector(
            factor=factor, sustain=sustain, min_hits=min_hits
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Decision log: dicts with an ``action`` key (``split`` /
        #: ``skip`` / ``error``); appended by the controller thread,
        #: read by tests and the CLI after (or during) a run.
        self.events: List[Dict[str, Any]] = []

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("auto-splitter already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-auto-split", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def splits(self) -> List[Dict[str, Any]]:
        """Just the successful splits from the decision log."""
        return [e for e in self.events if e["action"] == "split"]

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            router = self._cluster.router
            if router is None:
                continue
            hot = self._detector.observe(router.load_snapshot())
            if hot is None:
                continue
            if len(self._cluster.partition) >= self._max_shards:
                self.events.append(
                    {
                        "action": "skip",
                        "shard": hot,
                        "reason": f"at max_shards={self._max_shards}",
                        "at": time.time(),
                    }
                )
                continue
            try:
                info = self._cluster.split_shard(hot)
            except ValueError as exc:
                # Unsplittable (single-/24) shard: remember why, keep
                # watching — another shard may heat up instead.
                self.events.append(
                    {
                        "action": "skip",
                        "shard": hot,
                        "reason": str(exc),
                        "at": time.time(),
                    }
                )
                continue
            # A controller crash must not kill the serving plane; the
            # event log carries the failure to the operator/test.
            except Exception as exc:
                self.events.append(
                    {
                        "action": "error",
                        "shard": hot,
                        "reason": f"{type(exc).__name__}: {exc}",
                        "at": time.time(),
                    }
                )
                continue
            event = {"action": "split", "at": time.time(), **info}
            self.events.append(event)
            if self._on_split is not None:
                self._on_split(info)
