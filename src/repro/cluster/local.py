"""Boot a whole sharded cluster on one machine.

:class:`LocalCluster` wires the pieces together: partition the space,
restrict the full index per shard, start each shard's primary and
replicas (threads in-process, or one forked worker process per
backend), then put a :class:`~repro.cluster.router.Router` in front.
Tests and benchmarks use thread mode; ``repro cluster`` uses process
mode so each shard genuinely holds only its slice in its own
interpreter.

Kill/restart hooks (:meth:`kill_primary` / :meth:`restart_primary`)
exist because the acceptance bar requires serving *through* a shard
outage, not just before and after one.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..service.index import ReputationIndex
from ..service.server import DEFAULT_CONNECTION_TIMEOUT
from ..stream.epoch import index_as_of
from .partition import PartitionMap, ShardRange
from .router import (
    DEFAULT_BACKEND_TIMEOUT,
    DEFAULT_HEARTBEAT_INTERVAL,
    Router,
)
from .shard import ShardProcess, ShardServer

__all__ = ["LocalCluster"]

_ShardHost = Union[ShardServer, ShardProcess]


class LocalCluster:
    """N shards × (1 + R) backends plus a router, on localhost.

    ``full_index`` is the unrestricted compiled index; each backend
    gets ``full_index.restrict(...)`` of its shard's range (rolled
    back to the log's start day first when ``follow`` is given, so a
    following shard replays exactly what a single-process
    ``serve --follow`` would). Replicas are independent backends over
    the same slice — in streaming mode each follows the shared log on
    its own, so a failover target is as fresh as its own tail.

    The partition inherits ``full_index.family``, so handing a
    compiled IPv6 index here boots a v6 cluster with no other knobs.
    A v4 cluster may also host a *static* v6 plane alongside
    (``v6_index`` + ``v6_shards``): the router then answers both
    families on one port. Kill/restart/split hooks act on the primary
    plane only.
    """

    def __init__(
        self,
        full_index: ReputationIndex,
        *,
        shards: int = 3,
        replicas: int = 0,
        follow: "Path | str | None" = None,
        start_day: Optional[int] = None,
        mode: str = "thread",
        host: str = "127.0.0.1",
        router_port: int = 0,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        backend_timeout: float = DEFAULT_BACKEND_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        poll_interval: float = 0.05,
        backend_codec: str = "binary",
        v6_index: Optional[ReputationIndex] = None,
        v6_shards: int = 2,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown cluster mode: {mode!r}")
        if replicas < 0:
            raise ValueError(f"negative replica count: {replicas}")
        self.partition = PartitionMap(shards, family=full_index.family)
        self.mode = mode
        self._follow = follow
        self._start_day = start_day
        self._host = host
        self._replicas = replicas
        self._poll_interval = poll_interval
        self._connection_timeout = connection_timeout
        base = full_index
        if follow is not None and start_day is not None:
            base = index_as_of(full_index, start_day)
        # The unrestricted (day-rolled) base is kept beyond __init__:
        # an online split restricts fresh half-range slices from it.
        self._base = base
        # One split at a time; the router swap itself is atomic, this
        # lock just serialises controller decisions.
        self._split_lock = threading.Lock()
        # backends[shard_id][0] is the primary, the rest replicas.
        # The pristine restricted bases are kept: a restarted follower
        # shard must replay the log from this state, not from whatever
        # epoch the dead worker had reached.
        self._bases: List[ReputationIndex] = []
        self._backends: List[List[_ShardHost]] = []
        for shard_id, shard_range in enumerate(self.partition.ranges):
            restricted = base.restrict(shard_range.lo, shard_range.hi)
            self._bases.append(restricted)
            self._backends.append(
                [
                    self._make_backend(restricted, shard_id, shard_range)
                    for _ in range(1 + replicas)
                ]
            )
        # Optional static v6 plane next to a v4 primary: its shards
        # never follow a log and never split — the dual-family front
        # door is the point, not v6 elasticity.
        self.partition6: Optional[PartitionMap] = None
        self._backends6: List[List[_ShardHost]] = []
        self._addresses6: List[List[Tuple[str, int]]] = []
        if v6_index is not None:
            if full_index.family is v6_index.family:
                raise ValueError(
                    "v6_index must carry the other address family; "
                    f"both indexes are {full_index.family.name}"
                )
            self.partition6 = PartitionMap(
                v6_shards, family=v6_index.family
            )
            for shard_id, shard_range in enumerate(
                self.partition6.ranges
            ):
                restricted = v6_index.restrict(
                    shard_range.lo, shard_range.hi
                )
                self._backends6.append(
                    [
                        self._make_backend(
                            restricted,
                            shard_id,
                            shard_range,
                            follow=None,
                        )
                    ]
                )
        self._router_args = dict(
            host=host,
            port=router_port,
            connection_timeout=connection_timeout,
            backend_timeout=backend_timeout,
            heartbeat_interval=heartbeat_interval,
            backend_codec=backend_codec,
        )
        self.router: Optional[Router] = None

    #: Sentinel distinguishing "no follow" from "inherit the cluster's".
    _INHERIT = object()

    def _make_backend(
        self,
        restricted: ReputationIndex,
        shard_id: int,
        shard_range: ShardRange,
        follow: Any = _INHERIT,
    ) -> _ShardHost:
        if follow is LocalCluster._INHERIT:
            follow = self._follow
        if self.mode == "process":
            return ShardProcess(
                restricted,
                shard_id,
                shard_range,
                follow=follow,
                start_day=self._start_day,
                host=self._host,
                connection_timeout=self._connection_timeout,
            )
        return ShardServer(
            restricted,
            shard_id,
            shard_range,
            follow=follow,
            start_day=self._start_day,
            host=self._host,
            connection_timeout=self._connection_timeout,
            poll_interval=self._poll_interval,
        )

    # -- lifecycle -----------------------------------------------------

    def start_backends(self) -> List[List[Tuple[str, int]]]:
        """Start every primary-plane backend; returns their bound
        addresses (v6-plane backends start here too, kept aside)."""
        self._addresses6 = [
            [backend.start() for backend in slot]
            for slot in self._backends6
        ]
        return [
            [backend.start() for backend in slot]
            for slot in self._backends
        ]

    def build_router(
        self, addresses: List[List[Tuple[str, int]]]
    ) -> Router:
        """Construct (but don't start) the router over ``addresses``;
        registered on ``self.router`` so :meth:`close` tears it down."""
        with self._split_lock:
            self.router = Router(
                self.partition,
                addresses,
                v6_partition=self.partition6,
                v6_backends=self._addresses6 or None,
                **self._router_args,
            )
            return self.router

    def start(self) -> Tuple[str, int]:
        """Start every backend, then the router; returns its address."""
        return self.build_router(self.start_backends()).start()

    def close(self) -> None:
        """Shut the router and every backend down (idempotent).

        Takes the split lock first, so teardown waits for any
        in-progress :meth:`split_shard` rather than racing it."""
        with self._split_lock:
            router, self.router = self.router, None
        if router is not None:
            router.shutdown()
        for slot in self._backends + self._backends6:
            for backend in slot:
                try:
                    if isinstance(backend, ShardProcess):
                        backend.kill()
                    else:
                        backend.stop()
                # Teardown must not mask the real failure; every
                # backend still gets its stop attempt.
                # reprolint: disable=EXC
                except Exception:
                    pass

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *_: Any) -> None:
        self.close()

    # -- observability / chaos hooks -----------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self.router is None:
            raise RuntimeError("cluster not started")
        return self.router.address

    def backend(self, shard_id: int, replica: int = 0) -> _ShardHost:
        """One backend host (0 = primary)."""
        return self._backends[shard_id][replica]

    def shard_pids(self) -> List[List[Optional[int]]]:
        """Per-shard backend pids (process mode; None in thread mode)."""
        return [
            [
                backend.pid if isinstance(backend, ShardProcess) else None
                for backend in slot
            ]
            for slot in self._backends
        ]

    def kill_primary(self, shard_id: int) -> None:
        """Take shard ``shard_id``'s primary down, hard."""
        backend = self._backends[shard_id][0]
        if isinstance(backend, ShardProcess):
            backend.kill()
        else:
            backend.stop()

    def restart_primary(self, shard_id: int) -> Tuple[str, int]:
        """Bring a killed primary back on its original port."""
        old = self._backends[shard_id][0]
        shard_range = self.partition.range_of(shard_id)
        if isinstance(old, ShardProcess):
            return old.restart()
        host, port = old.address
        replacement = ShardServer(
            self._bases[shard_id],
            shard_id,
            shard_range,
            follow=self._follow,
            start_day=self._start_day,
            host=host,
            port=port,
            connection_timeout=self._router_args["connection_timeout"],
        )
        self._backends[shard_id][0] = replacement
        return replacement.start()

    def wait_for_seq(self, seq: int, timeout: float = 60.0) -> bool:
        """Block until every live backend has applied ``seq``."""
        for slot in self._backends:
            for backend in slot:
                if isinstance(backend, ShardServer):
                    if not backend.wait_for_seq(seq, timeout=timeout):
                        return False
        return True

    # -- elasticity ----------------------------------------------------

    def split_shard(
        self,
        shard_id: int,
        *,
        catchup_timeout: float = 30.0,
        drain_timeout: float = 10.0,
    ) -> Dict[str, Any]:
        """Split one shard's range in half, online, zero lost queries.

        The sequence keeps every in-flight and future query answerable
        at all times:

        1. restrict two half-range slices from the kept base index and
           boot their backends (old shard still serving everything);
        2. in follow mode, wait for the new backends to replay the log
           to at least the old primary's applied seq;
        3. :meth:`Router.apply_partition` — new traffic routes to the
           halves; requests already in flight complete against the old
           backends, whose index covers both halves (``restrict`` is
           verdict-preserving in range, so those answers are correct);
        4. drain the retired connections, then stop the old backends.

        Raises :class:`ValueError` (from ``PartitionMap.split``) when
        the shard covers a single /24 and cannot split. Returns a
        summary dict (the auto-splitter's event payload).
        """
        with self._split_lock:
            if self.router is None:
                raise RuntimeError("cluster not started")
            new_partition = self.partition.split(shard_id)
            old_slot = self._backends[shard_id]
            halves = (
                new_partition.range_of(shard_id),
                new_partition.range_of(shard_id + 1),
            )
            new_bases: List[ReputationIndex] = []
            new_slots: List[List[_ShardHost]] = []
            for offset, shard_range in enumerate(halves):
                restricted = self._base.restrict(
                    shard_range.lo, shard_range.hi
                )
                new_bases.append(restricted)
                new_slots.append(
                    [
                        self._make_backend(
                            restricted, shard_id + offset, shard_range
                        )
                        for _ in range(1 + self._replicas)
                    ]
                )
            try:
                for slot in new_slots:
                    for backend in slot:
                        backend.start()
                if self._follow is not None:
                    target = old_slot[0].applied_seq()
                    for slot in new_slots:
                        for backend in slot:
                            if not backend.wait_for_seq(
                                target, timeout=catchup_timeout
                            ):
                                raise RuntimeError(
                                    f"half-range shard did not reach "
                                    f"seq {target} within "
                                    f"{catchup_timeout:g}s"
                                )
            except BaseException:
                # Boot/catch-up failed: the old shard keeps serving;
                # tear the half-built replacements down and report.
                for slot in new_slots:
                    for backend in slot:
                        try:
                            if isinstance(backend, ShardProcess):
                                backend.kill()
                            else:
                                backend.stop()
                        except (OSError, RuntimeError):
                            pass
                raise
            addresses = [
                [tuple(backend.address) for backend in slot]
                for slot in self._backends
            ]
            addresses[shard_id:shard_id + 1] = [
                [tuple(backend.address) for backend in slot]
                for slot in new_slots
            ]
            self.router.apply_partition(new_partition, addresses)
            drained = self.router.drain_retired(drain_timeout)
            for backend in old_slot:
                try:
                    if isinstance(backend, ShardProcess):
                        backend.kill()
                    else:
                        backend.stop()
                except (OSError, RuntimeError):
                    pass
            self.partition = new_partition
            self._backends[shard_id:shard_id + 1] = new_slots
            self._bases[shard_id:shard_id + 1] = new_bases
            return {
                "shard": shard_id,
                "new_shards": [shard_id, shard_id + 1],
                "ranges": [str(r) for r in halves],
                "shards": len(new_partition),
                "drained": drained,
            }
