"""Deterministic partitioning of the IPv4 space into shard ranges.

The cluster's correctness hinges on one property: a verdict must never
depend on *which* shard answered. The only cross-address state a
verdict reads is the dynamic-/24 classification (the paper expands
dynamic detections to their covering /24, Section 3.2), so the
partitioner splits the space at /24 boundaries — every /24, and with
it every dynamic-prefix decision, lives wholly inside one shard.

A :class:`PartitionMap` starts as a pure function of the shard count:
the 2^24 /24-blocks are split into ``shards`` contiguous, balanced
ranges (block ``b`` goes to shard ``floor(b * shards / 2^24)``), so a
router and any number of shard bootstrappers agree on the layout
without coordination. Online elasticity then generalises the layout:
:meth:`PartitionMap.split` halves one shard's range at a /24-aligned
midpoint, producing a *non-uniform* map, and
:meth:`PartitionMap.from_ranges` / :meth:`PartitionMap.from_wire`
validate and rebuild any such layout (the ``stats`` payload carries
it), keeping the single invariant — contiguous, gap-free, /24-aligned
coverage of the whole space — regardless of how the map was grown.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..net.ipv4 import MAX_IPV4, int_to_ip, is_valid_ip_int

__all__ = ["MAX_SHARDS", "PartitionMap", "ShardRange"]

#: Number of /24 blocks in the IPv4 space — the partitioning unit.
_TOTAL_BLOCKS = 1 << 24

#: Upper bound on the shard count (one shard per /24 block at most is
#: absurd; this bound just keeps a typo'd count from allocating wild).
MAX_SHARDS = 4096


@dataclass(frozen=True, order=True)
class ShardRange:
    """One shard's contiguous, /24-aligned slice ``lo..hi`` (inclusive)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (is_valid_ip_int(self.lo) and is_valid_ip_int(self.hi)):
            raise ValueError(f"bad range bounds: {self.lo!r}..{self.hi!r}")
        if self.lo > self.hi:
            raise ValueError(
                f"range ends before it starts: {self.lo}..{self.hi}"
            )
        if self.lo & 0xFF or (self.hi & 0xFF) != 0xFF:
            raise ValueError(
                f"range not /24-aligned: "
                f"{int_to_ip(self.lo)}..{int_to_ip(self.hi)}"
            )

    def contains(self, ip: int) -> bool:
        """True when integer address ``ip`` falls inside the range."""
        return self.lo <= ip <= self.hi

    def size(self) -> int:
        """Number of addresses covered."""
        return self.hi - self.lo + 1

    def to_wire(self) -> List[int]:
        """JSON-ready ``[lo, hi]`` pair."""
        return [self.lo, self.hi]

    @classmethod
    def from_wire(cls, row: Sequence[int]) -> "ShardRange":
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            raise ValueError(f"range row must be [lo, hi]: {row!r}")
        return cls(int(row[0]), int(row[1]))

    def __str__(self) -> str:
        return f"{int_to_ip(self.lo)}..{int_to_ip(self.hi)}"


class PartitionMap:
    """The deterministic shard layout for a given shard count."""

    def __init__(self, shards: int) -> None:
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ValueError(f"shard count must be an integer: {shards!r}")
        if not 1 <= shards <= MAX_SHARDS:
            raise ValueError(
                f"shard count out of range 1..{MAX_SHARDS}: {shards}"
            )
        starts = [
            (i * _TOTAL_BLOCKS) // shards for i in range(shards)
        ]
        ranges: List[ShardRange] = []
        for i, start_block in enumerate(starts):
            end_block = (
                starts[i + 1] if i + 1 < shards else _TOTAL_BLOCKS
            )
            ranges.append(
                ShardRange(start_block << 8, (end_block << 8) - 1)
            )
        self._set_ranges(tuple(ranges))

    def _set_ranges(self, ranges: Tuple[ShardRange, ...]) -> None:
        self._ranges: Tuple[ShardRange, ...] = ranges
        # Parallel start-block array: the bisect key for shard_of.
        self._block_starts = [r.lo >> 8 for r in ranges]

    @classmethod
    def from_ranges(cls, ranges: Sequence[ShardRange]) -> "PartitionMap":
        """A map over an explicit (possibly non-uniform) range list.

        The ranges must cover the whole IPv4 space contiguously in
        order — no gaps, no overlaps — because ``shard_of`` must have
        exactly one answer for every address.
        """
        rows = tuple(ranges)
        if not rows:
            raise ValueError("a partition needs at least one range")
        if len(rows) > MAX_SHARDS:
            raise ValueError(
                f"{len(rows)} ranges exceed the {MAX_SHARDS}-shard cap"
            )
        for row in rows:
            if not isinstance(row, ShardRange):
                raise ValueError(f"not a ShardRange: {row!r}")
        if rows[0].lo != 0:
            raise ValueError(
                f"coverage must start at 0.0.0.0, not {int_to_ip(rows[0].lo)}"
            )
        if rows[-1].hi != MAX_IPV4:
            raise ValueError(
                f"coverage must end at {int_to_ip(MAX_IPV4)}, "
                f"not {int_to_ip(rows[-1].hi)}"
            )
        for left, right in zip(rows, rows[1:]):
            if right.lo != left.hi + 1:
                raise ValueError(
                    f"ranges must be contiguous: {left} then {right}"
                )
        pm = cls.__new__(cls)
        pm._set_ranges(rows)
        return pm

    @classmethod
    def from_wire(cls, payload: Any) -> "PartitionMap":
        """Rebuild a map from its :meth:`to_wire` payload."""
        if not isinstance(payload, dict):
            raise ValueError(f"partition payload must be an object: {payload!r}")
        rows = payload.get("ranges")
        if not isinstance(rows, list):
            raise ValueError(f"partition payload has no range list: {payload!r}")
        pm = cls.from_ranges([ShardRange.from_wire(row) for row in rows])
        declared = payload.get("shards")
        if declared is not None and declared != len(pm):
            raise ValueError(
                f"partition payload declares {declared} shards but "
                f"carries {len(pm)} ranges"
            )
        return pm

    def split(self, shard_id: int) -> "PartitionMap":
        """A new map with shard ``shard_id`` halved at a /24-aligned
        midpoint; shards after it shift up by one id.

        Raises :class:`ValueError` when the shard covers a single /24
        (the partitioning unit — splitting it would strand a dynamic
        prefix across shards) or the map is already at the shard cap.
        """
        if not 0 <= shard_id < len(self._ranges):
            raise ValueError(
                f"no shard {shard_id} in a {len(self._ranges)}-shard map"
            )
        rng = self._ranges[shard_id]
        blocks = (rng.hi + 1 - rng.lo) >> 8
        if blocks < 2:
            raise ValueError(
                f"shard {shard_id} covers a single /24 ({rng}); "
                f"cannot split further"
            )
        if len(self._ranges) >= MAX_SHARDS:
            raise ValueError(
                f"map already at the {MAX_SHARDS}-shard cap"
            )
        mid = rng.lo + ((blocks // 2) << 8)
        return PartitionMap.from_ranges(
            self._ranges[:shard_id]
            + (ShardRange(rng.lo, mid - 1), ShardRange(mid, rng.hi))
            + self._ranges[shard_id + 1:]
        )

    @property
    def ranges(self) -> Tuple[ShardRange, ...]:
        """Every shard's range, shard-id ordered."""
        return self._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[ShardRange]:
        return iter(self._ranges)

    def shard_of(self, ip: int) -> int:
        """The shard id owning integer address ``ip``."""
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        return bisect_right(self._block_starts, ip >> 8) - 1

    def range_of(self, shard_id: int) -> ShardRange:
        """The range of one shard (:class:`IndexError` when absent)."""
        return self._ranges[shard_id]

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready description (the ``stats`` op reports it)."""
        return {
            "shards": len(self._ranges),
            "ranges": [r.to_wire() for r in self._ranges],
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartitionMap)
            and self._ranges == other._ranges
        )

    def __hash__(self) -> int:
        return hash(self._ranges)
