"""Deterministic partitioning of an address space into shard ranges.

The cluster's correctness hinges on one property: a verdict must never
depend on *which* shard answered. The only cross-address state a
verdict reads is the dynamic-prefix classification (the paper expands
dynamic detections to their covering /24, Section 3.2; the IPv6
analogue is the Entropy/IP /64 subnet), so the partitioner splits the
space at the family's *atom* boundaries — every /24 (v4) or /64 (v6),
and with it every dynamic-prefix decision, lives wholly inside one
shard.

A :class:`PartitionMap` starts as a pure function of the shard count:
the family's atoms are split into ``shards`` contiguous, balanced
ranges (atom ``b`` goes to shard ``floor(b * shards / total_atoms)``),
so a router and any number of shard bootstrappers agree on the layout
without coordination. Online elasticity then generalises the layout:
:meth:`PartitionMap.split` halves one shard's range at an atom-aligned
midpoint, producing a *non-uniform* map, and
:meth:`PartitionMap.from_ranges` / :meth:`PartitionMap.from_wire`
validate and rebuild any such layout (the ``stats`` payload carries
it), keeping the single invariant — contiguous, gap-free, atom-aligned
coverage of the whole space — regardless of how the map was grown.

Validation errors render bounds in fixed-width hex alongside the
dotted/colon form: 128-bit integers are unreadable in decimal, and hex
makes an alignment slip (a low host bit set) visible at a glance.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..net.family import V4, AddressFamily, family_named

__all__ = ["MAX_SHARDS", "PartitionMap", "ShardRange"]

#: Upper bound on the shard count (one shard per atom at most is
#: absurd; this bound just keeps a typo'd count from allocating wild).
MAX_SHARDS = 4096


@dataclass(frozen=True, order=True)
class ShardRange:
    """One shard's contiguous, atom-aligned slice ``lo..hi`` (inclusive)."""

    lo: int
    hi: int
    family: AddressFamily = field(default=V4, compare=False)

    def __post_init__(self) -> None:
        fam = self.family
        if not (fam.valid_ip(self.lo) and fam.valid_ip(self.hi)):
            raise ValueError(
                f"bad {fam.name} range bounds: {self.lo!r}..{self.hi!r}"
            )
        if self.lo > self.hi:
            raise ValueError(
                f"range ends before it starts: "
                f"{fam.hex(self.lo)}..{fam.hex(self.hi)}"
            )
        if self.lo & fam.atom_mask or (self.hi & fam.atom_mask) != fam.atom_mask:
            raise ValueError(
                f"range not /{fam.atom_bits}-aligned: "
                f"{fam.format(self.lo)}..{fam.format(self.hi)} "
                f"({fam.hex(self.lo)}..{fam.hex(self.hi)})"
            )

    def contains(self, ip: int) -> bool:
        """True when integer address ``ip`` falls inside the range."""
        return self.lo <= ip <= self.hi

    def size(self) -> int:
        """Number of addresses covered."""
        return self.hi - self.lo + 1

    def to_wire(self) -> List[int]:
        """JSON-ready ``[lo, hi]`` pair."""
        return [self.lo, self.hi]

    @classmethod
    def from_wire(
        cls, row: Sequence[int], family: AddressFamily = V4
    ) -> "ShardRange":
        if not isinstance(row, (list, tuple)) or len(row) != 2:
            raise ValueError(f"range row must be [lo, hi]: {row!r}")
        return cls(int(row[0]), int(row[1]), family)

    def __str__(self) -> str:
        return f"{self.family.format(self.lo)}..{self.family.format(self.hi)}"


class PartitionMap:
    """The deterministic shard layout for a given shard count."""

    def __init__(self, shards: int, family: AddressFamily = V4) -> None:
        if not isinstance(shards, int) or isinstance(shards, bool):
            raise ValueError(f"shard count must be an integer: {shards!r}")
        if not 1 <= shards <= MAX_SHARDS:
            raise ValueError(
                f"shard count out of range 1..{MAX_SHARDS}: {shards}"
            )
        total_atoms = family.total_atoms
        host = family.atom_host_bits
        starts = [(i * total_atoms) // shards for i in range(shards)]
        ranges: List[ShardRange] = []
        for i, start_atom in enumerate(starts):
            end_atom = starts[i + 1] if i + 1 < shards else total_atoms
            ranges.append(
                ShardRange(
                    start_atom << host, (end_atom << host) - 1, family
                )
            )
        self._family = family
        self._set_ranges(tuple(ranges))

    def _set_ranges(self, ranges: Tuple[ShardRange, ...]) -> None:
        self._ranges: Tuple[ShardRange, ...] = ranges
        # Parallel start-atom array: the bisect key for shard_of.
        host = self._family.atom_host_bits
        self._atom_starts = [r.lo >> host for r in ranges]

    @property
    def family(self) -> AddressFamily:
        """The address family this map partitions."""
        return self._family

    @classmethod
    def from_ranges(
        cls, ranges: Sequence[ShardRange], family: AddressFamily = V4
    ) -> "PartitionMap":
        """A map over an explicit (possibly non-uniform) range list.

        The ranges must cover the whole address space contiguously in
        order — no gaps, no overlaps — because ``shard_of`` must have
        exactly one answer for every address.
        """
        rows = tuple(ranges)
        if not rows:
            raise ValueError("a partition needs at least one range")
        if len(rows) > MAX_SHARDS:
            raise ValueError(
                f"{len(rows)} ranges exceed the {MAX_SHARDS}-shard cap"
            )
        for row in rows:
            if not isinstance(row, ShardRange):
                raise ValueError(f"not a ShardRange: {row!r}")
            if row.family is not family:
                raise ValueError(
                    f"range {row} is {row.family.name}, map is {family.name}"
                )
        if rows[0].lo != 0:
            raise ValueError(
                f"coverage must start at {family.format(0)}, not "
                f"{family.format(rows[0].lo)} ({family.hex(rows[0].lo)})"
            )
        if rows[-1].hi != family.max_int:
            raise ValueError(
                f"coverage must end at {family.hex(family.max_int)}, "
                f"not {family.hex(rows[-1].hi)}"
            )
        for left, right in zip(rows, rows[1:]):
            if right.lo != left.hi + 1:
                raise ValueError(
                    f"ranges must be contiguous: {left} then {right} "
                    f"(gap after {family.hex(left.hi)})"
                )
        pm = cls.__new__(cls)
        pm._family = family
        pm._set_ranges(rows)
        return pm

    @classmethod
    def from_wire(cls, payload: Any) -> "PartitionMap":
        """Rebuild a map from its :meth:`to_wire` payload."""
        if not isinstance(payload, dict):
            raise ValueError(f"partition payload must be an object: {payload!r}")
        family = family_named(payload.get("family"))
        rows = payload.get("ranges")
        if not isinstance(rows, list):
            raise ValueError(f"partition payload has no range list: {payload!r}")
        pm = cls.from_ranges(
            [ShardRange.from_wire(row, family) for row in rows], family
        )
        declared = payload.get("shards")
        if declared is not None and declared != len(pm):
            raise ValueError(
                f"partition payload declares {declared} shards but "
                f"carries {len(pm)} ranges"
            )
        return pm

    def split(self, shard_id: int) -> "PartitionMap":
        """A new map with shard ``shard_id`` halved at an atom-aligned
        midpoint; shards after it shift up by one id.

        Raises :class:`ValueError` when the shard covers a single atom
        (the partitioning unit — splitting it would strand a dynamic
        prefix across shards) or the map is already at the shard cap.
        """
        if not 0 <= shard_id < len(self._ranges):
            raise ValueError(
                f"no shard {shard_id} in a {len(self._ranges)}-shard map"
            )
        fam = self._family
        host = fam.atom_host_bits
        rng = self._ranges[shard_id]
        atoms = (rng.hi + 1 - rng.lo) >> host
        if atoms < 2:
            raise ValueError(
                f"shard {shard_id} covers a single /{fam.atom_bits} "
                f"({rng}); cannot split further"
            )
        if len(self._ranges) >= MAX_SHARDS:
            raise ValueError(
                f"map already at the {MAX_SHARDS}-shard cap"
            )
        mid = rng.lo + ((atoms // 2) << host)
        return PartitionMap.from_ranges(
            self._ranges[:shard_id]
            + (
                ShardRange(rng.lo, mid - 1, fam),
                ShardRange(mid, rng.hi, fam),
            )
            + self._ranges[shard_id + 1:],
            fam,
        )

    @property
    def ranges(self) -> Tuple[ShardRange, ...]:
        """Every shard's range, shard-id ordered."""
        return self._ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[ShardRange]:
        return iter(self._ranges)

    def shard_of(self, ip: int) -> int:
        """The shard id owning integer address ``ip``."""
        if not self._family.valid_ip(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        return (
            bisect_right(self._atom_starts, ip >> self._family.atom_host_bits)
            - 1
        )

    def range_of(self, shard_id: int) -> ShardRange:
        """The range of one shard (:class:`IndexError` when absent)."""
        return self._ranges[shard_id]

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready description (the ``stats`` op reports it).

        The ``family`` key is emitted only for non-v4 maps so v4
        payloads stay byte-identical to the pre-family wire format.
        """
        payload: Dict[str, Any] = {
            "shards": len(self._ranges),
            "ranges": [r.to_wire() for r in self._ranges],
        }
        if self._family is not V4:
            payload["family"] = self._family.name
        return payload

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartitionMap)
            and self._family is other._family
            and self._ranges == other._ranges
        )

    def __hash__(self) -> int:
        return hash((self._family.name, self._ranges))
