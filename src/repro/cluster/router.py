"""The cluster's front door: route, scatter-gather, fail over.

A :class:`Router` binds one TCP socket speaking the *existing* service
wire protocol — a client cannot tell a router from a single-process
server, including the binary-codec ``hello`` negotiation — and fans
requests out over the shard fleet:

* point queries route by the partition map to the owning shard's
  active backend (primary, else the first healthy replica);
* batch queries are split by shard, scattered, and the per-shard
  replies merged back into request order;
* ``stats``/``hello`` scatter to every shard and merge, reporting the
  fleet's ``min``/``max`` epoch and seq so cross-shard staleness is
  visible to the client;
* a heartbeat thread pings every backend; a dead backend is marked
  unhealthy (and retried each beat, so a restarted shard rejoins
  without operator action).

Everything rides one event loop: the downstream listener is a
pipelined :class:`~repro.service.aio.WireServer`, and each shard
backend gets one *persistent pipelined* upstream connection registered
on the same reactor — no per-batch threads, no per-request connects.
When the fleet speaks the binary codec, a routed batch is pure
plumbing: packed request records scatter out, packed reply records
merge back by position, and no verdict dict is ever materialised in
the router.

Failure degrades, never cascades: when every backend of a shard is
down, a point query gets an explicit ``SHARD_UNAVAILABLE`` error
reply and a batch reply carries per-IP ``{"error":
"SHARD_UNAVAILABLE"}`` entries in the dead shard's positions — the
other shards' verdicts still flow. A backend connection that dies
with requests in flight fails those requests over to the next
candidate backend; an idle EOF just closes the pooled connection (the
backend may simply have timed us out), leaving its health standing so
the next request probes it first.
"""

from __future__ import annotations

import errno
import os
import selectors
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..net.family import V4, V6, AddressFamily, family_of_ip
from ..service.aio import Conn, Slot, WireServer
from ..service.server import (
    DEFAULT_CONNECTION_TIMEOUT,
    MAX_BATCH,
    PROTOCOL_VERSION,
    RequestError,
    negotiate_hello,
    parse_batch,
    parse_day,
    parse_ip,
)
from ..service.wire import (
    FT_BATCH_REP,
    FT_BATCH_REP6,
    FT_MSG,
    MAX_FRAME_BYTES,
    WireError,
    decode_binary_frame,
    decode_frame,
    decode_msg_payload,
    decode_record,
    decode_record6,
    encode_batch_request,
    encode_batch_request6,
    encode_frame,
    encode_msg_frame,
    pack_degraded,
    pack_degraded6,
    pack_verdict_wire,
    pack_verdict_wire6,
    recv_frame,
    send_frame,
    split_batch_reply,
    split_batch_reply6,
)
from .partition import PartitionMap, ShardRange

__all__ = ["Backend", "Router", "ShardSlot", "SHARD_UNAVAILABLE"]

#: Error tag clients see when a shard (and all its replicas) is down.
SHARD_UNAVAILABLE = "SHARD_UNAVAILABLE"

#: Seconds between heartbeat sweeps over the backend fleet.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Connect/IO timeout the router uses towards shard backends.
DEFAULT_BACKEND_TIMEOUT = 5.0

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE

#: Bytes asked from the kernel per upstream readable event.
_RECV_CHUNK = 1 << 18


class ShardUnavailable(RuntimeError):
    """Every backend of one shard failed at the transport level."""

    def __init__(self, shard_id: int, cause: str) -> None:
        super().__init__(
            f"{SHARD_UNAVAILABLE}: shard {shard_id} has no live "
            f"backend ({cause})"
        )
        self.shard_id = shard_id


class _Sub:
    """One upstream request in flight (or queued for failover).

    ``finish(status, value)`` fires exactly once with one of:
    ``("records", [raw record bytes])`` — binary batch reply;
    ``("verdicts", [verdict dicts])`` — JSON batch reply;
    ``("result", payload)`` — any ``ok`` message reply;
    ``("reject", error string)`` — the backend answered ``ok: false``;
    ``("unavailable", cause)`` — every candidate backend failed.
    """

    __slots__ = ("kind", "request", "pairs", "rid", "candidates",
                 "failed", "shard_slot", "deadline", "finish", "v6")

    def __init__(
        self,
        kind: str,
        shard_slot: "ShardSlot",
        finish: Callable[[str, Any], None],
        *,
        request: Optional[Dict[str, Any]] = None,
        pairs: Optional[List[Tuple[int, Optional[int]]]] = None,
        v6: bool = False,
    ) -> None:
        self.kind = kind  # "batch" (packed pairs) or "msg" (request)
        self.request = request
        self.pairs = pairs
        self.v6 = v6  # batch subs: which packed record layout applies
        self.rid = 0
        self.candidates: Deque["Backend"] = deque(
            shard_slot.ordered_backends()
        )
        self.failed = 0
        self.shard_slot = shard_slot
        self.deadline = 0.0
        self.finish = finish


class Backend:
    """One shard server address: its health flag plus the router's
    persistent pipelined connection state (loop-thread owned).

    The connection advances through ``state``: ``"idle"`` (no socket)
    → ``"connecting"`` (non-blocking connect in flight) →
    ``"hello"`` (codec negotiation sent, awaiting the reply) →
    ``"ready"`` (subs flow). Until ``"ready"`` the codec is unknown,
    so submitted subs queue in ``waiting`` and are encoded when the
    handshake settles; every transition happens on the loop thread,
    which never blocks on upstream I/O."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        timeout: float = DEFAULT_BACKEND_TIMEOUT,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.timeout = timeout
        self.healthy = True  # optimistic until a connect/call fails
        # Loop-owned pipelined connection state.
        self.sock: Optional[socket.socket] = None
        self.state = "idle"
        self.codec = "json"
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.pending: Deque[_Sub] = deque()
        self.waiting: Deque[_Sub] = deque()
        self.rid = 0
        self.registered = False
        self.events = 0
        self.callback: Any = None

    def probe(self) -> bool:
        """One blocking liveness ping over a throwaway connection.

        The heartbeat thread and :meth:`Router.wait_healthy` run off
        the loop thread, so they never touch the loop's pipelined
        connection — a fresh socket per probe keeps the threads apart.
        """
        try:
            with socket.create_connection(
                self.address, timeout=self.timeout
            ) as sock:
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                send_frame(sock, {"op": "ping"})
                reply = recv_frame(sock)
        except (WireError, OSError):
            self.healthy = False
            return False
        ok = isinstance(reply, dict) and bool(reply.get("ok"))
        self.healthy = ok
        return ok


class ShardSlot:
    """One shard id's backend set: a primary plus optional replicas."""

    def __init__(
        self,
        shard_id: int,
        addresses: Sequence[Tuple[str, int]],
        *,
        timeout: float = DEFAULT_BACKEND_TIMEOUT,
        shard_range: Optional[ShardRange] = None,
    ) -> None:
        if not addresses:
            raise ValueError(f"shard {shard_id} has no backends")
        self.shard_id = shard_id
        self.shard_range = shard_range
        self.backends = [
            Backend(address, timeout=timeout) for address in addresses
        ]
        #: Requests that succeeded only after at least one backend
        #: failed; written on the loop thread only.
        self.failovers = 0
        #: Queries routed to this shard (points + batch positions);
        #: written on the loop thread only — the load signal the
        #: hot-range detector reads.
        self.hits = 0

    def ordered_backends(self) -> List[Backend]:
        """Healthy backends first (primary before replicas), then
        unhealthy ones as a last resort so a just-restarted shard
        answers before the next heartbeat."""
        return [b for b in self.backends if b.healthy] + [
            b for b in self.backends if not b.healthy
        ]

    def healthy_count(self) -> int:
        return sum(backend.healthy for backend in self.backends)


class Router:
    """Scatter-gather front over a partitioned shard fleet.

    ``backends`` maps shard id (list position) to that shard's backend
    addresses, primary first. The partition map must be the one the
    shard indexes were restricted with — the router cannot check that,
    only the fidelity tests can. ``backend_codec="binary"`` (default)
    makes the router offer the binary codec on its upstream
    connections; a shard that doesn't speak it just stays on JSON, so
    mixed fleets work during a rollout.

    The partition's family decides which addresses the router answers
    for; a v4 router may additionally host a v6 plane
    (``v6_partition`` + ``v6_backends``) so one front door serves both
    families — queries route to a plane by their address family
    (string literals by syntax, packed frames by frame type), and a
    query for a family with no plane gets a clean error reply.
    """

    def __init__(
        self,
        partition: PartitionMap,
        backends: Sequence[Sequence[Tuple[str, int]]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        backend_timeout: float = DEFAULT_BACKEND_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        backend_codec: str = "binary",
        v6_partition: Optional[PartitionMap] = None,
        v6_backends: Optional[
            Sequence[Sequence[Tuple[str, int]]]
        ] = None,
    ) -> None:
        if len(backends) != len(partition):
            raise ValueError(
                f"{len(partition)} shards need {len(partition)} backend "
                f"lists, got {len(backends)}"
            )
        if backend_codec not in ("json", "binary"):
            raise ValueError(f"unknown backend codec {backend_codec!r}")
        self.partition = partition
        self._family = partition.family
        self.connection_timeout = connection_timeout
        self._backend_timeout = backend_timeout
        self._backend_codec = backend_codec
        self._slots = [
            ShardSlot(
                shard_id,
                list(addresses),
                timeout=backend_timeout,
                shard_range=partition.range_of(shard_id),
            )
            for shard_id, addresses in enumerate(backends)
        ]
        # Optional second routing plane for IPv6 next to a v4 primary.
        self.partition6 = v6_partition
        self._slots6: List[ShardSlot] = []
        if v6_partition is not None:
            if self._family is not V4 or v6_partition.family is not V6:
                raise ValueError(
                    "v6_partition needs a v4 primary partition and an "
                    "ipv6 secondary one"
                )
            if v6_backends is None or len(v6_backends) != len(v6_partition):
                raise ValueError(
                    f"{len(v6_partition)} v6 shards need "
                    f"{len(v6_partition)} backend lists, got "
                    f"{0 if v6_backends is None else len(v6_backends)}"
                )
            self._slots6 = [
                ShardSlot(
                    shard_id,
                    list(addresses),
                    timeout=backend_timeout,
                    shard_range=v6_partition.range_of(shard_id),
                )
                for shard_id, addresses in enumerate(v6_backends)
            ]
        elif v6_backends:
            raise ValueError("v6_backends given without v6_partition")
        #: Bumped on every apply_partition, so a load observer can
        #: tell "counters reset because the layout changed" from
        #: "counters wrapped"; written on the loop thread only.
        self._partition_epoch = 0
        #: Backends dropped by a partition swap that may still carry
        #: in-flight requests; loop-thread owned, drained and closed
        #: by :meth:`drain_retired`.
        self._retired: List[Backend] = []
        self._heartbeat_interval = heartbeat_interval
        self._stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        # Mutated on the loop thread only (dict-subscript updates).
        self._counters = {
            "point": 0,
            "batch": 0,
            "batch_queries": 0,
            "degraded": 0,
        }
        self._server = WireServer(
            self._handle,
            host,
            port,
            connection_timeout=connection_timeout,
            max_frame=MAX_FRAME_BYTES,
        )
        self._reactor = self._server.reactor

    # -- routing planes ------------------------------------------------

    def _all_slots(self) -> List[ShardSlot]:
        """Every shard slot across both planes (primary first)."""
        return self._slots + self._slots6

    def _plane(
        self, family: AddressFamily
    ) -> Optional[Tuple[PartitionMap, List[ShardSlot]]]:
        """The ``(partition, slots)`` plane answering ``family``."""
        if family is self._family:
            return self.partition, self._slots
        if family is V6 and self.partition6 is not None:
            return self.partition6, self._slots6
        return None

    def _served_families(self) -> str:
        names = [self._family.name]
        if self.partition6 is not None:
            names.append(V6.name)
        return "/".join(names)

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.address

    def _start_background(self) -> None:
        with self._lock:
            if self._heartbeat is not None:
                raise RuntimeError("router already started")
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-cluster-heartbeat",
                daemon=True,
            )
            self._heartbeat = heartbeat
        heartbeat.start()
        self._reactor.call_soon(self._arm_backend_sweep)

    def start(self) -> Tuple[str, int]:
        """Serve and heartbeat from daemon threads."""
        self._start_background()
        return self._server.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._start_background()
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and close every backend connection."""
        self._stop.set()
        with self._lock:
            heartbeat, self._heartbeat = self._heartbeat, None
        self._server.shutdown()
        if heartbeat is not None:
            heartbeat.join(timeout=5.0)
        # The loop has exited; the pooled upstream sockets (including
        # any retired-but-undrained ones) are ours to close directly.
        for backend in [
            backend
            for shard_slot in self._all_slots()
            for backend in shard_slot.backends
        ] + self._retired:
            sock, backend.sock = backend.sock, None
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._retired = []

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *_: Any) -> None:
        self.shutdown()

    # -- health --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.is_set():
            for shard_slot in self._all_slots():
                for backend in shard_slot.backends:
                    if self._stop.is_set():
                        return
                    backend.probe()
            self._stop.wait(self._heartbeat_interval)

    def health(self) -> List[List[bool]]:
        """Per-shard, per-backend health flags (tests/observability);
        v6-plane shards follow the primary plane's rows."""
        return [
            [backend.healthy for backend in shard_slot.backends]
            for shard_slot in self._all_slots()
        ]

    def wait_healthy(self, timeout: float = 10.0) -> bool:
        """Block until every backend probes healthy (bootstrap/tests)."""
        sleeper = threading.Event()
        waited = 0.0
        step = 0.05
        while waited <= timeout:
            if all(
                backend.probe()
                for shard_slot in self._all_slots()
                for backend in shard_slot.backends
            ):
                return True
            sleeper.wait(step)
            waited += step
        return False

    # -- elasticity (partition swap + load accounting) -----------------

    def load_snapshot(self) -> Dict[str, Any]:
        """Per-shard routed-query counters, callable from any thread.

        The slot list reference is read once, so the rows are
        internally consistent; ``partition_epoch`` bumps on every
        layout swap, telling an observer to reset its delta baseline
        rather than misread the fresh counters as a traffic collapse.
        """
        slots = self._slots
        return {
            "partition_epoch": self._partition_epoch,
            "shards": [
                {
                    "shard": slot.shard_id,
                    "range": (
                        slot.shard_range.to_wire()
                        if slot.shard_range is not None
                        else None
                    ),
                    "hits": slot.hits,
                }
                for slot in slots
            ],
        }

    def apply_partition(
        self,
        partition: PartitionMap,
        backends: Sequence[Sequence[Tuple[str, int]]],
        *,
        timeout: float = 10.0,
    ) -> None:
        """Cut routing over to a new layout, atomically, online.

        Thread-safe: the actual swap runs as one callback on the loop
        thread, so no request ever observes a partition/slot mismatch.
        Backends whose address survives into the new layout keep their
        live pipelined connection (and health); backends that drop out
        are *retired*, not closed — requests already in flight on them
        complete normally (during a split the old shard's index covers
        both halves, so its verdicts stay correct), and
        :meth:`drain_retired` reaps them once quiet.
        """
        if len(backends) != len(partition):
            raise ValueError(
                f"{len(partition)} shards need {len(partition)} backend "
                f"lists, got {len(backends)}"
            )
        if partition.family is not self._family:
            raise ValueError(
                f"cannot swap a {partition.family.name} partition into "
                f"a {self._family.name} routing plane"
            )

        def swap() -> None:
            old_by_address: Dict[Tuple[str, int], Backend] = {}
            for slot in self._slots:
                for backend in slot.backends:
                    old_by_address[backend.address] = backend
            new_slots = [
                ShardSlot(
                    shard_id,
                    list(addresses),
                    timeout=self._backend_timeout,
                    shard_range=partition.range_of(shard_id),
                )
                for shard_id, addresses in enumerate(backends)
            ]
            reused = set()
            for slot in new_slots:
                for position, backend in enumerate(slot.backends):
                    kept = old_by_address.get(backend.address)
                    if kept is not None:
                        slot.backends[position] = kept
                        reused.add(id(kept))
            self._retired.extend(
                backend
                for backend in old_by_address.values()
                if id(backend) not in reused
            )
            self._slots = new_slots
            self.partition = partition
            # swap() runs via run_sync as one callback on the loop
            # thread — the only writer of this counter.
            self._partition_epoch += 1

        self._reactor.run_sync(swap, timeout)

    def drain_retired(self, timeout: float = 10.0) -> bool:
        """Wait for retired backends to fall idle, then close them.

        Returns ``True`` when every retired connection drained inside
        the timeout; on ``False`` the stragglers are torn down anyway
        (their in-flight requests fail over through the normal path).
        """
        deadline = time.monotonic() + timeout
        drained = True
        while any(b.pending or b.waiting for b in self._retired):
            if time.monotonic() >= deadline:
                drained = False
                break
            time.sleep(0.01)

        def reap() -> None:
            retired, self._retired = self._retired, []
            for backend in retired:
                if backend.pending or backend.waiting:
                    self._backend_lost(
                        backend, "retired by partition swap"
                    )
                else:
                    self._close_backend(backend)

        self._reactor.run_sync(reap, timeout)
        return drained

    # -- downstream request handling (loop thread) ---------------------

    def _handle(self, conn: Conn, slot: Slot, kind: str, data: Any) -> None:
        if kind == "batch" or kind == "batch6":
            family = V6 if kind == "batch6" else V4
            plane = self._plane(family)
            if plane is None:
                slot.fail(
                    f"{family.name} batch frame cannot be answered by "
                    f"this {self._served_families()}-only cluster"
                )
                return
            if len(data) > MAX_BATCH:
                slot.fail(
                    f"batch of {len(data)} exceeds the "
                    f"{MAX_BATCH}-query limit"
                )
                return
            self._route_batch(slot, data, family, *plane)
            return
        request = data
        if not isinstance(request, dict):
            slot.fail(
                f"request must be a JSON object, got "
                f"{type(request).__name__}"
            )
            return
        op = request.get("op")
        if op == "ping":
            slot.complete({"ok": True, "result": "pong"})
        elif op == "query":
            self._route_query(slot, request)
        elif op == "batch":
            family = self._json_family(request.get("queries"))
            plane = self._plane(family)
            if plane is None:
                slot.fail(
                    f"{family.name} queries cannot be answered by "
                    f"this {self._served_families()}-only cluster"
                )
                return
            try:
                pairs = parse_batch(request.get("queries"), family)
            except RequestError as exc:
                slot.fail(str(exc))
                return
            self._route_batch(slot, pairs, family, *plane)
        elif op == "stats":
            self._route_stats(slot)
        elif op == "hello":
            self._route_hello(conn, slot, request)
        else:
            slot.fail(f"unknown op: {op!r}")

    def _json_family(self, queries: Any) -> AddressFamily:
        """The family a JSON request targets, judged by its first
        string literal — integer addresses are ambiguous and stay on
        the primary plane (mixed-family batches then fail parsing,
        which is the answer a mixed batch deserves)."""
        if isinstance(queries, list):
            for item in queries:
                ip = item.get("ip") if isinstance(item, dict) else None
                if isinstance(ip, str):
                    return family_of_ip(ip)
                break
        return self._family

    def _route_query(self, slot: Slot, request: Dict[str, Any]) -> None:
        raw_ip = request.get("ip")
        family = (
            family_of_ip(raw_ip)
            if isinstance(raw_ip, str)
            else self._family
        )
        plane = self._plane(family)
        if plane is None:
            slot.fail(
                f"{family.name} queries cannot be answered by this "
                f"{self._served_families()}-only cluster"
            )
            return
        partition, slots = plane
        try:
            ip = parse_ip(raw_ip, family)
            day = parse_day(request.get("day"))
        except RequestError as exc:
            slot.fail(str(exc))
            return
        self._counters["point"] += 1
        shard_slot = slots[partition.shard_of(ip)]
        shard_slot.hits += 1
        forward: Dict[str, Any] = {"op": "query", "ip": ip}
        if day is not None:
            forward["day"] = day

        def finish(status: str, value: Any) -> None:
            if status == "result":
                slot.complete({"ok": True, "result": value})
            elif status == "reject":
                # The shard rejected a request the router already
                # validated — our bug, surfaced like any other.
                slot.fail(f"internal error: {value}")
            else:
                self._counters["degraded"] += 1
                slot.fail(
                    str(ShardUnavailable(shard_slot.shard_id, str(value)))
                )

        self._submit(
            _Sub("msg", shard_slot, finish, request=forward)
        )

    def _route_batch(
        self,
        slot: Slot,
        pairs: List[Tuple[int, Optional[int]]],
        family: AddressFamily,
        partition: PartitionMap,
        slots: List["ShardSlot"],
    ) -> None:
        self._counters["batch"] += 1
        self._counters["batch_queries"] += len(pairs)
        total = len(pairs)
        by_shard: Dict[int, List[int]] = {}
        for position, (ip, _day) in enumerate(pairs):
            by_shard.setdefault(
                partition.shard_of(ip), []
            ).append(position)

        # Per-position reply: raw record bytes, a verdict dict, or the
        # shard id of a degraded position (int).
        entries: List[Any] = [None] * total
        if not by_shard:
            # Empty batch: zero shard fan-outs means shard_done would
            # never fire, so answer directly (an empty result is what
            # a single-process server returns).
            self._finish_batch(slot, pairs, entries, family, partition)
            return
        remaining = [len(by_shard)]

        def shard_done(
            shard_id: int, positions: List[int], status: str, value: Any
        ) -> None:
            if status == "records" and len(value) == len(positions):
                for position, record in zip(positions, value):
                    entries[position] = record
            elif (
                status == "verdicts"
                and isinstance(value, list)
                and len(value) == len(positions)
            ):
                for position, verdict in zip(positions, value):
                    entries[position] = verdict
            else:
                # Unavailable shard, error reply, or a malformed batch
                # reply: degrade this shard's positions, keep the rest.
                self._counters["degraded"] += len(positions)
                for position in positions:
                    entries[position] = shard_id
            remaining[0] -= 1
            if remaining[0] == 0:
                self._finish_batch(
                    slot, pairs, entries, family, partition
                )

        for shard_id, positions in by_shard.items():
            slots[shard_id].hits += len(positions)
            shard_pairs = [pairs[position] for position in positions]
            self._submit(
                _Sub(
                    "batch",
                    slots[shard_id],
                    lambda status, value, s=shard_id, p=positions: (
                        shard_done(s, p, status, value)
                    ),
                    pairs=shard_pairs,
                    v6=family is V6,
                )
            )

    def _finish_batch(
        self,
        slot: Slot,
        pairs: List[Tuple[int, Optional[int]]],
        entries: List[Any],
        family: AddressFamily,
        partition: PartitionMap,
    ) -> None:
        v6 = family is V6
        if slot.codec == "binary":
            pack_miss = pack_verdict_wire6 if v6 else pack_verdict_wire
            degrade = pack_degraded6 if v6 else pack_degraded
            try:
                records = []
                for (ip, day), entry in zip(pairs, entries):
                    if isinstance(entry, bytes):
                        records.append(entry)
                    elif isinstance(entry, int):
                        records.append(
                            degrade(ip, day, entry, SHARD_UNAVAILABLE)
                        )
                    else:
                        records.append(pack_miss(entry))
                if v6:
                    slot.complete_records6(records)
                else:
                    slot.complete_records(records)
                return
            except WireError:
                pass  # a verdict escaped the packed layout: JSON reply
        decode = decode_record6 if v6 else decode_record
        result: List[Dict[str, Any]] = []
        for (ip, day), entry in zip(pairs, entries):
            if isinstance(entry, bytes):
                try:
                    entry = decode(entry)
                except WireError:
                    entry = None
            if isinstance(entry, dict):
                result.append(entry)
            else:
                shard_id = (
                    entry
                    if isinstance(entry, int)
                    else partition.shard_of(ip)
                )
                result.append(
                    {
                        "ip": family.format(ip),
                        "day": day,
                        "error": SHARD_UNAVAILABLE,
                        "shard": shard_id,
                    }
                )
        slot.complete({"ok": True, "result": result})

    # -- fleet views ---------------------------------------------------

    def _gather(
        self,
        op: str,
        done: Callable[[List[Optional[Dict[str, Any]]]], None],
    ) -> None:
        """One ``op`` per shard on *both* planes (with failover);
        ``done`` receives the per-shard results aligned to
        :meth:`_all_slots` order, ``None`` where a shard is down."""
        slots = self._all_slots()
        replies: List[Optional[Dict[str, Any]]] = [None] * len(slots)
        remaining = [len(slots)]

        def make_finish(position: int) -> Callable[[str, Any], None]:
            def finish(status: str, value: Any) -> None:
                if status == "result" and isinstance(value, dict):
                    replies[position] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done(replies)

            return finish

        for position, shard_slot in enumerate(slots):
            self._submit(
                _Sub(
                    "msg",
                    shard_slot,
                    make_finish(position),
                    request={"op": op},
                )
            )

    def _fleet_summary(
        self, hellos: List[Optional[Dict[str, Any]]]
    ) -> Dict[str, Any]:
        slots = self._all_slots()
        epochs = [h["epoch"] for h in hellos if h is not None]
        seqs = [h["seq"] for h in hellos if h is not None]
        return {
            "shards": len(slots),
            "backends": sum(len(s.backends) for s in slots),
            "healthy_backends": sum(
                s.healthy_count() for s in slots
            ),
            "shards_up": sum(1 for h in hellos if h is not None),
            "epoch_min": min(epochs) if epochs else 0,
            "epoch_max": max(epochs) if epochs else 0,
            "seq_min": min(seqs) if seqs else 0,
            "seq_max": max(seqs) if seqs else 0,
        }

    def _route_hello(
        self, conn: Conn, slot: Slot, request: Dict[str, Any]
    ) -> None:
        """The merged handshake. Top-level ``epoch``/``seq`` report the
        fleet *minimum* — the only freshness a cross-shard consumer may
        assume — while the ``cluster`` block exposes the spread. Codec
        negotiation works exactly as on a single server."""

        def done(hellos: List[Optional[Dict[str, Any]]]) -> None:
            summary = self._fleet_summary(hellos)
            streaming = any(
                h.get("streaming", False)
                for h in hellos
                if h is not None
            )
            result = {
                "service": "repro-reputation",
                "protocol": PROTOCOL_VERSION,
                "streaming": streaming,
                "epoch": summary["epoch_min"],
                "seq": summary["seq_min"],
                "cluster": summary,
            }
            new_codec = negotiate_hello(request, result)
            slot.complete({"ok": True, "result": result})
            if new_codec is not None:
                conn.codec = new_codec

        self._gather("hello", done)

    def _route_stats(self, slot: Slot) -> None:
        """Merged fleet stats: per-shard payloads plus cluster rollup."""

        def stats_done(
            shard_stats: List[Optional[Dict[str, Any]]]
        ) -> None:
            def hello_done(
                hellos: List[Optional[Dict[str, Any]]]
            ) -> None:
                slot.complete(
                    {
                        "ok": True,
                        "result": self._build_stats(shard_stats, hellos),
                    }
                )

            self._gather("hello", hello_done)

        self._gather("stats", stats_done)

    def _build_stats(
        self,
        shard_stats: List[Optional[Dict[str, Any]]],
        hellos: List[Optional[Dict[str, Any]]],
    ) -> Dict[str, Any]:
        summary = self._fleet_summary(hellos)
        index_totals = {"ips": 0, "intervals": 0, "nated_ips": 0,
                        "dynamic_prefixes": 0, "ases": 0}
        lists = 0
        for payload in shard_stats:
            if not payload:
                continue
            sizes = payload.get("index", {})
            for key in index_totals:
                index_totals[key] += sizes.get(key, 0)
            lists = max(lists, sizes.get("lists", 0))
        index_totals["lists"] = lists
        router_counters = dict(self._counters)
        router_counters["failovers"] = sum(
            shard_slot.failovers for shard_slot in self._slots
        )
        router_counters["failovers"] += sum(
            shard_slot.failovers for shard_slot in self._slots6
        )
        router_counters["partition_epoch"] = self._partition_epoch
        primary = len(self._slots)
        rows = []
        for position, shard_slot in enumerate(self._all_slots()):
            plane_partition = (
                self.partition if position < primary else self.partition6
            )
            row = {
                "shard": shard_slot.shard_id,
                # The slot's own range, not partition.range_of: a
                # partition swap between the stats and hello
                # gathers must not mislabel (or over-index) rows.
                "range": (
                    shard_slot.shard_range.to_wire()
                    if shard_slot.shard_range is not None
                    else plane_partition.range_of(  # type: ignore[union-attr]
                        shard_slot.shard_id
                    ).to_wire()
                ),
                "hits": shard_slot.hits,
                "backends": [
                    {
                        "address": list(backend.address),
                        "healthy": backend.healthy,
                    }
                    for backend in shard_slot.backends
                ],
                "stats": (
                    shard_stats[position]
                    if position < len(shard_stats)
                    else None
                ),
            }
            if position >= primary:
                row["family"] = V6.name
            rows.append(row)
        payload = {
            "cluster": summary,
            "router": router_counters,
            "partition": self.partition.to_wire(),
            "index": index_totals,
            "shards": rows,
        }
        if self.partition6 is not None:
            payload["partition6"] = self.partition6.to_wire()
        return payload

    # -- upstream connections (loop thread) ----------------------------

    def _submit(self, sub: _Sub, cause: str = "no backends") -> None:
        """Send ``sub`` to its first live candidate backend."""
        while sub.candidates:
            backend = sub.candidates.popleft()
            if self._send_sub(backend, sub):
                return
            sub.failed += 1
            cause = f"cannot reach {backend.address[0]}:{backend.address[1]}"
        sub.finish("unavailable", cause)

    def _start_connect(self, backend: Backend) -> bool:
        """Begin a non-blocking connect; the loop thread never blocks
        on an upstream, so an unreachable (SYN-dropping) shard cannot
        stall traffic to the rest of the fleet."""
        started = False
        err = -1
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            err = sock.connect_ex(backend.address)
            started = err in (0, errno.EINPROGRESS, errno.EWOULDBLOCK)
        except OSError:
            started = False
        finally:
            if not started:
                sock.close()
        if not started:
            backend.healthy = False
            return False
        backend.sock = sock
        backend.state = "connecting"
        backend.codec = "json"
        backend.inbuf.clear()
        backend.outbuf.clear()
        backend.pending.clear()
        backend.waiting.clear()
        backend.registered = False
        backend.events = 0
        backend.callback = (
            lambda mask, b=backend: self._on_backend_event(b, mask)
        )
        if err == 0:
            self._connect_done(backend)
        else:
            self._watch_backend(backend, _WRITE)
        return backend.sock is not None

    def _connect_done(self, backend: Backend) -> None:
        """The non-blocking connect resolved: fail, or start the codec
        handshake (pipelined — the hello is just the first frame)."""
        assert backend.sock is not None
        err = backend.sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
        if err:
            self._backend_lost(
                backend, f"connect failed: {os.strerror(err)}"
            )
            return
        backend.healthy = True
        if self._backend_codec == "binary":
            backend.state = "hello"
            backend.outbuf += encode_frame(
                {"op": "hello", "accept_codecs": ["binary"]},
                max_size=MAX_FRAME_BYTES,
            )
        else:
            self._backend_ready(backend)
        self._flush_backend(backend)

    def _backend_ready(self, backend: Backend) -> None:
        """The codec settled: encode and send every waiting sub."""
        backend.state = "ready"
        while backend.waiting and backend.sock is not None:
            sub = backend.waiting.popleft()
            if not self._enqueue_sub(backend, sub):
                sub.failed += 1
                self._submit(sub, "unserialisable request")

    def _send_sub(self, backend: Backend, sub: _Sub) -> bool:
        if backend.sock is None and not self._start_connect(backend):
            return False
        sub.deadline = time.monotonic() + self._backend_timeout
        if backend.state != "ready":
            # Connect/handshake still in flight; the sub goes out the
            # moment the codec settles, and its deadline (swept on the
            # loop) bounds a backend that never becomes ready.
            backend.waiting.append(sub)
            return True
        return self._enqueue_sub(backend, sub)

    def _enqueue_sub(self, backend: Backend, sub: _Sub) -> bool:
        backend.rid = (backend.rid + 1) & 0xFFFFFFFF
        sub.rid = backend.rid
        try:
            backend.outbuf += self._encode_sub(sub, backend.codec)
        except WireError:
            # Unserialisable forward — nothing another backend could
            # do better; report the shard as the problem.
            return False
        backend.pending.append(sub)
        # If this write kills the connection, _backend_lost fails the
        # pending subs over (re-entering _submit with the remaining
        # candidates) — either way the sub is handled, so: done here.
        self._flush_backend(backend)
        return True

    def _encode_sub(self, sub: _Sub, codec: str) -> bytes:
        if sub.kind == "batch":
            assert sub.pairs is not None
            if codec == "binary":
                encode = (
                    encode_batch_request6 if sub.v6 else encode_batch_request
                )
                try:
                    return encode(
                        sub.pairs, sub.rid, max_size=MAX_FRAME_BYTES
                    )
                except WireError:
                    pass  # day outside the packed layout: JSON shape
            request: Dict[str, Any] = {
                "op": "batch",
                "queries": [
                    {"ip": ip, "day": day} if day is not None else {"ip": ip}
                    for ip, day in sub.pairs
                ],
            }
        else:
            assert sub.request is not None
            request = sub.request
        if codec == "binary":
            return encode_msg_frame(
                request, sub.rid, max_size=MAX_FRAME_BYTES
            )
        return encode_frame(request, max_size=MAX_FRAME_BYTES)

    def _watch_backend(self, backend: Backend, events: int) -> None:
        if backend.sock is None:
            return
        if events == backend.events and backend.registered == bool(events):
            return
        if not events:
            if backend.registered:
                backend.registered = False
                try:
                    self._reactor.unregister(backend.sock)
                except (KeyError, ValueError, OSError):
                    pass
        elif backend.registered:
            self._reactor.modify(backend.sock, events, backend.callback)
        else:
            self._reactor.register(
                backend.sock, events, backend.callback
            )
            backend.registered = True
        backend.events = events

    def _close_backend(self, backend: Backend) -> None:
        sock, backend.sock = backend.sock, None
        backend.state = "idle"
        if sock is None:
            return
        if backend.registered:
            backend.registered = False
            try:
                self._reactor.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
        backend.events = 0
        try:
            sock.close()
        except OSError:
            pass
        backend.inbuf.clear()
        backend.outbuf.clear()

    def _backend_lost(
        self, backend: Backend, cause: str, *, idle_eof: bool = False
    ) -> None:
        """The pooled connection died: fail its in-flight requests over
        to the next candidates. A clean EOF with nothing in flight is
        just the backend recycling an idle connection — health stands,
        the next request reconnects."""
        pending = list(backend.pending) + list(backend.waiting)
        backend.pending.clear()
        backend.waiting.clear()
        self._close_backend(backend)
        if pending or not idle_eof:
            backend.healthy = False
        for sub in pending:
            sub.failed += 1
            self._submit(sub, cause)

    def _on_backend_event(self, backend: Backend, mask: int) -> None:
        try:
            if backend.state == "connecting":
                # Only _WRITE is watched while connecting; an error
                # also surfaces here (selectors maps it to readiness)
                # and _connect_done reads it from SO_ERROR.
                self._connect_done(backend)
                return
            if mask & _WRITE:
                self._flush_backend(backend)
            if mask & _READ and backend.sock is not None:
                self._backend_readable(backend)
        # Containment: a router bug on one upstream must not take the
        # loop (and the whole cluster's front door) down.
        except Exception as exc:
            self._backend_lost(backend, f"internal router error: {exc}")

    def _flush_backend(self, backend: Backend) -> None:
        if backend.sock is None:
            return
        out = backend.outbuf
        if out:
            try:
                sent = backend.sock.send(out)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError as exc:
                self._backend_lost(backend, f"send failed: {exc}")
                return
            if sent:
                del out[:sent]
        self._watch_backend(
            backend, _READ | (_WRITE if out else 0)
        )

    def _backend_readable(self, backend: Backend) -> None:
        assert backend.sock is not None
        try:
            data = backend.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._backend_lost(backend, f"recv failed: {exc}")
            return
        if not data:
            self._backend_lost(
                backend,
                "connection closed",
                idle_eof=not backend.pending and not backend.waiting,
            )
            return
        backend.inbuf += data
        try:
            self._parse_backend(backend)
        except WireError as exc:
            self._backend_lost(backend, f"garbled reply: {exc}")

    def _parse_backend(self, backend: Backend) -> None:
        while backend.sock is not None:
            if backend.state == "hello":
                # First frame on a negotiating connection is the hello
                # reply, always in JSON framing (the server switches
                # codecs only for frames after it).
                decoded = decode_frame(
                    backend.inbuf, max_size=MAX_FRAME_BYTES
                )
                if decoded is None:
                    return
                reply, consumed = decoded
                del backend.inbuf[:consumed]
                result = (
                    reply.get("result")
                    if isinstance(reply, dict)
                    else None
                )
                backend.codec = (
                    "binary"
                    if isinstance(result, dict)
                    and result.get("codec") == "binary"
                    else "json"
                )
                self._backend_ready(backend)
            elif backend.codec == "binary":
                decoded = decode_binary_frame(
                    backend.inbuf, max_size=MAX_FRAME_BYTES
                )
                if decoded is None:
                    return
                ftype, rid, payload, consumed = decoded
                del backend.inbuf[:consumed]
                if not backend.pending:
                    raise WireError("reply with nothing in flight")
                sub = backend.pending.popleft()
                # A garbled reply past this point must not orphan the
                # popped sub: put it back so _backend_lost (reached
                # via the caller's WireError handler) fails it over
                # with the rest of the pending queue.
                try:
                    if sub.rid != rid:
                        raise WireError(
                            f"reply for request {rid}, "
                            f"expected {sub.rid}"
                        )
                    if ftype == FT_BATCH_REP or ftype == FT_BATCH_REP6:
                        if (ftype == FT_BATCH_REP6) != sub.v6:
                            raise WireError(
                                f"batch reply frame type {ftype} does "
                                f"not match the request's family"
                            )
                        split = (
                            split_batch_reply6
                            if sub.v6
                            else split_batch_reply
                        )
                        self._sub_success(sub, "records", split(payload))
                    elif ftype == FT_MSG:
                        self._deliver_reply(
                            sub,
                            decode_msg_payload(
                                payload, max_size=MAX_FRAME_BYTES
                            ),
                        )
                    else:
                        raise WireError(
                            f"unexpected frame type {ftype}"
                        )
                except WireError:
                    backend.pending.appendleft(sub)
                    raise
            else:
                decoded = decode_frame(
                    backend.inbuf, max_size=MAX_FRAME_BYTES
                )
                if decoded is None:
                    return
                reply, consumed = decoded
                del backend.inbuf[:consumed]
                if not backend.pending:
                    raise WireError("reply with nothing in flight")
                sub = backend.pending.popleft()
                try:
                    self._deliver_reply(sub, reply)
                except WireError:
                    backend.pending.appendleft(sub)
                    raise

    def _deliver_reply(self, sub: _Sub, reply: Any) -> None:
        if not isinstance(reply, dict):
            raise WireError(f"malformed reply: {reply!r}")
        if not reply.get("ok"):
            sub.finish(
                "reject", str(reply.get("error", "unknown error"))
            )
            return
        result = reply.get("result")
        if sub.kind == "batch":
            self._sub_success(sub, "verdicts", result)
        else:
            self._sub_success(sub, "result", result)

    def _sub_success(self, sub: _Sub, status: str, value: Any) -> None:
        if sub.failed:
            sub.shard_slot.failovers += 1
        sub.finish(status, value)

    # -- upstream deadlines --------------------------------------------

    def _arm_backend_sweep(self) -> None:
        if not self._reactor.is_running():
            return
        self._reactor.call_later(
            max(0.05, min(1.0, self._backend_timeout / 4.0)),
            self._backend_sweep,
        )

    def _backend_sweep(self) -> None:
        now = time.monotonic()
        live = [
            backend
            for shard_slot in self._all_slots()
            for backend in shard_slot.backends
        ]
        # Retired backends left the slot table but may still hold
        # in-flight requests; their deadlines are enforced the same.
        for backend in live + self._retired:
            # Waiting subs cover connections stuck in the connect
            # or hello phase — a backend that never becomes ready
            # times out exactly like one that never replies.
            queue = backend.pending or backend.waiting
            if queue and queue[0].deadline < now:
                self._backend_lost(backend, "backend timed out")
        self._arm_backend_sweep()
