"""The cluster's front door: route, scatter-gather, fail over.

A :class:`Router` binds one TCP socket speaking the *existing* service
wire protocol — a client cannot tell a router from a single-process
server — and fans requests out over the shard fleet:

* point queries route by the partition map to the owning shard's
  active backend (primary, else the first healthy replica);
* batch queries are split by shard, scattered concurrently, and the
  per-shard replies merged back into request order;
* ``stats``/``hello`` scatter to every shard and merge, reporting the
  fleet's ``min``/``max`` epoch and seq so cross-shard staleness is
  visible to the client;
* a heartbeat thread pings every backend; a dead backend is marked
  unhealthy (and retried each beat, so a restarted shard rejoins
  without operator action).

Failure degrades, never cascades: when every backend of a shard is
down, a point query gets an explicit ``SHARD_UNAVAILABLE`` error
reply and a batch reply carries per-IP ``{"error":
"SHARD_UNAVAILABLE"}`` entries in the dead shard's positions — the
other shards' verdicts still flow.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.ipv4 import int_to_ip
from ..service.client import ReputationClient, ServiceError, TransportError
from ..service.server import (
    DEFAULT_CONNECTION_TIMEOUT,
    MAX_BATCH,
    PROTOCOL_VERSION,
    RequestError,
    parse_day,
    parse_ip,
)
from ..service.wire import MAX_FRAME_BYTES, FrameError, recv_frame, send_frame
from .partition import PartitionMap

__all__ = ["Backend", "Router", "ShardSlot", "SHARD_UNAVAILABLE"]

#: Error tag clients see when a shard (and all its replicas) is down.
SHARD_UNAVAILABLE = "SHARD_UNAVAILABLE"

#: Seconds between heartbeat sweeps over the backend fleet.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Connect/IO timeout the router uses towards shard backends.
DEFAULT_BACKEND_TIMEOUT = 5.0


class ShardUnavailable(RuntimeError):
    """Every backend of one shard failed at the transport level."""

    def __init__(self, shard_id: int, cause: str) -> None:
        super().__init__(
            f"{SHARD_UNAVAILABLE}: shard {shard_id} has no live "
            f"backend ({cause})"
        )
        self.shard_id = shard_id


class Backend:
    """One shard server address plus its pooled connection + health."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        timeout: float = DEFAULT_BACKEND_TIMEOUT,
    ) -> None:
        self.address = (str(address[0]), int(address[1]))
        self._timeout = timeout
        self._client: Optional[ReputationClient] = None
        self._lock = threading.Lock()
        self.healthy = True  # optimistic until a call says otherwise

    def call(self, request: Dict[str, Any]) -> Any:
        """Forward one request; :class:`TransportError` marks us down."""
        with self._lock:
            if self._client is None:
                self._client = ReputationClient(
                    *self.address, timeout=self._timeout
                )
            try:
                result = self._client.call(request)
            except TransportError:
                self._drop_client()
                self.healthy = False
                raise
            except ServiceError:
                raise  # backend is alive; the request was the problem
            self.healthy = True
            return result

    def _drop_client(self) -> None:
        if self._client is not None:
            self._client.close()
            # reprolint: disable=CONC — every caller holds self._lock
            self._client = None

    def probe(self) -> bool:
        """One heartbeat: ping, update ``healthy``, report it."""
        try:
            self.call({"op": "ping"})
        except (TransportError, ServiceError):
            # The heartbeat thread and the request path both write
            # this flag; call() marks it under the lock, so must we.
            with self._lock:
                self.healthy = False
        return self.healthy

    def close(self) -> None:
        with self._lock:
            self._drop_client()


class ShardSlot:
    """One shard id's backend set: a primary plus optional replicas."""

    def __init__(
        self,
        shard_id: int,
        addresses: Sequence[Tuple[str, int]],
        *,
        timeout: float = DEFAULT_BACKEND_TIMEOUT,
    ) -> None:
        if not addresses:
            raise ValueError(f"shard {shard_id} has no backends")
        self.shard_id = shard_id
        self.backends = [
            Backend(address, timeout=timeout) for address in addresses
        ]
        self.failovers = 0
        # Scatter threads call into one slot concurrently; the
        # failover counter is read-modify-write shared state.
        self._lock = threading.Lock()

    def call(self, request: Dict[str, Any]) -> Any:
        """Forward with failover: healthy backends first (primary
        before replicas), then unhealthy ones as a last resort so a
        just-restarted shard answers before the next heartbeat."""
        ordered = [b for b in self.backends if b.healthy] + [
            b for b in self.backends if not b.healthy
        ]
        cause = "no backends"
        failed = 0
        for backend in ordered:
            try:
                result = backend.call(request)
            except TransportError as exc:
                cause = str(exc)
                failed += 1
                continue
            if failed:
                with self._lock:
                    self.failovers += 1
            return result
        raise ShardUnavailable(self.shard_id, cause)

    def healthy_count(self) -> int:
        return sum(backend.healthy for backend in self.backends)

    def close(self) -> None:
        for backend in self.backends:
            backend.close()


class _RouterHandler(socketserver.BaseRequestHandler):
    server: "_RouterTcpServer"

    def handle(self) -> None:
        sock = self.request
        sock.settimeout(self.server.router.connection_timeout)
        router = self.server.router
        while True:
            try:
                request = recv_frame(sock, max_size=MAX_FRAME_BYTES)
            except FrameError as exc:
                self._reply(sock, {"ok": False, "error": str(exc)})
                if exc.recoverable:
                    continue
                return
            except OSError:
                return
            if request is None:
                return
            try:
                reply = router.dispatch(request)
            except RequestError as exc:
                reply = {"ok": False, "error": str(exc)}
            except ShardUnavailable as exc:
                reply = {"ok": False, "error": str(exc)}
            except Exception as exc:  # never let a bug kill the worker
                reply = {"ok": False, "error": f"internal error: {exc}"}
            if not self._reply(sock, reply):
                return

    @staticmethod
    def _reply(sock, message: Dict[str, Any]) -> bool:
        try:
            send_frame(sock, message)
            return True
        except (FrameError, OSError):
            return False


class _RouterTcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    router: "Router"


class Router:
    """Scatter-gather front over a partitioned shard fleet.

    ``backends`` maps shard id (list position) to that shard's backend
    addresses, primary first. The partition map must be the one the
    shard indexes were restricted with — the router cannot check that,
    only the fidelity tests can.
    """

    def __init__(
        self,
        partition: PartitionMap,
        backends: Sequence[Sequence[Tuple[str, int]]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        backend_timeout: float = DEFAULT_BACKEND_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        if len(backends) != len(partition):
            raise ValueError(
                f"{len(partition)} shards need {len(partition)} backend "
                f"lists, got {len(backends)}"
            )
        self.partition = partition
        self.connection_timeout = connection_timeout
        self._slots = [
            ShardSlot(shard_id, list(addresses), timeout=backend_timeout)
            for shard_id, addresses in enumerate(backends)
        ]
        self._heartbeat_interval = heartbeat_interval
        self._stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._serving = False
        self._lock = threading.Lock()
        self._counters = {
            "point": 0,
            "batch": 0,
            "batch_queries": 0,
            "degraded": 0,
        }
        self._server = _RouterTcpServer((host, port), _RouterHandler)
        self._server.router = self

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Serve and heartbeat from daemon threads."""
        with self._lock:
            if self._serve_thread is not None:
                raise RuntimeError("router already started")
            serve_thread = threading.Thread(
                target=lambda: self._server.serve_forever(
                    poll_interval=0.1
                ),
                name="repro-cluster-router",
                daemon=True,
            )
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-cluster-heartbeat",
                daemon=True,
            )
            self._serving = True
            self._serve_thread = serve_thread
            self._heartbeat = heartbeat
        serve_thread.start()
        heartbeat.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name="repro-cluster-heartbeat",
            daemon=True,
        )
        with self._lock:
            self._heartbeat = heartbeat
            self._serving = True
        heartbeat.start()
        self._server.serve_forever(poll_interval=0.1)

    def shutdown(self) -> None:
        """Stop serving and close every backend connection."""
        self._stop.set()
        with self._lock:
            serving, self._serving = self._serving, False
            serve_thread, self._serve_thread = self._serve_thread, None
            heartbeat, self._heartbeat = self._heartbeat, None
        if serving:
            # BaseServer.shutdown hangs unless serve_forever ran.
            self._server.shutdown()
        self._server.server_close()
        if serve_thread is not None:
            serve_thread.join(timeout=5.0)
        if heartbeat is not None:
            heartbeat.join(timeout=5.0)
        for slot in self._slots:
            slot.close()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *_: Any) -> None:
        self.shutdown()

    # -- health --------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.is_set():
            for slot in self._slots:
                for backend in slot.backends:
                    if self._stop.is_set():
                        return
                    backend.probe()
            self._stop.wait(self._heartbeat_interval)

    def health(self) -> List[List[bool]]:
        """Per-shard, per-backend health flags (tests/observability)."""
        return [
            [backend.healthy for backend in slot.backends]
            for slot in self._slots
        ]

    def wait_healthy(self, timeout: float = 10.0) -> bool:
        """Block until every backend probes healthy (bootstrap/tests)."""
        deadline = threading.Event()
        waited = 0.0
        step = 0.05
        while waited <= timeout:
            if all(
                backend.probe()
                for slot in self._slots
                for backend in slot.backends
            ):
                return True
            deadline.wait(step)
            waited += step
        return False

    # -- dispatch ------------------------------------------------------

    def dispatch(self, request: Any) -> Dict[str, Any]:
        """Answer one already-decoded request frame."""
        if not isinstance(request, dict):
            raise RequestError(
                f"request must be a JSON object, got "
                f"{type(request).__name__}"
            )
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "result": "pong"}
        if op == "query":
            return self._dispatch_query(request)
        if op == "batch":
            return self._dispatch_batch(request)
        if op == "stats":
            return {"ok": True, "result": self.stats()}
        if op == "hello":
            return {"ok": True, "result": self.hello()}
        raise RequestError(f"unknown op: {op!r}")

    def _count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[key] += amount

    def _slot_for(self, ip: int) -> ShardSlot:
        return self._slots[self.partition.shard_of(ip)]

    def _dispatch_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ip = parse_ip(request.get("ip"))
        day = parse_day(request.get("day"))
        self._count("point")
        slot = self._slot_for(ip)
        forward: Dict[str, Any] = {"op": "query", "ip": ip}
        if day is not None:
            forward["day"] = day
        try:
            result = slot.call(forward)
        except ShardUnavailable:
            self._count("degraded")
            raise
        return {"ok": True, "result": result}

    def _dispatch_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        queries = request.get("queries")
        if not isinstance(queries, list):
            raise RequestError("batch needs a 'queries' array")
        if len(queries) > MAX_BATCH:
            raise RequestError(
                f"batch of {len(queries)} exceeds the "
                f"{MAX_BATCH}-query limit"
            )
        parsed: List[Tuple[int, Optional[int]]] = []
        for item in queries:
            if not isinstance(item, dict):
                raise RequestError("each batch query must be an object")
            parsed.append(
                (parse_ip(item.get("ip")), parse_day(item.get("day")))
            )
        self._count("batch")
        self._count("batch_queries", len(parsed))

        by_slot: Dict[int, List[Tuple[int, int, Optional[int]]]] = {}
        for position, (ip, day) in enumerate(parsed):
            shard_id = self.partition.shard_of(ip)
            by_slot.setdefault(shard_id, []).append((position, ip, day))

        results: List[Optional[Dict[str, Any]]] = [None] * len(parsed)

        def fetch(shard_id: int, items) -> None:
            slot = self._slots[shard_id]
            sub = [
                {"ip": ip, "day": day} if day is not None else {"ip": ip}
                for _, ip, day in items
            ]
            try:
                verdicts = slot.call({"op": "batch", "queries": sub})
                if (
                    not isinstance(verdicts, list)
                    or len(verdicts) != len(items)
                ):
                    raise ShardUnavailable(
                        shard_id, "malformed shard batch reply"
                    )
            except (ShardUnavailable, ServiceError):
                self._count("degraded", len(items))
                for position, ip, day in items:
                    results[position] = {
                        "ip": int_to_ip(ip),
                        "day": day,
                        "error": SHARD_UNAVAILABLE,
                        "shard": shard_id,
                    }
                return
            for (position, _, _), verdict in zip(items, verdicts):
                results[position] = verdict

        shard_ids = list(by_slot)
        if len(shard_ids) == 1:
            fetch(shard_ids[0], by_slot[shard_ids[0]])
        else:
            threads = [
                threading.Thread(
                    target=fetch, args=(shard_id, by_slot[shard_id])
                )
                for shard_id in shard_ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return {"ok": True, "result": results}

    # -- fleet views ---------------------------------------------------

    def _gather(self, op: str) -> List[Optional[Any]]:
        """One ``op`` per shard (active backend), None where down."""
        replies: List[Optional[Any]] = [None] * len(self._slots)

        def fetch(position: int, slot: ShardSlot) -> None:
            try:
                replies[position] = slot.call({"op": op})
            except (ShardUnavailable, ServiceError):
                replies[position] = None

        threads = [
            threading.Thread(target=fetch, args=(i, slot))
            for i, slot in enumerate(self._slots)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return replies

    def _fleet_summary(
        self, hellos: List[Optional[Dict[str, Any]]]
    ) -> Dict[str, Any]:
        epochs = [h["epoch"] for h in hellos if h is not None]
        seqs = [h["seq"] for h in hellos if h is not None]
        return {
            "shards": len(self._slots),
            "backends": sum(len(s.backends) for s in self._slots),
            "healthy_backends": sum(
                s.healthy_count() for s in self._slots
            ),
            "shards_up": sum(1 for h in hellos if h is not None),
            "epoch_min": min(epochs) if epochs else 0,
            "epoch_max": max(epochs) if epochs else 0,
            "seq_min": min(seqs) if seqs else 0,
            "seq_max": max(seqs) if seqs else 0,
        }

    def hello(self) -> Dict[str, Any]:
        """The merged handshake. Top-level ``epoch``/``seq`` report the
        fleet *minimum* — the only freshness a cross-shard consumer may
        assume — while the ``cluster`` block exposes the spread."""
        hellos = self._gather("hello")
        summary = self._fleet_summary(hellos)
        streaming = any(
            h.get("streaming", False) for h in hellos if h is not None
        )
        return {
            "service": "repro-reputation",
            "protocol": PROTOCOL_VERSION,
            "streaming": streaming,
            "epoch": summary["epoch_min"],
            "seq": summary["seq_min"],
            "cluster": summary,
        }

    def stats(self) -> Dict[str, Any]:
        """Merged fleet stats: per-shard payloads plus cluster rollup."""
        shard_stats = self._gather("stats")
        hellos = self._gather("hello")
        summary = self._fleet_summary(hellos)
        index_totals = {"ips": 0, "intervals": 0, "nated_ips": 0,
                        "dynamic_prefixes": 0, "ases": 0}
        lists = 0
        for payload in shard_stats:
            if not payload:
                continue
            sizes = payload.get("index", {})
            for key in index_totals:
                index_totals[key] += sizes.get(key, 0)
            lists = max(lists, sizes.get("lists", 0))
        index_totals["lists"] = lists
        with self._lock:
            router_counters = dict(self._counters)
        router_counters["failovers"] = sum(
            slot.failovers for slot in self._slots
        )
        return {
            "cluster": summary,
            "router": router_counters,
            "partition": self.partition.to_wire(),
            "index": index_totals,
            "shards": [
                {
                    "shard": slot.shard_id,
                    "range": self.partition.range_of(
                        slot.shard_id
                    ).to_wire(),
                    "backends": [
                        {
                            "address": list(backend.address),
                            "healthy": backend.healthy,
                        }
                        for backend in slot.backends
                    ],
                    "stats": shard_stats[slot.shard_id],
                }
                for slot in self._slots
            ],
        }
