"""One cluster shard: a reputation server over a slice of the index.

A shard is the existing service stack, restricted:
:meth:`~repro.service.index.ReputationIndex.restrict` projects the
full index onto the shard's range, and (in streaming mode) a
:class:`~repro.stream.follower.LogFollower` tails the *shared* update
log with a range filter — every shard sees every batch (keeping epoch
numbers in lockstep across the cluster) but applies only the deltas it
owns, so epochs roll shard-by-shard without any global pause.

Two hosting modes:

* :class:`ShardServer` runs the shard in-process on daemon threads —
  what the tests, benchmarks and replicas-in-one-process use;
* :class:`ShardProcess` forks a worker process around a
  :class:`ShardServer` (one index slice per process, the CLI's mode),
  reporting its bound address back through a pipe.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Optional, Tuple

from ..service.engine import QueryEngine
from ..service.index import ReputationIndex
from ..service.server import DEFAULT_CONNECTION_TIMEOUT, ReputationServer
from ..stream.delta import DeltaBatch
from ..stream.epoch import EpochIndex
from ..stream.follower import LogFollower
from .partition import ShardRange

__all__ = ["ShardProcess", "ShardServer", "filter_batch"]


def filter_batch(batch: DeltaBatch, shard_range: ShardRange) -> DeltaBatch:
    """The shard's view of one log batch: same seq/day, only the
    deltas whose address falls inside the range. An all-filtered batch
    still advances the shard's epoch — lockstep is the point."""
    kept = tuple(
        delta for delta in batch.deltas if shard_range.contains(delta.ip)
    )
    if len(kept) == len(batch.deltas):
        return batch
    return DeltaBatch(batch.seq, batch.day, kept)


class ShardServer:
    """One shard served from the current process.

    ``base`` must already be the shard's restricted index (and, when
    ``follow`` is given, rolled back to the log's start day — the same
    state a single-process ``serve --follow`` starts from, projected).
    """

    def __init__(
        self,
        base: ReputationIndex,
        shard_id: int,
        shard_range: ShardRange,
        *,
        follow: "Path | str | None" = None,
        start_day: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        poll_interval: float = 0.05,
    ) -> None:
        self.shard_id = shard_id
        self.shard_range = shard_range
        self._follower: Optional[LogFollower] = None
        if follow is not None:
            epochs = EpochIndex(base, day=start_day or 0)
            self._follower = LogFollower(
                follow,
                epochs,
                poll_interval=poll_interval,
                batch_filter=lambda batch: filter_batch(
                    batch, shard_range
                ),
            )
            engine_source: Any = epochs
        else:
            engine_source = base
        self.engine = QueryEngine(engine_source)
        self._server = ReputationServer(
            self.engine,
            host,
            port,
            connection_timeout=connection_timeout,
            streaming=follow is not None,
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.address

    def start(self) -> Tuple[str, int]:
        """Serve (and follow, in streaming mode) on daemon threads."""
        address = self._server.start()
        if self._follower is not None:
            self._follower.start()
        return address

    def stop(self) -> None:
        """Stop following and serving; severs live connections so the
        router sees the shard die, as a killed process would."""
        if self._follower is not None:
            self._follower.stop()
        self._server.shutdown()
        self._server.close_connections()

    def wait_for_seq(self, seq: int, timeout: float = 30.0) -> bool:
        """Block until the shard's applied seq reaches ``seq``."""
        if self._follower is None:
            return True
        return self._follower.wait_for_seq(seq, timeout=timeout)

    def applied_seq(self) -> int:
        """Last log sequence applied (0 when not following) — the
        catch-up target a freshly booted half-range shard must reach
        before a split cuts traffic over to it."""
        if self._follower is None:
            return 0
        return self._follower.epochs.current.seq

    def __enter__(self) -> "ShardServer":
        self.start()
        return self

    def __exit__(self, *_: Any) -> None:
        self.stop()


def _shard_process_main(
    pipe,
    base: ReputationIndex,
    shard_id: int,
    shard_range: ShardRange,
    follow: Optional[str],
    start_day: Optional[int],
    host: str,
    port: int,
    connection_timeout: float,
) -> None:
    """Entry point of a forked shard worker: serve until terminated."""
    # The parent terminates workers with SIGTERM; translate it into a
    # clean interpreter exit so daemon threads die with the process.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(0))
    shard = ShardServer(
        base,
        shard_id,
        shard_range,
        follow=follow,
        start_day=start_day,
        host=host,
        port=port,
        connection_timeout=connection_timeout,
    )
    shard.start()
    pipe.send(shard.address)
    pipe.close()
    stop = threading.Event()
    try:
        while not stop.is_set():
            stop.wait(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        shard.stop()


class ShardProcess:
    """A shard hosted in its own worker process (fork start method).

    The restricted index transfers to the child through fork's
    copy-on-write memory — no snapshot file, no pickling. ``start``
    blocks until the child reports its bound address, so the caller
    can hand a complete backend list to the router. ``kill`` is
    deliberately unceremonious (the failover path exists to absorb
    it); ``restart`` re-forks on the same port.
    """

    def __init__(
        self,
        base: ReputationIndex,
        shard_id: int,
        shard_range: ShardRange,
        *,
        follow: "Path | str | None" = None,
        start_day: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
    ) -> None:
        self.shard_id = shard_id
        self.shard_range = shard_range
        self._base = base
        self._follow = str(follow) if follow is not None else None
        self._start_day = start_day
        self._host = host
        self._port = port
        self._connection_timeout = connection_timeout
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._address: Optional[Tuple[str, int]] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("shard process not started")
        return self._address

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Fork the worker; returns its bound address."""
        if self._process is not None and self._process.is_alive():
            raise RuntimeError("shard process already running")
        context = multiprocessing.get_context("fork")
        parent_pipe, child_pipe = context.Pipe(duplex=False)
        # Single-controller lifecycle: start/kill/restart are driven
        # by one thread (LocalCluster / the CLI), never concurrently.
        self._process = context.Process(
            target=_shard_process_main,
            args=(
                child_pipe,
                self._base,
                self.shard_id,
                self.shard_range,
                self._follow,
                self._start_day,
                self._host,
                self._port,
                self._connection_timeout,
            ),
            name=f"repro-shard-{self.shard_id}",
            daemon=True,
        )
        self._process.start()
        child_pipe.close()
        if not parent_pipe.poll(timeout):
            self.kill()
            raise RuntimeError(
                f"shard {self.shard_id} did not report an address "
                f"within {timeout}s"
            )
        self._address = tuple(parent_pipe.recv())
        parent_pipe.close()
        # Re-forks must land on the same port so the router's backend
        # table stays valid across a kill/restart.
        self._port = self._address[1]
        return self._address

    def kill(self) -> None:
        """Terminate the worker immediately (idempotent)."""
        if self._process is not None:
            self._process.terminate()
            self._process.join(timeout=10.0)
            self._process = None

    def restart(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Kill (if alive) and re-fork on the same port."""
        self.kill()
        return self.start(timeout=timeout)

    def _hello_seq(self) -> Optional[int]:
        """The worker's applied seq via its own wire protocol, or
        ``None`` when it cannot be reached — the only view the parent
        has into a forked shard's streaming progress."""
        from ..service.client import ReputationClient, TransportError

        try:
            with ReputationClient(
                *self.address, timeout=self._connection_timeout
            ) as client:
                seq = client.hello().get("seq", 0)
                return seq if isinstance(seq, int) else 0
        except (TransportError, OSError):
            return None

    def applied_seq(self) -> int:
        """Last log sequence the worker applied (0 when unreachable
        or not following)."""
        return self._hello_seq() or 0

    def wait_for_seq(self, seq: int, timeout: float = 30.0) -> bool:
        """Poll the worker until its applied seq reaches ``seq``."""
        if self._follow is None:
            return True
        deadline = time.monotonic() + timeout
        while True:
            applied = self._hello_seq()
            if applied is not None and applied >= seq:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)

    def __enter__(self) -> "ShardProcess":
        self.start()
        return self

    def __exit__(self, *_: Any) -> None:
        self.kill()
