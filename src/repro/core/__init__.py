"""The paper's primary contribution: reused-address impact analysis."""

from .reuse import ReuseAnalysis
from .overlap import OverlapCurves, compute_overlap
from .impact import (
    DurationStats,
    PerListCounts,
    UserImpactStats,
    duration_stats,
    per_list_counts,
    user_impact_stats,
)
from .funnel import DetectionFunnel, compute_funnel
from .greylist import (
    BlockAction,
    GreylistEntry,
    build_greylist,
    recommend_action,
    render_greylist,
)
from .mitigation import (
    POLICY_BLOCK_ALL,
    POLICY_GREYLIST_REUSED,
    POLICY_IGNORE_LISTS,
    PolicyOutcome,
    TrafficModel,
    evaluate_policy,
)
from .userimpact import AddressImpact, UserDaysReport, compute_user_days
from .asreport import AsReuseProfile, per_as_profiles, render_as_report
from .windows import WindowStats, per_window_stats, render_window_report
from .report import PAPER_VALUES, HeadlineReport, build_report

__all__ = [
    "ReuseAnalysis",
    "OverlapCurves",
    "compute_overlap",
    "DurationStats",
    "PerListCounts",
    "UserImpactStats",
    "duration_stats",
    "per_list_counts",
    "user_impact_stats",
    "DetectionFunnel",
    "compute_funnel",
    "BlockAction",
    "GreylistEntry",
    "build_greylist",
    "recommend_action",
    "render_greylist",
    "PAPER_VALUES",
    "HeadlineReport",
    "build_report",
    "POLICY_BLOCK_ALL",
    "POLICY_GREYLIST_REUSED",
    "POLICY_IGNORE_LISTS",
    "PolicyOutcome",
    "TrafficModel",
    "evaluate_policy",
    "AddressImpact",
    "UserDaysReport",
    "compute_user_days",
    "AsReuseProfile",
    "per_as_profiles",
    "render_as_report",
    "WindowStats",
    "per_window_stats",
    "render_window_report",
]
