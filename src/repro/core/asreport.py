"""Per-AS reuse profiles (the paper's Section 4 AS discussion).

The paper singles out the most-blocklisted ASes — AS4134 (China
Telecom Backbone) originates 9% of all listed addresses, of which 3%
run BitTorrent and 0.4% sit in RIPE prefixes. This module produces
that table for any analysis: per-AS counts of blocklisted, NATed,
dynamic and BitTorrent-visible addresses, for operators deciding where
blocklist-driven filtering will misfire most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.tables import render_table
from .reuse import ReuseAnalysis

__all__ = ["AsReuseProfile", "per_as_profiles", "render_as_report"]


@dataclass(frozen=True)
class AsReuseProfile:
    """Reuse statistics of one autonomous system."""

    asn: int
    name: str
    blocklisted: int
    bittorrent: int
    nated: int
    dynamic: int

    def reused(self) -> int:
        """Blocklisted reused addresses in this AS."""
        return self.nated + self.dynamic

    def reuse_share(self) -> float:
        """Fraction of the AS's blocklisted addresses that are reused —
        the collateral-damage risk of blocking this AS's listings."""
        if not self.blocklisted:
            return 0.0
        return self.reused() / self.blocklisted


def per_as_profiles(
    analysis: ReuseAnalysis, *, top: Optional[int] = None
) -> List[AsReuseProfile]:
    """Profiles for every AS with blocklisted addresses, ordered by
    descending blocklisted count (``top`` truncates)."""
    counters = {}
    for ip in analysis.blocklisted_ips:
        asn = analysis.asn_of(ip)
        entry = counters.setdefault(asn, [0, 0, 0, 0])
        entry[0] += 1
        if ip in analysis.bittorrent_ips:
            entry[1] += 1
        if ip in analysis.nated_blocklisted:
            entry[2] += 1
        if ip in analysis.dynamic_blocklisted:
            entry[3] += 1
    profiles = []
    for asn, (blocklisted, bittorrent, nated, dynamic) in counters.items():
        record = analysis.asdb.get(asn)
        profiles.append(
            AsReuseProfile(
                asn=asn,
                name=record.name if record else "unrouted",
                blocklisted=blocklisted,
                bittorrent=bittorrent,
                nated=nated,
                dynamic=dynamic,
            )
        )
    profiles.sort(key=lambda p: (-p.blocklisted, p.asn))
    return profiles[:top] if top else profiles


def render_as_report(
    analysis: ReuseAnalysis, *, top: int = 10
) -> str:
    """The top-N AS table, AS4134-style."""
    profiles = per_as_profiles(analysis, top=top)
    total = len(analysis.blocklisted_ips)
    rows = [
        (
            f"AS{p.asn}",
            p.name,
            p.blocklisted,
            f"{p.blocklisted / total:.1%}" if total else "0%",
            p.bittorrent,
            p.nated,
            p.dynamic,
            f"{p.reuse_share():.1%}",
        )
        for p in profiles
    ]
    return render_table(
        ["AS", "name", "listed", "share", "BT", "NATed", "dynamic",
         "reuse share"],
        rows,
        title=f"Top-{top} most-blocklisted ASes and their reuse profile",
    )
