"""The detection funnel (paper Figure 4).

Upper half (BitTorrent): discovered IPs → NATed IPs → NATed and
blocklisted. Lower half (RIPE): blocklisted addresses in any probe
prefix → in same-AS probe prefixes → in frequently-changing probe
prefixes → in daily-changing probe prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from ..net.prefixtrie import PrefixSet
from .reuse import ReuseAnalysis

__all__ = ["DetectionFunnel", "compute_funnel"]


@dataclass
class DetectionFunnel:
    """All eight boxes of Figure 4."""

    bittorrent_ips: int
    nated_ips: int
    nated_blocklisted: int
    blocklisted_in_ripe_prefixes: int
    blocklisted_same_as: int
    blocklisted_frequent: int
    blocklisted_daily: int
    allocation_knee: int

    def as_dict(self) -> Dict[str, int]:
        """Flat mapping for reports."""
        return {
            "bittorrent_ips": self.bittorrent_ips,
            "nated_ips": self.nated_ips,
            "nated_blocklisted": self.nated_blocklisted,
            "blocklisted_in_ripe_prefixes": self.blocklisted_in_ripe_prefixes,
            "blocklisted_same_as": self.blocklisted_same_as,
            "blocklisted_frequent": self.blocklisted_frequent,
            "blocklisted_daily": self.blocklisted_daily,
            "allocation_knee": self.allocation_knee,
        }

    def monotone(self) -> bool:
        """Each stage must shrink (or hold) — a sanity invariant."""
        return (
            self.bittorrent_ips >= self.nated_ips >= self.nated_blocklisted
            and self.blocklisted_in_ripe_prefixes
            >= self.blocklisted_same_as
            >= self.blocklisted_frequent
            >= self.blocklisted_daily
        )


def compute_funnel(analysis: ReuseAnalysis) -> DetectionFunnel:
    """Evaluate every funnel stage against the blocklisted set."""
    pipeline = analysis.pipeline

    def blocklisted_within(prefixes) -> int:
        space = PrefixSet(iter(prefixes))
        return sum(
            1 for ip in analysis.blocklisted_ips if space.contains_ip(ip)
        )

    return DetectionFunnel(
        bittorrent_ips=len(analysis.bittorrent_ips),
        nated_ips=len(analysis.nated_ips),
        nated_blocklisted=len(analysis.nated_blocklisted),
        blocklisted_in_ripe_prefixes=len(
            analysis.blocklisted_in_ripe_prefixes()
        ),
        blocklisted_same_as=blocklisted_within(
            pipeline.stage_prefixes(pipeline.same_as_probes)
        ),
        blocklisted_frequent=blocklisted_within(
            pipeline.stage_prefixes(pipeline.frequent_probes)
        ),
        blocklisted_daily=blocklisted_within(pipeline.dynamic_prefixes),
        allocation_knee=pipeline.allocation_knee,
    )
