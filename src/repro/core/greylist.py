"""Greylist export — the paper's operator-facing deliverable.

Section 6: the authors publish their reused-address list so operators
can *greylist* instead of hard-blocking (as Spamassassin/Spamd do for
spam), and so blocklist maintainers can annotate reused entries. This
module produces that artefact, with per-address annotations (reuse
kind, detected user count, /24 prefix) and a policy helper that says
what to do with a packet given the blocklist type in use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..net.ipv4 import int_to_ip, slash24_of
from .reuse import ReuseAnalysis

__all__ = [
    "GreylistEntry",
    "build_greylist",
    "render_greylist",
    "BlockAction",
    "recommend_action",
]


@dataclass(frozen=True)
class GreylistEntry:
    """One reused blocklisted address with its evidence."""

    ip: int
    reuse_kind: str  # "nat", "dynamic" or "nat+dynamic"
    detected_users: int
    covering_prefix: str


class BlockAction:
    """What an operator should do with traffic from a listed address."""

    BLOCK = "block"
    GREYLIST = "greylist"
    #: Not listed at query time — the online service's third verdict.
    IGNORE = "ignore"

    ALL = (BLOCK, GREYLIST)


def build_greylist(analysis: ReuseAnalysis) -> List[GreylistEntry]:
    """All blocklisted reused addresses, annotated, address-ordered."""
    entries: List[GreylistEntry] = []
    for ip in sorted(analysis.reused_ips()):
        nated = ip in analysis.nated_blocklisted
        dynamic = ip in analysis.dynamic_blocklisted
        if nated and dynamic:
            kind = "nat+dynamic"
        elif nated:
            kind = "nat"
        else:
            kind = "dynamic"
        entries.append(
            GreylistEntry(
                ip=ip,
                reuse_kind=kind,
                detected_users=analysis.nat.users_behind(ip),
                covering_prefix=str(slash24_of(ip)),
            )
        )
    return entries


def render_greylist(entries: Sequence[GreylistEntry]) -> str:
    """The published file format: one annotated address per line."""
    lines = [
        "# reused blocklisted addresses — greylist, do not hard-block",
        "# ip kind users prefix",
    ]
    for entry in entries:
        lines.append(
            f"{int_to_ip(entry.ip)} {entry.reuse_kind} "
            f"{entry.detected_users} {entry.covering_prefix}"
        )
    return "\n".join(lines) + "\n"


def recommend_action(
    analysis: ReuseAnalysis, ip: int, *, blocklist_category: str
) -> str:
    """The Section 6 policy: DDoS lists warrant blocking even with
    collateral damage (rate matters more than precision); accuracy-
    sensitive lists (spam and the rest) should greylist reused
    addresses instead.

    Only ``analysis.is_reused`` is consulted, so any object honouring
    that contract works — the online service passes its compiled
    :class:`~repro.service.index.ReputationIndex` here, keeping one
    policy for the batch and serving paths."""
    if not analysis.is_reused(ip):
        return BlockAction.BLOCK
    if blocklist_category == "ddos":
        return BlockAction.BLOCK
    return BlockAction.GREYLIST
