"""Impact metrics: Figures 5–8 and the Section 5 statistics.

Everything here is a pure function of a :class:`ReuseAnalysis` —
per-blocklist reused-address counts, listing totals, top-10
concentration, removal-duration CDFs, and the users-behind-NAT
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.cdf import Ecdf, fraction_at_most
from .reuse import ReuseAnalysis

__all__ = [
    "PerListCounts",
    "per_list_counts",
    "DurationStats",
    "duration_stats",
    "UserImpactStats",
    "user_impact_stats",
]


@dataclass
class PerListCounts:
    """Sorted per-blocklist counts of reused addresses (Fig 5/6)."""

    kind: str  # "nated" or "dynamic"
    #: (list_id, count) sorted by descending count.
    counts: List[Tuple[str, int]]
    total_listings: int
    lists_with_none: int
    lists_with_any: int
    #: Share of listings carried by the ten biggest lists.
    top10_listing_share: float
    #: Mean reused addresses per list (paper: 501 NATed / 387 dynamic,
    #: computed over lists that carry any).
    mean_per_listing_list: float

    def fraction_of_lists_affected(self, total_lists: int) -> float:
        """Fraction of the whole catalog listing ≥1 reused address
        (paper: 60% NATed / 53% dynamic)."""
        if total_lists <= 0:
            raise ValueError("total_lists must be positive")
        return self.lists_with_any / total_lists


def per_list_counts(
    analysis: ReuseAnalysis, kind: str, *, all_list_ids: Sequence[str]
) -> PerListCounts:
    """Compute Figure 5 (kind='nated') or Figure 6 (kind='dynamic')."""
    if kind == "nated":
        per_list = analysis.nated_listings_per_list()
    elif kind == "dynamic":
        per_list = analysis.dynamic_listings_per_list()
    else:
        raise ValueError(f"kind must be nated/dynamic, got {kind!r}")
    full: Dict[str, int] = {list_id: 0 for list_id in all_list_ids}
    full.update(per_list)
    ordered = sorted(full.items(), key=lambda kv: (-kv[1], kv[0]))
    total = sum(full.values())
    with_any = sum(1 for _, c in ordered if c > 0)
    top10 = sum(c for _, c in ordered[:10])
    return PerListCounts(
        kind=kind,
        counts=ordered,
        total_listings=total,
        lists_with_none=len(full) - with_any,
        lists_with_any=with_any,
        top10_listing_share=top10 / total if total else 0.0,
        mean_per_listing_list=total / with_any if with_any else 0.0,
    )


@dataclass
class DurationStats:
    """Figure 7: how long addresses stay listed."""

    all_cdf: Optional[Ecdf]
    nated_cdf: Optional[Ecdf]
    dynamic_cdf: Optional[Ecdf]

    def medians(self) -> Dict[str, float]:
        """Median days listed per population (paper: 9 / 10 / 3)."""
        return {
            name: cdf.median()
            for name, cdf in self._cdfs()
            if cdf is not None
        }

    def removed_within(self, days: float) -> Dict[str, float]:
        """Fraction removed within ``days`` (paper at 2 days:
        42% all, 60% NATed, 77.5% dynamic)."""
        return {
            name: cdf.at(days)
            for name, cdf in self._cdfs()
            if cdf is not None
        }

    def max_days(self) -> Dict[str, float]:
        """Longest observed presence (paper: up to 44 days)."""
        return {
            name: cdf.max for name, cdf in self._cdfs() if cdf is not None
        }

    def _cdfs(self) -> List[Tuple[str, Optional[Ecdf]]]:
        return [
            ("all", self.all_cdf),
            ("nated", self.nated_cdf),
            ("dynamic", self.dynamic_cdf),
        ]


def duration_stats(analysis: ReuseAnalysis) -> DurationStats:
    """Compute the three Figure 7 duration CDFs."""

    def build(ips: Optional[Set[int]]) -> Optional[Ecdf]:
        samples = analysis.duration_samples(ips)
        return Ecdf(samples) if samples else None

    return DurationStats(
        all_cdf=build(None),
        nated_cdf=build(analysis.nated_blocklisted),
        dynamic_cdf=build(analysis.dynamic_blocklisted),
    )


@dataclass
class UserImpactStats:
    """Figure 8: users behind blocklisted NATed addresses."""

    cdf: Optional[Ecdf]
    samples: List[int]

    def fraction_exactly_two(self) -> float:
        """Share of NATed IPs where exactly two users were proven
        (paper: 68.5%)."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s == 2) / len(self.samples)

    def fraction_below_ten(self) -> float:
        """Share with fewer than ten detected users (paper: 97.8%)."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s < 10) / len(self.samples)

    def max_users(self) -> int:
        """Largest detected user count (paper: 78)."""
        return max(self.samples) if self.samples else 0


def user_impact_stats(analysis: ReuseAnalysis) -> UserImpactStats:
    """Compute Figure 8's distribution."""
    samples = analysis.users_behind_samples()
    return UserImpactStats(
        cdf=Ecdf(samples) if samples else None,
        samples=samples,
    )
