"""Mitigation policies and their measurable consequences (Section 6).

The paper argues operators should *greylist* reused addresses instead
of hard-blocking them (as Spamassassin/Spamd do for spam): a greylisted
sender is challenged (tempfail + retry, CAPTCHA, rate limit) rather
than dropped, so legitimate users behind a reused address get through
while most bulk abuse does not.

This module turns that argument into an experiment. Given the ground
truth and a listing store, it replays the collection windows under a
filtering policy and scores it:

* **unjust blocks** — connection attempts by legitimate users that the
  policy rejected;
* **abuse let through** — malicious attempts the policy accepted;
* greylisting's middle outcome — challenged traffic, which costs
  legitimate users friction but not access.

Policies:

* :data:`POLICY_BLOCK_ALL` — drop every listed address (what 59% of
  surveyed operators do);
* :data:`POLICY_GREYLIST_REUSED` — drop listed addresses unless they
  are known-reused, which get challenged instead (the paper's
  recommendation);
* :data:`POLICY_IGNORE_LISTS` — no filtering (baseline).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..blocklists.timeline import ListingStore, Window
from ..internet.groundtruth import GroundTruth
from .reuse import ReuseAnalysis

__all__ = [
    "POLICY_BLOCK_ALL",
    "POLICY_GREYLIST_REUSED",
    "POLICY_IGNORE_LISTS",
    "TrafficModel",
    "PolicyOutcome",
    "evaluate_policy",
]

POLICY_BLOCK_ALL = "block_all"
POLICY_GREYLIST_REUSED = "greylist_reused"
POLICY_IGNORE_LISTS = "ignore_lists"

_POLICIES = (POLICY_BLOCK_ALL, POLICY_GREYLIST_REUSED, POLICY_IGNORE_LISTS)


@dataclass
class TrafficModel:
    """How much traffic users generate towards the protected service."""

    #: Mean connection attempts per legitimate user per day.
    legit_attempts_per_user_day: float = 0.2
    #: Mean attempts per compromised user per active abuse day.
    abuse_attempts_per_user_day: float = 20.0
    #: Probability a *challenged* legitimate attempt completes anyway
    #: (retry/CAPTCHA solved). Abuse mostly fails challenges.
    legit_challenge_pass: float = 0.9
    abuse_challenge_pass: float = 0.05


@dataclass
class PolicyOutcome:
    """Scorecard of one policy over the collection windows."""

    policy: str
    legit_attempts: int = 0
    legit_blocked: int = 0
    legit_challenged: int = 0
    abuse_attempts: int = 0
    abuse_blocked: int = 0
    abuse_passed: int = 0

    def unjust_block_rate(self) -> float:
        """Fraction of legitimate attempts rejected outright."""
        if not self.legit_attempts:
            return 0.0
        return self.legit_blocked / self.legit_attempts

    def abuse_pass_rate(self) -> float:
        """Fraction of malicious attempts that got through."""
        if not self.abuse_attempts:
            return 0.0
        return self.abuse_passed / self.abuse_attempts


def _attempts(rng: random.Random, mean: float) -> int:
    """Poisson-ish attempt count via inverse-CDF on a small mean."""
    if mean <= 0:
        return 0
    # Knuth's method is fine for the small means used here.
    limit = pow(2.718281828459045, -mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def evaluate_policy(
    policy: str,
    truth: GroundTruth,
    analysis: ReuseAnalysis,
    rng: random.Random,
    *,
    traffic: Optional[TrafficModel] = None,
    sample_days: int = 8,
) -> PolicyOutcome:
    """Replay window traffic under ``policy`` and score it.

    Samples ``sample_days`` evenly across the collection windows; each
    sampled day, every user attached to a *blocklisted-that-day*
    address generates traffic, which the policy accepts, challenges or
    blocks. Only listed addresses matter: traffic from unlisted
    addresses is accepted under every policy and would only dilute the
    rates identically.
    """
    if policy not in _POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    traffic = traffic or TrafficModel()
    outcome = PolicyOutcome(policy)

    days: List[int] = []
    for start, end in analysis.windows:
        step = max(1, (end - start) // max(1, sample_days // len(analysis.windows)))
        days.extend(range(start, end + 1, step))

    observed = analysis.observed
    listed_by_day: Dict[int, Set[int]] = {}
    for day in days:
        listed: Set[int] = set()
        for list_id in observed.list_ids():
            listed |= observed.snapshot(list_id, day)
        listed_by_day[day] = listed

    for day in days:
        listed = listed_by_day[day]
        for line in truth.lines.values():
            ip = truth.ip_of_line(line.key, day + 0.5)
            if ip is None or ip not in listed:
                continue
            reused = analysis.is_reused(ip)
            for user in truth.users_of_line(line.key):
                if user.compromised:
                    n = _attempts(rng, traffic.abuse_attempts_per_user_day)
                    outcome.abuse_attempts += n
                    passed, blocked = _apply(
                        policy, reused, n, traffic.abuse_challenge_pass, rng
                    )
                    outcome.abuse_passed += passed
                    outcome.abuse_blocked += blocked
                else:
                    n = _attempts(rng, traffic.legit_attempts_per_user_day)
                    outcome.legit_attempts += n
                    passed, blocked = _apply(
                        policy, reused, n, traffic.legit_challenge_pass, rng
                    )
                    outcome.legit_blocked += blocked
                    if policy == POLICY_GREYLIST_REUSED and reused:
                        outcome.legit_challenged += n
    return outcome


def _apply(
    policy: str,
    reused: bool,
    attempts: int,
    challenge_pass: float,
    rng: random.Random,
):
    """Return (passed, blocked) for ``attempts`` from a listed address."""
    if attempts == 0:
        return 0, 0
    if policy == POLICY_IGNORE_LISTS:
        return attempts, 0
    if policy == POLICY_BLOCK_ALL:
        return 0, attempts
    # POLICY_GREYLIST_REUSED
    if not reused:
        return 0, attempts
    passed = sum(1 for _ in range(attempts) if rng.random() < challenge_pass)
    return passed, 0
