"""AS-level coverage analysis (paper Figure 3).

How much of the blocklisted address space do the two techniques reach?
The paper plots, per AS (ordered by how many blocklisted addresses it
originates), the cumulative fraction of blocklisted addresses, of
blocklisted addresses seen running BitTorrent, and of blocklisted
addresses inside RIPE probe prefixes — and reports the headline
coverage: BitTorrent present in 29.6% of blocklisted ASes, RIPE in
17.1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .reuse import ReuseAnalysis

__all__ = ["OverlapCurves", "compute_overlap"]


@dataclass
class OverlapCurves:
    """Figure 3's three cumulative curves plus the headline stats."""

    #: ASNs ordered by ascending blocklisted-address count.
    asn_order: List[int]
    #: Cumulative fraction per curve, aligned with :attr:`asn_order`.
    blocklisted: List[float]
    bittorrent: List[float]
    ripe: List[float]
    #: Number of ASes originating ≥1 blocklisted address.
    ases_with_blocklisted: int
    #: ... of those, ASes where BitTorrent users were seen.
    ases_with_bittorrent: int
    #: ... and ASes overlapping RIPE probe prefixes.
    ases_with_ripe: int
    #: Top-10 AS share of all blocklisted addresses (paper: 27.7%).
    top10_share: float

    def bittorrent_as_coverage(self) -> float:
        """Fraction of blocklisted ASes where BitTorrent is visible
        (paper: 29.6%)."""
        if not self.ases_with_blocklisted:
            return 0.0
        return self.ases_with_bittorrent / self.ases_with_blocklisted

    def ripe_as_coverage(self) -> float:
        """Fraction of blocklisted ASes covered by RIPE prefixes
        (paper: 17.1%)."""
        if not self.ases_with_blocklisted:
            return 0.0
        return self.ases_with_ripe / self.ases_with_blocklisted


def _cumulative(
    order: Sequence[int], counts: Dict[int, int]
) -> List[float]:
    total = sum(counts.values())
    out: List[float] = []
    acc = 0
    for asn in order:
        acc += counts.get(asn, 0)
        out.append(acc / total if total else 0.0)
    return out


def compute_overlap(analysis: ReuseAnalysis) -> OverlapCurves:
    """Build the Figure 3 curves from a reuse analysis."""
    per_as_blocklisted: Dict[int, int] = {}
    per_as_bt: Dict[int, int] = {}
    per_as_ripe: Dict[int, int] = {}
    bt_ips = analysis.bittorrent_ips
    ripe_blocklisted = analysis.blocklisted_in_ripe_prefixes()
    for ip in analysis.blocklisted_ips:
        asn = analysis.asn_of(ip)
        per_as_blocklisted[asn] = per_as_blocklisted.get(asn, 0) + 1
        if ip in bt_ips:
            per_as_bt[asn] = per_as_bt.get(asn, 0) + 1
        if ip in ripe_blocklisted:
            per_as_ripe[asn] = per_as_ripe.get(asn, 0) + 1

    order = sorted(per_as_blocklisted, key=per_as_blocklisted.__getitem__)
    top10 = sorted(per_as_blocklisted.values(), reverse=True)[:10]
    total_blocklisted = sum(per_as_blocklisted.values())
    return OverlapCurves(
        asn_order=order,
        blocklisted=_cumulative(order, per_as_blocklisted),
        bittorrent=_cumulative(order, per_as_bt),
        ripe=_cumulative(order, per_as_ripe),
        ases_with_blocklisted=len(per_as_blocklisted),
        ases_with_bittorrent=len(per_as_bt),
        ases_with_ripe=len(per_as_ripe),
        top10_share=(
            sum(top10) / total_blocklisted if total_blocklisted else 0.0
        ),
    )
