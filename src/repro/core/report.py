"""Headline report: the paper's abstract/conclusion numbers, paper
value against measured value, for EXPERIMENTS.md and the CLI."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import render_comparison
from .funnel import DetectionFunnel, compute_funnel
from .impact import (
    DurationStats,
    PerListCounts,
    UserImpactStats,
    duration_stats,
    per_list_counts,
    user_impact_stats,
)
from .overlap import OverlapCurves, compute_overlap
from .reuse import ReuseAnalysis

__all__ = ["HeadlineReport", "build_report"]

#: The paper's published values for the quantities we reproduce.
PAPER_VALUES: Dict[str, object] = {
    "pct_lists_with_nated": 60.0,
    "pct_lists_with_dynamic": 53.0,
    "nated_listings": 45_100,
    "dynamic_listings": 30_600,
    "nated_blocklisted_ips": 29_700,
    "dynamic_blocklisted_ips": 22_700,
    "max_users_behind_nat": 78,
    "max_days_listed": 44,
    "pct_nated_exactly_two_users": 68.5,
    "pct_nated_under_ten_users": 97.8,
    "top10_nated_listing_share": 65.9,
    "top10_dynamic_listing_share": 72.6,
    "bt_as_coverage_pct": 29.6,
    "ripe_as_coverage_pct": 17.1,
    "allocation_knee": 8,
    "median_days_all": 9,
    "median_days_nated": 10,
    "median_days_dynamic": 3,
}


@dataclass
class HeadlineReport:
    """Every evaluation product in one bundle."""

    funnel: DetectionFunnel
    overlap: OverlapCurves
    nated_counts: PerListCounts
    dynamic_counts: PerListCounts
    durations: DurationStats
    users: UserImpactStats
    total_lists: int

    def measured(self) -> Dict[str, object]:
        """Measured values keyed like :data:`PAPER_VALUES`."""
        medians = self.durations.medians()
        max_days = self.durations.max_days()
        return {
            "pct_lists_with_nated": round(
                100.0
                * self.nated_counts.fraction_of_lists_affected(
                    self.total_lists
                ),
                1,
            ),
            "pct_lists_with_dynamic": round(
                100.0
                * self.dynamic_counts.fraction_of_lists_affected(
                    self.total_lists
                ),
                1,
            ),
            "nated_listings": self.nated_counts.total_listings,
            "dynamic_listings": self.dynamic_counts.total_listings,
            "nated_blocklisted_ips": self.funnel.nated_blocklisted,
            "dynamic_blocklisted_ips": self.funnel.blocklisted_daily,
            "max_users_behind_nat": self.users.max_users(),
            "max_days_listed": max(max_days.values()) if max_days else 0,
            "pct_nated_exactly_two_users": round(
                100.0 * self.users.fraction_exactly_two(), 1
            ),
            "pct_nated_under_ten_users": round(
                100.0 * self.users.fraction_below_ten(), 1
            ),
            "top10_nated_listing_share": round(
                100.0 * self.nated_counts.top10_listing_share, 1
            ),
            "top10_dynamic_listing_share": round(
                100.0 * self.dynamic_counts.top10_listing_share, 1
            ),
            "bt_as_coverage_pct": round(
                100.0 * self.overlap.bittorrent_as_coverage(), 1
            ),
            "ripe_as_coverage_pct": round(
                100.0 * self.overlap.ripe_as_coverage(), 1
            ),
            "allocation_knee": self.funnel.allocation_knee,
            "median_days_all": medians.get("all", 0),
            "median_days_nated": medians.get("nated", 0),
            "median_days_dynamic": medians.get("dynamic", 0),
        }

    def comparison_rows(self) -> List[Tuple[str, object, object]]:
        """(quantity, paper, measured) rows in a stable order."""
        measured = self.measured()
        return [
            (key, PAPER_VALUES[key], measured[key]) for key in PAPER_VALUES
        ]

    def render(self) -> str:
        """Printable paper-vs-measured block."""
        return render_comparison(
            self.comparison_rows(),
            title="Headline results — paper vs measured (scaled scenario)",
        )


def build_report(
    analysis: ReuseAnalysis, *, all_list_ids: Sequence[str]
) -> HeadlineReport:
    """Evaluate everything once."""
    return HeadlineReport(
        funnel=compute_funnel(analysis),
        overlap=compute_overlap(analysis),
        nated_counts=per_list_counts(
            analysis, "nated", all_list_ids=all_list_ids
        ),
        dynamic_counts=per_list_counts(
            analysis, "dynamic", all_list_ids=all_list_ids
        ),
        durations=duration_stats(analysis),
        users=user_impact_stats(analysis),
        total_lists=len(all_list_ids),
    )
