"""The paper's primary artefact: the reused-address analysis.

Joins the three measurement products — blocklist listings, the
BitTorrent crawler's NAT verdicts, and the RIPE pipeline's dynamic
prefixes — into one queryable object that every figure and table of
the evaluation reads from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..blocklists.timeline import ListingStore, Window
from ..natdetect.detector import NatDetectionResult
from ..net.asdb import ASDatabase
from ..net.ipv4 import Prefix, slash24_of
from ..net.prefixtrie import PrefixSet
from ..ripe.pipeline import PipelineResult

__all__ = ["ReuseAnalysis"]


class ReuseAnalysis:
    """Cross product of blocklists × NAT detection × dynamic detection.

    All address sets are computed once at construction; accessors are
    cheap. "Blocklisted" always means *observed during the collection
    windows*, matching the paper's measurement.
    """

    def __init__(
        self,
        listings: ListingStore,
        windows: Sequence[Window],
        nat: NatDetectionResult,
        pipeline: PipelineResult,
        asdb: ASDatabase,
        *,
        bittorrent_ips: Optional[Set[int]] = None,
    ) -> None:
        self.windows = list(windows)
        self.observed = listings.observed(self.windows)
        self.nat = nat
        self.pipeline = pipeline
        self.asdb = asdb

        #: Every address seen on any list during the windows.
        self.blocklisted_ips: Set[int] = self.observed.all_ips()
        #: Every address the crawler saw running BitTorrent.
        self.bittorrent_ips: Set[int] = (
            set(bittorrent_ips)
            if bittorrent_ips is not None
            else {v.ip for v in nat.verdicts.values()}
        )
        #: Crawler-confirmed NATed addresses.
        self.nated_ips: Set[int] = nat.nated_ips()
        #: NATed ∩ blocklisted — the unjust-blocking set for NAT reuse.
        self.nated_blocklisted: Set[int] = (
            self.nated_ips & self.blocklisted_ips
        )

        #: Dynamic /24 prefixes from the RIPE pipeline.
        self.dynamic_prefixes: Set[Prefix] = set(pipeline.dynamic_prefixes)
        self._dynamic_set = PrefixSet(iter(self.dynamic_prefixes))
        #: Blocklisted addresses inside detected dynamic prefixes.
        self.dynamic_blocklisted: Set[int] = {
            ip
            for ip in self.blocklisted_ips
            if self._dynamic_set.contains_ip(ip)
        }

        # Every /24 where any probe address lives ("RIPE prefixes").
        self._ripe_all_set = PrefixSet(iter(pipeline.all_ripe_prefixes()))

    # -- reused-address accessors ------------------------------------

    def reused_ips(self) -> Set[int]:
        """All blocklisted reused addresses (either reuse form)."""
        return self.nated_blocklisted | self.dynamic_blocklisted

    def is_reused(self, ip: int) -> bool:
        """True when ``ip`` is NATed or inside a dynamic prefix
        (whether blocklisted or not)."""
        return ip in self.nated_ips or self._dynamic_set.contains_ip(ip)

    def blocklisted_in_ripe_prefixes(self) -> Set[int]:
        """Blocklisted addresses inside *any* RIPE probe /24 (the
        53.7K starting point of Figure 4's lower funnel)."""
        return {
            ip
            for ip in self.blocklisted_ips
            if self._ripe_all_set.contains_ip(ip)
        }

    # -- per-blocklist listing counts -----------------------------------

    def nated_listings_per_list(self) -> Dict[str, int]:
        """Per-list count of NATed addresses listed (Figure 5)."""
        return self.observed.listing_count_per_list(
            self.windows, ips=self.nated_blocklisted
        )

    def dynamic_listings_per_list(self) -> Dict[str, int]:
        """Per-list count of dynamic addresses listed (Figure 6)."""
        return self.observed.listing_count_per_list(
            self.windows, ips=self.dynamic_blocklisted
        )

    def listings_per_list(self) -> Dict[str, int]:
        """Per-list count of all listed addresses."""
        return self.observed.listing_count_per_list(self.windows)

    def total_listings(self, ips: Set[int]) -> int:
        """Total listings (list × ip pairs) restricted to ``ips`` —
        the paper's "45.1K listings of NATed addresses" unit."""
        per_list = self.observed.listing_count_per_list(self.windows, ips=ips)
        return sum(per_list.values())

    # -- durations and users --------------------------------------------

    def duration_samples(self, ips: Optional[Set[int]] = None) -> List[int]:
        """Per-address longest continuous observed listing run in days
        (Figure 7 inputs), optionally restricted to ``ips``."""
        runs = self.observed.max_run_per_ip(self.windows)
        if ips is None:
            return sorted(runs.values())
        return sorted(run for ip, run in runs.items() if ip in ips)

    def users_behind_samples(self) -> List[int]:
        """Detected user lower bounds for blocklisted NATed addresses
        (Figure 8 inputs)."""
        return sorted(
            self.nat.users_behind(ip) for ip in self.nated_blocklisted
        )

    # -- reuse per AS ----------------------------------------------------

    def asn_of(self, ip: int) -> int:
        """Origin ASN of ``ip`` (0 when unrouted)."""
        return self.asdb.asn_of(ip) or 0
