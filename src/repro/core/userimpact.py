"""Unjust user-days: the end-user cost of blocklisting reused space.

The paper's abstract quantifies worst cases ("as many as 78 legitimate
users for as many as 44 days"). With ground truth we can integrate the
whole distribution instead of just its maximum:

* for a **NATed** listed address, every legitimate (non-compromised)
  user behind it is blocked for every day the address stays listed;
* for a **dynamic** listed address, whoever holds the address on a
  listed day is blocked that day — and once the abuser rotates away,
  every later holder is an innocent victim.

One *unjust user-day* = one legitimate user unable to reach
blocklist-protected services for one day.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..internet.groundtruth import GroundTruth, NAT_NONE
from .reuse import ReuseAnalysis

__all__ = ["AddressImpact", "UserDaysReport", "compute_user_days"]


@dataclass(frozen=True)
class AddressImpact:
    """Unjust blocking attributable to one listed reused address."""

    ip: int
    reuse_kind: str  # "nat" or "dynamic"
    listed_days: int
    innocent_users: int
    unjust_user_days: int


@dataclass
class UserDaysReport:
    """Aggregate unjust-blocking cost over the collection windows."""

    impacts: List[AddressImpact] = field(default_factory=list)

    def total_user_days(self) -> int:
        """Sum of unjust user-days across all reused listed addresses."""
        return sum(i.unjust_user_days for i in self.impacts)

    def total_affected_users(self) -> int:
        """Innocent users touched at least once."""
        return sum(i.innocent_users for i in self.impacts)

    def worst(self, n: int = 5) -> List[AddressImpact]:
        """The ``n`` most damaging addresses."""
        return sorted(
            self.impacts, key=lambda i: -i.unjust_user_days
        )[:n]

    def by_kind(self) -> Dict[str, int]:
        """Unjust user-days split by reuse mechanism."""
        out: Dict[str, int] = {"nat": 0, "dynamic": 0}
        for impact in self.impacts:
            out[impact.reuse_kind] = (
                out.get(impact.reuse_kind, 0) + impact.unjust_user_days
            )
        return out


def compute_user_days(
    truth: GroundTruth, analysis: ReuseAnalysis
) -> UserDaysReport:
    """Integrate unjust user-days over every listed reused address.

    Uses ground truth (who is really behind each address, who is really
    compromised), so this is the *actual* harm in the synthetic world —
    the quantity the paper's lower-bound measurements approximate.
    """
    report = UserDaysReport()
    observed = analysis.observed
    windows = analysis.windows

    # --- NATed addresses: static lines with several users -----------
    lines_by_ip: Dict[int, List] = {}
    for line in truth.lines.values():
        if line.static_ip is not None:
            lines_by_ip.setdefault(line.static_ip, []).append(line)

    for ip in sorted(analysis.nated_blocklisted):
        listed_days = _listed_days(observed, windows, ip)
        if not listed_days:
            continue
        innocents: Set[str] = set()
        for line in lines_by_ip.get(ip, ()):
            if line.nat == NAT_NONE:
                continue
            for user in truth.users_of_line(line.key):
                if not user.compromised:
                    innocents.add(user.key)
        if innocents:
            report.impacts.append(
                AddressImpact(
                    ip=ip,
                    reuse_kind="nat",
                    listed_days=len(listed_days),
                    innocent_users=len(innocents),
                    unjust_user_days=len(innocents) * len(listed_days),
                )
            )

    # --- dynamic addresses: whoever holds the address each day -------
    pools = list(truth.pools.values())
    for ip in sorted(analysis.dynamic_blocklisted - analysis.nated_blocklisted):
        listed_days = _listed_days(observed, windows, ip)
        if not listed_days:
            continue
        pool = next(
            (
                p
                for p in pools
                if any(ip in t.addresses() for t in p.timelines.values())
            ),
            None,
        )
        if pool is None:
            continue
        victims: Set[str] = set()
        user_days = 0
        for day in listed_days:
            line_key = pool.line_holding(ip, day + 0.5)
            if line_key is None:
                continue
            users = truth.users_of_line(line_key)
            day_innocents = [u for u in users if not u.compromised]
            user_days += len(day_innocents)
            victims.update(u.key for u in day_innocents)
        if victims:
            report.impacts.append(
                AddressImpact(
                    ip=ip,
                    reuse_kind="dynamic",
                    listed_days=len(listed_days),
                    innocent_users=len(victims),
                    unjust_user_days=user_days,
                )
            )
    return report


def _listed_days(observed, windows, ip: int) -> List[int]:
    """Days within the windows on which ``ip`` was listed anywhere."""
    days: Set[int] = set()
    for listing in observed.listings_of_ip(ip):
        for start, end in windows:
            lo = max(listing.first_day, start)
            hi = min(listing.last_day, end)
            days.update(range(lo, hi + 1))
    return sorted(days)
