"""Per-window breakdown of the measurement.

The paper collects over two windows (Aug–Sep 2019 and Mar–May 2020)
and reports pooled numbers. Operators reading the reproduction usually
want the split too — whether reuse was a one-off or persists across
campaigns months apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from ..analysis.tables import render_table
from ..blocklists.timeline import Window
from .reuse import ReuseAnalysis

__all__ = ["WindowStats", "per_window_stats", "render_window_report"]


@dataclass(frozen=True)
class WindowStats:
    """Counts observed within one collection window."""

    window: Window
    blocklisted: int
    nated: int
    dynamic: int
    lists_active: int

    @property
    def days(self) -> int:
        """Window length in days."""
        return self.window[1] - self.window[0] + 1


def per_window_stats(analysis: ReuseAnalysis) -> List[WindowStats]:
    """One :class:`WindowStats` per collection window, plus queries for
    the overlap between windows."""
    stats: List[WindowStats] = []
    for window in analysis.windows:
        observed = analysis.observed.observed([window])
        ips = observed.all_ips()
        stats.append(
            WindowStats(
                window=window,
                blocklisted=len(ips),
                nated=len(ips & analysis.nated_blocklisted),
                dynamic=len(ips & analysis.dynamic_blocklisted),
                lists_active=len(observed.list_ids()),
            )
        )
    return stats


def window_overlap(analysis: ReuseAnalysis) -> Dict[str, int]:
    """Addresses listed in *both* windows — the persistent offenders
    (and, when reused, the persistently unjustly-blocked)."""
    if len(analysis.windows) < 2:
        return {"blocklisted": 0, "reused": 0}
    sets: List[Set[int]] = []
    for window in analysis.windows:
        sets.append(analysis.observed.observed([window]).all_ips())
    both = set.intersection(*sets)
    return {
        "blocklisted": len(both),
        "reused": len(both & analysis.reused_ips()),
    }


def render_window_report(analysis: ReuseAnalysis) -> str:
    """Per-window table plus the cross-window persistence line."""
    stats = per_window_stats(analysis)
    rows = [
        (
            f"days {s.window[0]}-{s.window[1]} ({s.days}d)",
            s.blocklisted,
            s.nated,
            s.dynamic,
            s.lists_active,
        )
        for s in stats
    ]
    table = render_table(
        ["window", "blocklisted", "NATed", "dynamic", "active lists"],
        rows,
        title="Per collection window",
    )
    overlap = window_overlap(analysis)
    return (
        f"{table}\n"
        f"listed in both windows: {overlap['blocklisted']} addresses, "
        f"{overlap['reused']} of them reused"
    )
