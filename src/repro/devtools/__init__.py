"""Developer tooling: the ``reprolint`` static-analysis gate.

``repro lint`` (and ``scripts/lint_gate.py``) run two layers of
checks over the source tree:

* the per-module AST rules in :mod:`repro.devtools.rules` —
  determinism in simulation/load paths, bounded reads on the wire
  path, scoped resources, no silently-swallowed exceptions;
* the whole-program flow pass in :mod:`repro.devtools.flow` —
  interprocedural lock discipline (FLOW-LOCK), blocking calls
  reachable from reactor callbacks (FLOW-BLOCK), and binary
  wire-codec conformance (FLOW-WIRE).

See :mod:`repro.devtools.lint` for the framework (rule registry,
waivers + stale-waiver hygiene, baseline, phase timings).
"""

from .baseline import (
    BaselineError,
    compare,
    load_baseline,
    save_baseline,
    stale_entries,
)
from .lint import (
    FILE_WAIVER_WINDOW,
    LintModule,
    LintReport,
    ProgramContext,
    Rule,
    Violation,
    WaiverIssue,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_report,
    render_json,
    render_text,
    rule,
)

__all__ = [
    "BaselineError",
    "FILE_WAIVER_WINDOW",
    "LintModule",
    "LintReport",
    "ProgramContext",
    "Rule",
    "Violation",
    "WaiverIssue",
    "all_rules",
    "compare",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_report",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "save_baseline",
    "stale_entries",
]
