"""Developer tooling: the ``reprolint`` static-analysis gate.

``repro lint`` (and ``scripts/lint_gate.py``) run the AST-based
invariant checks in :mod:`repro.devtools.rules` over the source tree:
determinism in simulation paths, bounded reads on the wire path,
lock discipline in threaded serving code, scoped resources, and no
silently-swallowed exceptions. See :mod:`repro.devtools.lint` for the
framework (rule registry, waivers, baseline).
"""

from .baseline import (
    BaselineError,
    compare,
    load_baseline,
    save_baseline,
    stale_entries,
)
from .lint import (
    LintModule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    render_json,
    render_text,
    rule,
)

__all__ = [
    "BaselineError",
    "LintModule",
    "Rule",
    "Violation",
    "all_rules",
    "compare",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_text",
    "rule",
    "save_baseline",
    "stale_entries",
]
