"""Lint baseline: freeze today's findings, fail only on new ones.

Mirrors ``BENCH_baseline.json``'s role for the perf gate: the
committed ``LINT_baseline.json`` records the accepted violations (by
content fingerprint, so unrelated line drift doesn't invalidate it),
and the gate fails when the working tree has a violation the baseline
does not cover. Fixing a finding leaves a stale baseline entry behind
— harmless, and ``--update-baseline`` re-freezes the shrunken set.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence

from .lint import Violation

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "compare",
    "load_baseline",
    "save_baseline",
]

BASELINE_VERSION = 1


class BaselineError(RuntimeError):
    """The baseline file is missing or malformed."""


def save_baseline(
    path: "Path | str", violations: Sequence[Violation]
) -> Path:
    """Write the accepted-violation set for ``violations``."""
    target = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "message": violation.message,
                "fingerprint": violation.fingerprint,
            }
            for violation in violations
        ],
    }
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_baseline(path: "Path | str") -> "Counter[str]":
    """The baseline's fingerprint multiset (same finding twice on two
    lines of one file needs two entries to stay covered)."""
    target = Path(path)
    try:
        raw = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(
            f"lint baseline not found: {target} "
            f"(create it with 'repro lint --update-baseline')"
        ) from None
    except ValueError as exc:
        raise BaselineError(
            f"lint baseline {target} is not valid JSON: {exc}"
        ) from None
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"lint baseline {target} has unsupported version "
            f"{raw.get('version') if isinstance(raw, dict) else raw!r}"
        )
    rows = raw.get("violations")
    if not isinstance(rows, list):
        raise BaselineError(f"lint baseline {target} has no violations list")
    fingerprints: "Counter[str]" = Counter()
    for row in rows:
        if not isinstance(row, dict) or "fingerprint" not in row:
            raise BaselineError(
                f"lint baseline {target} has a malformed entry: {row!r}"
            )
        fingerprints[str(row["fingerprint"])] += 1
    return fingerprints


def compare(
    violations: Sequence[Violation], baseline: "Counter[str]"
) -> List[Violation]:
    """Violations not covered by the baseline (the gate's failures)."""
    budget = Counter(baseline)
    new: List[Violation] = []
    for violation in violations:
        if budget[violation.fingerprint] > 0:
            budget[violation.fingerprint] -= 1
        else:
            new.append(violation)
    return new


def stale_entries(
    violations: Sequence[Violation], baseline: "Counter[str]"
) -> int:
    """Baseline entries no current violation consumes (fixed findings
    whose entries can be dropped with ``--update-baseline``)."""
    current: Dict[str, int] = Counter(
        violation.fingerprint for violation in violations
    )
    return sum(
        max(0, count - current.get(fingerprint, 0))
        for fingerprint, count in baseline.items()
    )
