"""Whole-program flow analyses (the FLOW-* rule family).

Importing this package registers the program-scope rules with the
lint registry (mirroring how :mod:`repro.devtools.rules` registers
the per-module rules):

``FLOW-LOCK``
    Interprocedural lock-discipline inference (:mod:`.locks`) —
    replaces the retired single-function CONC heuristic.

``FLOW-BLOCK``
    Blocking calls reachable from reactor callbacks (:mod:`.reactor`).

``FLOW-WIRE``
    Binary wire-codec conformance (:mod:`.wirecheck`).

Shared infrastructure: :mod:`.symtab` (project symbol table) and
:mod:`.callgraph` (call/callback resolution), built once per run and
cached on the :class:`~repro.devtools.lint.ProgramContext`.
"""

from .callgraph import Resolver, get_resolver
from .locks import check_lock_flow
from .reactor import check_reactor_blocking
from .symtab import ClassInfo, FunctionInfo, Program, get_program
from .wirecheck import check_wire_conformance

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "Program",
    "Resolver",
    "check_lock_flow",
    "check_reactor_blocking",
    "check_wire_conformance",
    "get_program",
    "get_resolver",
]
