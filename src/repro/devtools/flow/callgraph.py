"""Call-graph resolution over the flow symbol table.

Turns call sites and callback expressions into
:class:`~repro.devtools.flow.symtab.FunctionInfo` targets:

* ``self.m(...)``               -> method of the enclosing class
* ``self.attr.m(...)``          -> method of the class ``attr`` was
                                   constructed with in ``__init__``
* ``x = ClassName(...); x.m()`` -> method via local construction
* ``name(...)``                 -> module function, imported project
                                   function, or class constructor
                                   (= its ``__init__``)
* annotated parameters          -> methods of the annotated class

Anything else resolves to ``None`` — unknown callees are dropped, not
guessed, so flow findings only ride edges the source actually shows.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..lint import ProgramContext
from .symtab import ClassInfo, FunctionInfo, Program, get_program

__all__ = ["Resolver", "get_resolver"]


class Resolver:
    """Shared call/callback resolution for the flow rules."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._local_types: Dict[int, Dict[str, ClassInfo]] = {}

    # -- local type inference -------------------------------------------

    def local_types(self, fn: FunctionInfo) -> Dict[str, ClassInfo]:
        """Variable -> class for ``x = ClassName(...)`` assignments
        and annotated parameters inside ``fn``."""
        cached = self._local_types.get(id(fn.node))
        if cached is not None:
            return cached
        types: Dict[str, ClassInfo] = {}
        for param, type_name in fn.param_types().items():
            cls = self.program.unique_class(type_name)
            if cls is not None:
                types[param] = cls
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            target_cls = self._class_of_call(fn, node.value)
            if target_cls is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types.setdefault(target.id, target_cls)
        self._local_types[id(fn.node)] = types
        return types

    def _class_of_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[ClassInfo]:
        dotted = fn.module.resolve_call(call)
        if dotted is None:
            return None
        resolved = self.program.resolve_name(
            fn.module, dotted.split(".")[0]
        )
        if isinstance(resolved, ClassInfo) and "." not in dotted:
            return resolved
        tail = dotted.split(".")[-1]
        if tail[:1].isupper():
            by_dotted = self.program.resolve_dotted(dotted)
            if isinstance(by_dotted, ClassInfo):
                return by_dotted
            return self.program.unique_class(tail)
        return None

    # -- callable expressions (callback registrations) ------------------

    def resolve_callable(
        self, fn: FunctionInfo, expr: ast.expr
    ) -> Optional[FunctionInfo]:
        """A callback *expression* (``self._tick``, a bare function
        name, ``functools.partial(self._m, x)``, or a lambda) -> the
        function it will invoke."""
        if isinstance(expr, ast.Lambda):
            return FunctionInfo(
                name="<lambda>",
                qualname=f"{fn.qualname}.<lambda>",
                node=expr,
                module=fn.module,
                owner=fn.owner,
            )
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...) registers f.
            dotted = fn.module.resolve_call(expr) or ""
            if dotted.split(".")[-1] == "partial" and expr.args:
                return self.resolve_callable(fn, expr.args[0])
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fn.owner is not None
            ):
                return fn.owner.methods.get(expr.attr)
            receiver = self._receiver_class(fn, expr.value)
            if receiver is not None:
                return receiver.methods.get(expr.attr)
            return None
        if isinstance(expr, ast.Name):
            # A closure defined in the registering function itself
            # (``def swap(): ...; reactor.run_sync(swap)``).
            for sub in ast.walk(fn.node):
                if (
                    isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and sub.name == expr.id
                    and sub is not fn.node
                ):
                    return FunctionInfo(
                        name=sub.name,
                        qualname=f"{fn.qualname}.{sub.name}",
                        node=sub,
                        module=fn.module,
                        owner=fn.owner,
                    )
            resolved = self.program.resolve_name(fn.module, expr.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            return None
        return None

    # -- call sites -----------------------------------------------------

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """The project function/method a call site lands on."""
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.program.resolve_name(fn.module, func.id)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, ClassInfo):
                return resolved.methods.get("__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = self._receiver_class(fn, func.value)
        if receiver is not None:
            return receiver.methods.get(func.attr)
        # mod.func(...) through an imported project module
        dotted = fn.module.resolve_call(call)
        if dotted is not None:
            resolved = self.program.resolve_dotted(dotted)
            if isinstance(resolved, FunctionInfo):
                return resolved
            if isinstance(resolved, ClassInfo):
                return resolved.methods.get("__init__")
        return None

    def _receiver_class(
        self, fn: FunctionInfo, value: ast.expr
    ) -> Optional[ClassInfo]:
        """The class of a method-call receiver expression."""
        if isinstance(value, ast.Name):
            if value.id == "self":
                return fn.owner
            return self.local_types(fn).get(value.id)
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and fn.owner is not None
        ):
            ctor = fn.owner.attr_ctors.get(value.attr)
            if ctor is not None:
                return self.program.unique_class(ctor)
        return None

    def callees(
        self, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.Call, FunctionInfo]]:
        """Resolved ``(call site, target)`` edges out of ``fn``."""
        body: Union[List[ast.stmt], ast.expr]
        if isinstance(fn.node, ast.Lambda):
            body = fn.node.body
            nodes = ast.walk(body)
        else:
            nodes = ast.walk(fn.node)
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(fn, node)
            if target is not None and target.node is not fn.node:
                yield node, target


def get_resolver(context: ProgramContext) -> Resolver:
    """The per-run :class:`Resolver`, built once and cached."""
    cached = context.cache.get("flow.resolver")
    if not isinstance(cached, Resolver):
        cached = Resolver(get_program(context))
        context.cache["flow.resolver"] = cached
    return cached
