"""FLOW-LOCK: interprocedural lock-discipline inference.

The retired single-function CONC heuristic could only see a write and
a ``with self._lock:`` in the *same* method; the bugs PRs 5–9 actually
hit were a call deep — a public method delegating to a private helper
that mutates shared state the rest of the class guards.  This pass:

1. infers the **guard set** per attribute: an attribute is guarded by
   ``self.L`` when at least one non-``__init__`` write to it happens
   inside ``with self.L:``;
2. walks the intra-class call graph from every **entry point** (public
   methods, plus any method the class hands out as a callback or
   thread target — those run later, lock-free) tracking the set of
   locks held across ``self.m()`` edges;
3. flags every write to a guarded attribute reached with no inferred
   guard held.

A class that guards nothing (loop-owned state, e.g. ``Reactor``) infers
no guards and stays silent — the pass only enforces the discipline a
class itself demonstrates.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Deque, Dict, FrozenSet, Iterator, List, Optional
from typing import Set, Tuple

from ..lint import LintModule, ProgramContext, Violation, rule
from ..rules import SERVING_DIRS
from .symtab import ClassInfo, get_program

__all__ = ["check_lock_flow"]

#: Constructors whose result is a guard (``with self.X:``-able).
_LOCK_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs(cls: ClassInfo) -> Set[str]:
    """Attributes that are locks: built by a threading constructor, or
    used as a ``with self.X:`` context anywhere in the class."""
    attrs: Set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                dotted = cls.module.resolve_call(node.value)
                if dotted in _LOCK_CTORS:
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            attrs.add(attr)
            elif isinstance(node, ast.With):
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and "lock" in attr.lower():
                        attrs.add(attr)
    return attrs


def _locks_at(
    module: LintModule,
    node: ast.AST,
    method_node: ast.AST,
    lock_attrs: Set[str],
) -> FrozenSet[str]:
    """Locks lexically held at ``node`` within its method."""
    held: Set[str] = set()
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                attr = _self_attr(item.context_expr)
                if attr in lock_attrs:
                    held.add(attr)  # type: ignore[arg-type]
        if ancestor is method_node:
            break
    return frozenset(held)


class _MethodEvents:
    """What one method does that the lock analysis cares about."""

    def __init__(self) -> None:
        #: (attr, write node, locks lexically held at the write)
        self.writes: List[Tuple[str, ast.stmt, FrozenSet[str]]] = []
        #: (callee method name, locks lexically held at the call)
        self.calls: List[Tuple[str, FrozenSet[str]]] = []
        #: methods referenced as values (callbacks, thread targets)
        self.refs: Set[str] = set()


def _collect_events(
    module: LintModule, cls: ClassInfo, lock_attrs: Set[str]
) -> Dict[str, _MethodEvents]:
    events: Dict[str, _MethodEvents] = {}
    for name, method in cls.methods.items():
        ev = _MethodEvents()
        events[name] = ev
        for node in ast.walk(method.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None or attr in lock_attrs:
                        continue
                    ev.writes.append(
                        (
                            attr,
                            node,
                            _locks_at(
                                module, node, method.node, lock_attrs
                            ),
                        )
                    )
            elif isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is None or attr not in cls.methods:
                    continue
                parent = module.parent(node)
                if isinstance(parent, ast.Call) and parent.func is node:
                    ev.calls.append(
                        (
                            attr,
                            _locks_at(
                                module, node, method.node, lock_attrs
                            ),
                        )
                    )
                else:
                    # self.m handed out as a value: it will be invoked
                    # later (callback, Thread target) with no lock held.
                    ev.refs.add(attr)
    return events


def _check_class(
    module: LintModule, cls: ClassInfo
) -> Iterator[Violation]:
    lock_attrs = _lock_attrs(cls)
    if not lock_attrs:
        return
    events = _collect_events(module, cls, lock_attrs)

    # Guard inference: one locked non-__init__ write = the class says
    # this attribute is lock-protected.
    guards: Dict[str, Set[str]] = {}
    for name, ev in events.items():
        if name == "__init__":
            continue
        for attr, _node, held in ev.writes:
            if held:
                guards.setdefault(attr, set()).update(held)
    if not guards:
        return

    entries: Set[str] = {
        name
        for name in cls.methods
        if not name.startswith("_") and name != "__init__"
    }
    for ev in events.values():
        entries.update(ev.refs)
    entries.discard("__init__")

    # BFS over (method, locks held on entry) with path tracking.
    flagged: Dict[int, Tuple[str, ast.stmt, str, Tuple[str, ...]]] = {}
    queue: Deque[Tuple[str, FrozenSet[str], Tuple[str, ...]]] = deque()
    seen: Set[Tuple[str, FrozenSet[str]]] = set()
    for entry in sorted(entries):
        if entry not in events:
            continue
        state = (entry, frozenset())
        if state not in seen:
            seen.add(state)
            queue.append((entry, frozenset(), (entry,)))
    while queue:
        method, held, path = queue.popleft()
        ev = events[method]
        if method != "__init__":
            for attr, node, site_locks in ev.writes:
                effective = held | site_locks
                guard = guards.get(attr)
                if guard and not (guard & effective):
                    flagged.setdefault(
                        id(node), (attr, node, method, path)
                    )
        for callee, site_locks in ev.calls:
            if callee == "__init__" or callee not in events:
                continue
            state = (callee, held | site_locks)
            if state not in seen:
                seen.add(state)
                queue.append(
                    (callee, held | site_locks, path + (callee,))
                )

    for attr, node, method, path in sorted(
        flagged.values(), key=lambda item: item[1].lineno
    ):
        guard_names = ", ".join(
            f"self.{name}" for name in sorted(guards[attr])
        )
        route = " -> ".join(path)
        yield module.violation(
            "FLOW-LOCK",
            node,
            f"unlocked write to self.{attr} in {cls.name}.{method} — "
            f"other writes hold {guard_names}, but this one is "
            f"reachable lock-free via {cls.name}.{route}",
        )


@rule(
    "FLOW-LOCK",
    severity="error",
    scope="program",
    summary=(
        "attributes a threaded class guards with self.*lock* must not "
        "be written on any lock-free path from a public entry point "
        "(interprocedural)"
    ),
    example=(
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.hits = 0\n"
        "    def record(self):        # public entry\n"
        "        self._bump()\n"
        "    def _bump(self):\n"
        "        self.hits += 1       # FLOW-LOCK: lock-free path\n"
        "    def reset(self):\n"
        "        with self._lock:\n"
        "            self.hits = 0    # ...but guarded here\n"
    ),
)
def check_lock_flow(context: ProgramContext) -> Iterator[Violation]:
    """For every ``threading``-importing class in a serving module,
    infer the guard set per attribute (an attribute is guarded when at
    least one non-``__init__`` write sits under ``with self.*lock*``),
    then walk every path from a public entry point through the
    class-local call graph tracking the set of locks held. A write to
    a guarded attribute on a path where its guard is not held is
    flagged once per write site, with the lock-free route in the
    message. Classes with no lock attribute at all are skipped — a
    deliberately lock-free design is not a discipline violation."""
    program = get_program(context)
    for cls in program.all_classes():
        module = cls.module
        if not module.in_dirs(*SERVING_DIRS):
            continue
        if not module.imports("threading"):
            continue
        yield from _check_class(module, cls)
