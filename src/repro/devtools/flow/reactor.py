"""FLOW-BLOCK: blocking calls reachable from reactor callbacks.

The serving plane is a single-threaded event loop
(:mod:`repro.service.aio`): one ``time.sleep``, blocking connect, or
synchronous file read inside any function the loop can call stalls
every connection at once.  This pass collects the **reactor roots** —
callbacks handed to ``call_soon``/``call_later``/``run_sync``,
selector ``register``/``modify`` callbacks, ``conn.callback = ...``
assignments, and the handler a ``WireServer`` is constructed with —
then walks the call graph from each root and flags blocking
operations on any reachable path:

* ``time.sleep``
* ``socket.create_connection`` and ``.connect()``/``.accept()`` on a
  socket-ish receiver with no ``setblocking(False)`` in sight (module
  scope) — ``connect_ex`` on a non-blocking socket is the sanctioned
  loop-side idiom
* file I/O (``open`` and friends, ``Path.read_text``/``write_text``)
* ``subprocess.*``

Blocking work that stays off-loop (heartbeat threads, drain helpers)
is not reachable from any root and is never flagged.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Set, Tuple

from ..lint import LintModule, ProgramContext, Violation, rule
from ..rules import SERVING_DIRS
from .callgraph import Resolver, get_resolver
from .symtab import FunctionInfo, Program, get_program

__all__ = ["check_reactor_blocking"]

#: Methods whose arguments are loop-thread callbacks.
_REGISTRARS = {
    "call_soon": 0,
    "run_sync": 0,
    "call_later": 1,
    "register": 2,
    "modify": 2,
}

#: Dotted call targets that always block.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the loop thread",
    "socket.create_connection": (
        "socket.create_connection() is a blocking connect"
    ),
    "open": "open() is synchronous file I/O",
    "gzip.open": "gzip.open() is synchronous file I/O",
    "bz2.open": "bz2.open() is synchronous file I/O",
    "lzma.open": "lzma.open() is synchronous file I/O",
    "os.fdopen": "os.fdopen() is synchronous file I/O",
}

#: Attribute calls that are synchronous file I/O wherever they land.
_BLOCKING_ATTRS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
}


def _function_index(program: Program) -> Dict[int, FunctionInfo]:
    """ast node id -> FunctionInfo for every indexed def."""
    index: Dict[int, FunctionInfo] = {}
    for definitions in program.functions.values():
        for info in definitions:
            index[id(info.node)] = info
    for cls in program.all_classes():
        for info in cls.methods.values():
            index[id(info.node)] = info
    return index


def _enclosing_info(
    module: LintModule,
    node: ast.AST,
    index: Dict[int, FunctionInfo],
) -> Optional[FunctionInfo]:
    for ancestor in module.ancestors(node):
        info = index.get(id(ancestor))
        if info is not None:
            return info
    return None


def _callback_roots(
    module: LintModule,
    resolver: Resolver,
    index: Dict[int, FunctionInfo],
) -> Iterator[Tuple[FunctionInfo, str]]:
    """(callback function, registration label) pairs in one module."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield from _call_roots(module, resolver, index, node)
        elif isinstance(node, ast.Assign):
            # conn.callback = <callable> is how the selector wires
            # per-connection event handlers.
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "callback"
                ):
                    site = _enclosing_info(module, node, index)
                    if site is None:
                        continue
                    callback = resolver.resolve_callable(
                        site, node.value
                    )
                    if callback is not None:
                        yield callback, (
                            f"callback assigned in {site.qualname}"
                        )


def _call_roots(
    module: LintModule,
    resolver: Resolver,
    index: Dict[int, FunctionInfo],
    call: ast.Call,
) -> Iterator[Tuple[FunctionInfo, str]]:
    site = _enclosing_info(module, call, index)
    if site is None:
        return
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _REGISTRARS:
        position = _REGISTRARS[func.attr]
        candidates: List[ast.expr] = list(call.args[position:])
        candidates.extend(
            kw.value
            for kw in call.keywords
            if kw.arg in ("callback", "fn")
        )
        for expr in candidates:
            callback = resolver.resolve_callable(site, expr)
            if callback is not None:
                yield callback, (
                    f"{func.attr}() in {site.qualname}"
                )
        return
    # WireServer(handler, ...) — the handler runs on the loop thread
    # for every request.
    dotted = module.resolve_call(call)
    if dotted is not None and dotted.split(".")[-1] == "WireServer":
        handlers: List[ast.expr] = list(call.args[:1])
        handlers.extend(
            kw.value for kw in call.keywords if kw.arg == "handler"
        )
        for expr in handlers:
            callback = resolver.resolve_callable(site, expr)
            if callback is not None:
                yield callback, (
                    f"WireServer handler in {site.qualname}"
                )


def _nonblocking_receivers(module: LintModule) -> Set[str]:
    """Dotted receivers with a ``setblocking(False)`` call anywhere in
    the module (the loop sets sockets up once, then uses them from
    many callbacks — the escape must be module-wide)."""
    receivers: Set[str] = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "setblocking"
        ):
            dotted = module.dotted_name(node.func.value)
            if dotted is not None:
                receivers.add(dotted)
    return receivers


def _blocking_calls(
    fn: FunctionInfo, nonblocking: Set[str]
) -> Iterator[Tuple[ast.Call, str]]:
    node = fn.node
    walker = (
        ast.walk(node.body)
        if isinstance(node, ast.Lambda)
        else ast.walk(node)
    )
    for sub in walker:
        if not isinstance(sub, ast.Call):
            continue
        dotted = fn.module.resolve_call(sub)
        if dotted is not None:
            reason = _BLOCKING_CALLS.get(dotted)
            if reason is None and dotted.split(".")[0] == "subprocess":
                reason = f"{dotted}() runs a blocking subprocess"
            if reason is not None:
                yield sub, reason
                continue
        func = sub.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _BLOCKING_ATTRS:
            yield sub, f".{func.attr}() is synchronous file I/O"
            continue
        if func.attr in ("connect", "accept"):
            receiver = fn.module.dotted_name(func.value) or ""
            lowered = receiver.lower()
            if not any(
                hint in lowered
                for hint in ("sock", "listener", "conn")
            ):
                continue
            if receiver in nonblocking:
                continue
            yield sub, (
                f"{receiver}.{func.attr}() without setblocking(False) "
                f"blocks the loop"
            )


@rule(
    "FLOW-BLOCK",
    severity="error",
    scope="program",
    summary=(
        "no blocking operations (time.sleep, blocking socket ops, "
        "file I/O, subprocess) on any path reachable from a reactor "
        "callback"
    ),
    example=(
        "class Sweeper:\n"
        "    def start(self):\n"
        "        self.reactor.call_later(5.0, self._sweep)\n"
        "    def _sweep(self):\n"
        "        time.sleep(0.1)   # FLOW-BLOCK: stalls every\n"
        "                          # connection on the loop\n"
    ),
)
def check_reactor_blocking(
    context: ProgramContext,
) -> Iterator[Violation]:
    """Collect every callable handed to a reactor registration point
    (``call_soon``/``call_later``/``run_sync``/``register``/
    ``modify``, ``*.callback =`` assignments, ``WireServer(handler)``)
    and BFS the call graph from each. Any reached function that calls
    a known blocking operation — ``time.sleep``, blocking socket
    connect/accept, file I/O, ``subprocess`` — is flagged with the
    registration site and the call path. Sockets a module switches to
    non-blocking via ``setblocking(False)`` on the same dotted
    receiver are exempt."""
    program = get_program(context)
    resolver = get_resolver(context)
    index = _function_index(program)

    queue: Deque[Tuple[FunctionInfo, str, Tuple[str, ...]]] = deque()
    visited: Set[int] = set()
    for module in program.modules:
        if not module.in_dirs(*SERVING_DIRS):
            continue
        for callback, label in _callback_roots(
            module, resolver, index
        ):
            if id(callback.node) not in visited:
                visited.add(id(callback.node))
                queue.append((callback, label, (callback.name,)))

    nonblocking: Dict[str, Set[str]] = {}
    reported: Set[int] = set()
    while queue:
        fn, label, path = queue.popleft()
        escapes = nonblocking.get(fn.module.relpath)
        if escapes is None:
            escapes = _nonblocking_receivers(fn.module)
            nonblocking[fn.module.relpath] = escapes
        for call, reason in _blocking_calls(fn, escapes):
            if id(call) in reported:
                continue
            reported.add(id(call))
            route = " -> ".join(path)
            yield fn.module.violation(
                "FLOW-BLOCK",
                call,
                f"{reason} — reachable from a reactor callback "
                f"({label}; path {route})",
            )
        for _site, target in resolver.callees(fn):
            if id(target.node) not in visited:
                visited.add(id(target.node))
                queue.append((target, label, path + (target.name,)))
