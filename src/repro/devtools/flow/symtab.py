"""Project-wide symbol table for the flow pass.

The per-module rules in :mod:`repro.devtools.rules` see one file at a
time; the flow analyses (lock discipline, reactor blocking, wire
conformance) need to know *what a name is* across the whole of
``src/repro``: which class a ``self.attr`` holds, which module a
``from .wire import encode_binary_frame`` lands in, which methods a
class defines.  This module builds that table once per lint run —
stdlib ``ast`` only, shared between the three flow rules through
:class:`~repro.devtools.lint.ProgramContext.cache`.

Resolution is deliberately name-based and conservative: a symbol that
cannot be resolved to exactly one definition resolves to nothing, so
ambiguity degrades to silence, never to a false finding.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Union

from ..lint import LintModule, ProgramContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "Program",
    "get_program",
]


@dataclasses.dataclass
class FunctionInfo:
    """One function/method/lambda the call graph can land on."""

    name: str
    qualname: str  # "<relpath>::Class.method" — stable display name
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    module: LintModule
    owner: Optional["ClassInfo"] = None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def param_types(self) -> Dict[str, str]:
        """Parameter name -> annotated class name (bare names only)."""
        types: Dict[str, str] = {}
        args = getattr(self.node, "args", None)
        if args is None:
            return types
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            annotation = arg.annotation
            if isinstance(annotation, ast.Name):
                types[arg.arg] = annotation.id
            elif isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                types[arg.arg] = annotation.value.split(".")[-1]
            elif isinstance(annotation, ast.Attribute):
                types[arg.arg] = annotation.attr
        return types


@dataclasses.dataclass
class ClassInfo:
    """One class: its methods plus what its attributes hold."""

    name: str
    node: ast.ClassDef
    module: LintModule
    methods: Dict[str, FunctionInfo] = dataclasses.field(
        default_factory=dict
    )
    #: ``self.<attr> = <Ctor>(...)`` — attr name -> constructor's bare
    #: class name (resolved lazily against the program's class table).
    attr_ctors: Dict[str, str] = dataclasses.field(default_factory=dict)


def _bare_callee(module: LintModule, call: ast.Call) -> Optional[str]:
    """Last dotted component of a call target (``wire.Router`` ->
    ``Router``), import aliases resolved."""
    dotted = module.resolve_call(call)
    if dotted is None:
        return None
    return dotted.split(".")[-1]


class Program:
    """Symbol table over every module in one lint run."""

    def __init__(self, context: ProgramContext) -> None:
        self.context = context
        self.modules: List[LintModule] = context.modules
        #: class name -> definitions (several = ambiguous, unresolved)
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: module-level function name -> definitions
        self.functions: Dict[str, List[FunctionInfo]] = {}
        #: relpath -> {top-level symbol name -> Function/ClassInfo}
        self.module_symbols: Dict[
            str, Dict[str, Union[FunctionInfo, ClassInfo]]
        ] = {}
        for module in self.modules:
            self._index_module(module)

    # -- construction ---------------------------------------------------

    def _index_module(self, module: LintModule) -> None:
        symbols: Dict[str, Union[FunctionInfo, ClassInfo]] = {}
        for item in module.tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    name=item.name,
                    qualname=f"{module.relpath}::{item.name}",
                    node=item,
                    module=module,
                )
                symbols[item.name] = info
                self.functions.setdefault(item.name, []).append(info)
            elif isinstance(item, ast.ClassDef):
                cls = self._index_class(module, item)
                symbols[item.name] = cls
                self.classes.setdefault(item.name, []).append(cls)
        self.module_symbols[module.relpath] = symbols

    def _index_class(
        self, module: LintModule, node: ast.ClassDef
    ) -> ClassInfo:
        cls = ClassInfo(name=node.name, node=node, module=module)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = FunctionInfo(
                    name=item.name,
                    qualname=(
                        f"{module.relpath}::{node.name}.{item.name}"
                    ),
                    node=item,
                    module=module,
                    owner=cls,
                )
        # self.<attr> = Ctor(...) anywhere in the class tells the call
        # graph what methods self.<attr>.m() can land on.
        for method in cls.methods.values():
            for sub in ast.walk(method.node):
                if not isinstance(sub, ast.Assign):
                    continue
                if not isinstance(sub.value, ast.Call):
                    continue
                callee = _bare_callee(module, sub.value)
                if callee is None or not callee[:1].isupper():
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attr_ctors.setdefault(target.attr, callee)
        return cls

    # -- lookups --------------------------------------------------------

    def all_classes(self) -> Iterator[ClassInfo]:
        for definitions in self.classes.values():
            yield from definitions

    def unique_class(self, name: str) -> Optional[ClassInfo]:
        definitions = self.classes.get(name, [])
        return definitions[0] if len(definitions) == 1 else None

    def unique_function(self, name: str) -> Optional[FunctionInfo]:
        definitions = self.functions.get(name, [])
        return definitions[0] if len(definitions) == 1 else None

    def resolve_name(
        self, module: LintModule, name: str
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """A bare name used in ``module``: same-module symbol first,
        then the import table, then a unique project-wide match."""
        symbol = self.module_symbols.get(module.relpath, {}).get(name)
        if symbol is not None:
            return symbol
        canonical = module.import_aliases.get(name)
        if canonical is not None:
            resolved = self.resolve_dotted(canonical)
            if resolved is not None:
                return resolved
            # Fall back on the symbol's own name: relative imports
            # canonicalise without the package root, so the dotted
            # module path may not match any indexed relpath.
            tail = canonical.split(".")[-1]
            return self.unique_function(tail) or self.unique_class(tail)
        return None

    def resolve_dotted(
        self, dotted: str
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """``pkg.module.symbol`` -> the definition, when the module
        suffix matches exactly one indexed file."""
        parts = dotted.split(".")
        if len(parts) < 2:
            return (
                self.unique_function(dotted) or self.unique_class(dotted)
            )
        symbol, module_parts = parts[-1], parts[:-1]
        suffix = "/".join(module_parts) + ".py"
        matches = [
            relpath
            for relpath in self.module_symbols
            if relpath == suffix or relpath.endswith("/" + suffix)
        ]
        if len(matches) != 1:
            return None
        return self.module_symbols[matches[0]].get(symbol)


def get_program(context: ProgramContext) -> Program:
    """The per-run :class:`Program`, built once and cached."""
    cached = context.cache.get("flow.program")
    if not isinstance(cached, Program):
        cached = Program(context)
        context.cache["flow.program"] = cached
    return cached
