"""FLOW-WIRE: static conformance of the binary wire codec.

The codec in :mod:`repro.service.wire` is a set of hand-maintained
inverses: every ``Struct.pack`` has an ``unpack`` twin, every v4
record format has a v6 twin one ``I``-to-``16s`` substitution away,
every ``FT_*`` frame tag an encoder emits needs a decoder branch, and
the hand-written ``_need``/``pos +=`` cursor arithmetic must agree
with ``Struct.size`` byte for byte.  One-byte drift produces torn
frames that only fail under load — so this pass checks the pairings
statically, across modules:

* module-level ``NAME = struct.Struct("fmt")`` formats must compile;
* ``NAME.pack(...)`` argument counts and ``a, b, c = NAME.unpack…``
  target counts must equal the format's field count;
* literal ``_need(buf, pos, N)`` guards and ``pos += N`` advances
  adjacent to ``NAME.unpack_from(buf, pos)`` must equal ``NAME.size``;
* a ``NAME6`` twin of ``NAME`` must be the same format with exactly
  one ``I`` widened to ``16s`` (the 128-bit address field);
* every ``FT_*`` tag passed to an encoder must appear in a decoder
  comparison somewhere in the serving modules.

Scope: serving dirs only (``service/``, ``cluster/``, ``stream/``) —
the modules that speak the wire protocol.
"""

from __future__ import annotations

import ast
import dataclasses
import struct
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import LintModule, ProgramContext, Violation, rule
from ..rules import SERVING_DIRS

__all__ = ["check_wire_conformance"]


@dataclasses.dataclass
class _StructConst:
    """One module-level ``NAME = struct.Struct("fmt")`` constant."""

    name: str
    fmt: str
    node: ast.AST
    module: LintModule
    size: int
    fields: int


def _literal_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _fmt_shape(fmt: str) -> Optional[Tuple[int, int]]:
    """(size, field count) for a format string, None when invalid."""
    try:
        size = struct.calcsize(fmt)
        fields = len(struct.unpack(fmt, b"\x00" * size))
    except struct.error:
        return None
    return size, fields


def _collect_consts(
    module: LintModule,
) -> Tuple[Dict[str, _StructConst], List[Violation]]:
    consts: Dict[str, _StructConst] = {}
    bad: List[Violation] = []
    for item in module.tree.body:
        if not isinstance(item, ast.Assign):
            continue
        if not isinstance(item.value, ast.Call):
            continue
        if module.resolve_call(item.value) != "struct.Struct":
            continue
        if not item.value.args:
            continue
        fmt = _literal_str(item.value.args[0])
        if fmt is None:
            continue
        for target in item.targets:
            if not isinstance(target, ast.Name):
                continue
            shape = _fmt_shape(fmt)
            if shape is None:
                bad.append(
                    module.violation(
                        "FLOW-WIRE",
                        item,
                        f"{target.id} = struct.Struct({fmt!r}) does "
                        f"not compile — invalid format string",
                    )
                )
                continue
            consts[target.id] = _StructConst(
                target.id, fmt, item, module, shape[0], shape[1]
            )
    return consts, bad


def _paired_struct_issues(
    consts: Dict[str, _StructConst]
) -> Iterator[Violation]:
    """A ``NAME6`` twin must be ``NAME`` with one ``I`` -> ``16s``."""
    for name6, const6 in consts.items():
        if "6" not in name6:
            continue
        for position, char in enumerate(name6):
            if char != "6":
                continue
            base_name = name6[:position] + name6[position + 1 :]
            base = consts.get(base_name)
            if base is None:
                continue
            widened = [
                base.fmt[:i] + "16s" + base.fmt[i + 1 :]
                for i, c in enumerate(base.fmt)
                if c == "I"
            ]
            if const6.fmt not in widened:
                yield const6.module.violation(
                    "FLOW-WIRE",
                    const6.node,
                    f"{name6} ({const6.fmt!r}) is not {base_name} "
                    f"({base.fmt!r}) with one 'I' widened to '16s' — "
                    f"the v4/v6 record layouts have drifted",
                )
            break


def _receiver_const(
    func: ast.Attribute,
    local: Dict[str, _StructConst],
    global_by_name: Dict[str, List[_StructConst]],
) -> Optional[_StructConst]:
    if isinstance(func.value, ast.Name):
        name = func.value.id
    elif isinstance(func.value, ast.Attribute):
        name = func.value.attr
    else:
        return None
    const = local.get(name)
    if const is not None:
        return const
    candidates = global_by_name.get(name, [])
    return candidates[0] if len(candidates) == 1 else None


def _tuple_target_count(
    module: LintModule, call: ast.Call
) -> Optional[int]:
    """How many names the unpack result is destructured into, when
    that is statically clear (single tuple target, no starred)."""
    parent = module.parent(call)
    target: Optional[ast.expr] = None
    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
        target = parent.targets[0]
    elif isinstance(parent, ast.For) and parent.iter is call:
        target = parent.target
    if isinstance(target, ast.Tuple) and not any(
        isinstance(elt, ast.Starred) for elt in target.elts
    ):
        return len(target.elts)
    return None


def _offset_name(call: ast.Call) -> Optional[str]:
    """The cursor variable of ``X.unpack_from(buf, pos)``."""
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Name):
        return call.args[1].id
    return None


def _int_literal(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _cursor_issues(
    module: LintModule,
    block: List[ast.stmt],
    index: int,
    call: ast.Call,
    const: _StructConst,
) -> Iterator[Violation]:
    """Literal ``_need``/``pos +=`` arithmetic around one
    ``unpack_from`` must match the struct's size."""
    offset = _offset_name(call)
    if offset is None:
        return
    # pos += N after the unpack
    for stmt in block[index + 1 : index + 3]:
        if (
            isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, ast.Add)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == offset
        ):
            advance = _int_literal(stmt.value)
            if advance is not None and advance != const.size:
                yield module.violation(
                    "FLOW-WIRE",
                    stmt,
                    f"cursor advances {advance} byte(s) after "
                    f"{const.name}.unpack_from but {const.name}.size "
                    f"is {const.size} — the decoder walks off the "
                    f"record boundary",
                )
            break
    # _need(buf, pos, N) before the unpack
    for stmt in block[max(0, index - 2) : index]:
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
        ):
            continue
        guard = stmt.value
        name = module.dotted_name(guard.func) or ""
        if name.split(".")[-1] != "_need" or len(guard.args) < 3:
            continue
        if not (
            isinstance(guard.args[1], ast.Name)
            and guard.args[1].id == offset
        ):
            continue
        needed = _int_literal(guard.args[2])
        if needed is not None and needed != const.size:
            yield module.violation(
                "FLOW-WIRE",
                stmt,
                f"_need() guards {needed} byte(s) before "
                f"{const.name}.unpack_from but {const.name}.size is "
                f"{const.size} — a short frame passes the guard and "
                f"tears the decode",
            )


def _iter_blocks(tree: ast.AST) -> Iterator[List[ast.stmt]]:
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block:
                yield block


def _ft_operands(node: ast.expr) -> Iterator[str]:
    candidates = (
        node.elts if isinstance(node, (ast.Tuple, ast.List)) else [node]
    )
    for candidate in candidates:
        name: Optional[str] = None
        if isinstance(candidate, ast.Name):
            name = candidate.id
        elif isinstance(candidate, ast.Attribute):
            name = candidate.attr
        if name is not None and name.startswith("FT_"):
            yield name


@rule(
    "FLOW-WIRE",
    severity="error",
    scope="program",
    summary=(
        "struct pack/unpack field counts, _need/pos cursor widths, "
        "v4/v6 format twins, and FT_* encoder/decoder coverage must "
        "agree across the wire modules"
    ),
    example=(
        "REC = struct.Struct('>IBi')     # size 9\n"
        "_need(payload, pos, 9)\n"
        "ip, has_day, day = REC.unpack_from(payload, pos)\n"
        "pos += 8   # FLOW-WIRE: advances 8 bytes over a 9-byte record\n"
    ),
)
def check_wire_conformance(
    context: ProgramContext,
) -> Iterator[Violation]:
    """Cross-check the binary codec against itself across all wire
    modules: every module-level ``struct.Struct`` constant's field
    count must match its ``pack`` argument lists and ``unpack`` tuple
    destructurings; literal ``_need(buf, pos, N)`` guards and
    ``pos += N`` cursor advances adjacent to an ``unpack_from`` must
    equal the struct's ``.size``; a ``NAME6`` constant must be
    ``NAME`` with exactly one ``I`` widened to ``16s`` (the v4/v6
    twin convention); and every ``FT_*`` tag passed to an encoder
    must be compared against by some decoder."""
    wire_modules = [
        module
        for module in context.modules
        if module.in_dirs(*SERVING_DIRS)
    ]
    consts_by_module: Dict[str, Dict[str, _StructConst]] = {}
    global_by_name: Dict[str, List[_StructConst]] = {}
    for module in wire_modules:
        consts, bad = _collect_consts(module)
        consts_by_module[module.relpath] = consts
        yield from bad
        yield from _paired_struct_issues(consts)
        for const in consts.values():
            global_by_name.setdefault(const.name, []).append(const)

    encoded: Dict[str, Tuple[LintModule, ast.Call]] = {}
    compared: Set[str] = set()

    for module in wire_modules:
        local = consts_by_module[module.relpath]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                for operand in [node.left] + list(node.comparators):
                    compared.update(_ft_operands(operand))
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # FT_* tags handed to an encoder
            callee = (module.dotted_name(func) or "").split(".")[-1]
            if "encode" in callee:
                for arg in node.args:
                    for tag in _ft_operands(arg):
                        encoded.setdefault(tag, (module, node))
            if not isinstance(func, ast.Attribute):
                # struct.pack('fmt', ...) / struct.unpack('fmt', ...)
                continue
            if func.attr == "pack" or (
                func.attr in ("unpack", "unpack_from", "iter_unpack")
            ):
                dotted = module.resolve_call(node) or ""
                if dotted in (
                    "struct.pack",
                    "struct.unpack",
                    "struct.unpack_from",
                ):
                    yield from _inline_struct_issues(module, node)
                    continue
                const = _receiver_const(func, local, global_by_name)
                if const is None:
                    continue
                yield from _const_call_issues(module, node, func, const)

    # Cursor arithmetic needs statement adjacency, not just call sites.
    for module in wire_modules:
        local = consts_by_module[module.relpath]
        for block in _iter_blocks(module.tree):
            for index, stmt in enumerate(block):
                for sub in ast.walk(stmt):
                    if not (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "unpack_from"
                    ):
                        continue
                    const = _receiver_const(
                        sub.func, local, global_by_name
                    )
                    if const is not None:
                        yield from _cursor_issues(
                            module, block, index, sub, const
                        )

    for tag, (module, site) in sorted(encoded.items()):
        if tag not in compared:
            yield module.violation(
                "FLOW-WIRE",
                site,
                f"{tag} is encoded here but no decoder in the serving "
                f"modules compares a frame type against {tag} — the "
                f"frame would be unparseable on arrival",
            )


def _const_call_issues(
    module: LintModule,
    node: ast.Call,
    func: ast.Attribute,
    const: _StructConst,
) -> Iterator[Violation]:
    if func.attr == "pack":
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return
        if node.keywords:
            return
        if len(node.args) != const.fields:
            yield module.violation(
                "FLOW-WIRE",
                node,
                f"{const.name}.pack() called with {len(node.args)} "
                f"value(s) but format {const.fmt!r} has "
                f"{const.fields} field(s)",
            )
        return
    count = _tuple_target_count(module, node)
    if count is not None and count != const.fields:
        yield module.violation(
            "FLOW-WIRE",
            node,
            f"{const.name}.{func.attr}() result is destructured into "
            f"{count} name(s) but format {const.fmt!r} has "
            f"{const.fields} field(s)",
        )


def _inline_struct_issues(
    module: LintModule, node: ast.Call
) -> Iterator[Violation]:
    if not node.args:
        return
    fmt = _literal_str(node.args[0])
    if fmt is None:
        return
    shape = _fmt_shape(fmt)
    if shape is None:
        yield module.violation(
            "FLOW-WIRE",
            node,
            f"struct format {fmt!r} does not compile — invalid "
            f"format string",
        )
        return
    func = node.func
    attr = func.attr if isinstance(func, ast.Attribute) else ""
    if attr == "pack":
        values = node.args[1:]
        if any(isinstance(arg, ast.Starred) for arg in values):
            return
        if len(values) != shape[1]:
            yield module.violation(
                "FLOW-WIRE",
                node,
                f"struct.pack({fmt!r}, ...) called with "
                f"{len(values)} value(s) but the format has "
                f"{shape[1]} field(s)",
            )
    else:
        count = _tuple_target_count(module, node)
        if count is not None and count != shape[1]:
            yield module.violation(
                "FLOW-WIRE",
                node,
                f"struct.{attr}({fmt!r}, ...) result is destructured "
                f"into {count} name(s) but the format has {shape[1]} "
                f"field(s)",
            )
