"""`reprolint` — the repo's AST-based invariant linter.

The reproduction's headline guarantees (bit-identical parallel runs,
lock-free epoch swaps, cluster/single-process equality) rest on
invariants no test can economically enforce file-by-file: simulation
code must draw time and randomness from injected ``sim.clock`` /
``sim.rng`` streams, wire-facing code must bound every read, and
threaded serving code must mutate shared state under a lock. This
module is the framework; :mod:`repro.devtools.rules` holds the rules
themselves.

Three pieces:

* a **rule registry** — each rule is a function over a parsed
  :class:`LintModule`, registered with :func:`rule` under a short code
  (``DET``, ``WIRE``, ...) and a severity;
* **waivers** — ``# reprolint: disable=CODE[,CODE]`` on (or on the
  comment line directly above) a violating line suppresses it, and
  ``# reprolint: disable-file=CODE`` near the top of a file waives the
  whole module: intentional exceptions are visible in the diff, not in
  reviewer memory;
* a **baseline** (:mod:`repro.devtools.baseline`) mirroring
  ``BENCH_baseline.json``: the gate fails on violations *new* since
  the committed ``LINT_baseline.json``, so the bar can be adopted
  before the last legacy finding is burned down.

Stdlib only — ``ast`` does the parsing; nothing here imports outside
the standard library, so the gate runs wherever the repo does.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "LintModule",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "rule",
]

#: Severities a rule may carry (order = display order).
SEVERITIES = ("error", "warning")

_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z0-9_,\s]+)"
)
_FILE_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*disable-file=([A-Z0-9_,\s]+)"
)
#: File-level waivers must appear in the first N lines.
_FILE_WAIVER_WINDOW = 12


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a source location."""

    rule: str
    severity: str
    path: str  # posix path relative to the lint root
    line: int
    col: int
    message: str
    #: The stripped source line — the baseline fingerprint ingredient,
    #: so findings survive unrelated line-number drift.
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (rule + file + code)."""
        basis = f"{self.rule}\x1f{self.path}\x1f{self.snippet}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_wire(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["fingerprint"] = self.fingerprint
        return data

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclasses.dataclass(frozen=True)
class Rule:
    """A registered invariant check."""

    code: str
    severity: str
    summary: str
    check: Callable[["LintModule"], Iterable[Violation]]


_REGISTRY: Dict[str, Rule] = {}


def rule(
    code: str, *, severity: str, summary: str
) -> Callable[
    [Callable[["LintModule"], Iterable[Violation]]],
    Callable[["LintModule"], Iterable[Violation]],
]:
    """Register ``check`` under ``code``; used as a decorator."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity: {severity!r}")

    def register(
        check: Callable[["LintModule"], Iterable[Violation]]
    ) -> Callable[["LintModule"], Iterable[Violation]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code: {code}")
        _REGISTRY[code] = Rule(code, severity, summary, check)
        return check

    return register


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, code-ordered (imports the rule set)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)

    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    all_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code: {code}") from None


class LintModule:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.parts = tuple(Path(relpath).parts)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._line_waivers = self._collect_line_waivers()
        self.file_waivers = self._collect_file_waivers()
        self.import_aliases = self._collect_import_aliases()

    # -- layout ---------------------------------------------------------

    def in_dirs(self, *names: str) -> bool:
        """True when any path segment (not the filename) matches."""
        return any(part in names for part in self.parts[:-1])

    def imports(self, module: str) -> bool:
        """True when the file imports ``module`` (any alias/form)."""
        return module in self.import_aliases.values() or any(
            canonical == module or canonical.startswith(module + ".")
            for canonical in self.import_aliases.values()
        )

    # -- AST helpers ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return ancestor
        return None

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for Name/Attribute chains, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """The canonical dotted target of ``call``, import-aliases
        resolved (``import time as t; t.time()`` → ``time.time``)."""
        dotted = self.dotted_name(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical = self.import_aliases.get(head)
        if canonical is not None:
            return canonical + ("." + rest if rest else "")
        return dotted

    def _collect_import_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = (
                        name.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for name in node.names:
                    aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}"
                    )
        return aliases

    # -- waivers --------------------------------------------------------

    def _collect_line_waivers(self) -> Dict[int, Set[str]]:
        waivers: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _WAIVER_RE.search(text)
            if not match:
                continue
            codes = {
                code.strip()
                for code in match.group(1).split(",")
                if code.strip()
            }
            waivers.setdefault(number, set()).update(codes)
            # A waiver on a pure comment line covers the next line,
            # so long justifications don't force long code lines.
            if text.lstrip().startswith("#"):
                waivers.setdefault(number + 1, set()).update(codes)
        return waivers

    def _collect_file_waivers(self) -> Set[str]:
        waived: Set[str] = set()
        for text in self.lines[:_FILE_WAIVER_WINDOW]:
            match = _FILE_WAIVER_RE.search(text)
            if match:
                waived.update(
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
        return waived

    def waived(self, line: int, code: str) -> bool:
        if code in self.file_waivers:
            return True
        return code in self._line_waivers.get(line, set())

    # -- violation factory ---------------------------------------------

    def violation(
        self, rule_code: str, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        return Violation(
            rule=rule_code,
            severity=_REGISTRY[rule_code].severity,
            path=self.relpath,
            line=line,
            col=col + 1,
            message=message,
            snippet=snippet,
        )


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    for path in sorted(target.rglob("*.py")):
        if any(part.startswith(".") for part in path.parts):
            continue
        yield path


def lint_file(
    path: Path,
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """All (un-waived) violations in one file."""
    active = tuple(rules) if rules is not None else all_rules()
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        module = LintModule(path, relpath, source)
    except SyntaxError as exc:
        return [
            Violation(
                rule="PARSE",
                severity="error",
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                snippet="",
            )
        ]
    found: List[Violation] = []
    for active_rule in active:
        for violation in active_rule.check(module):
            if not module.waived(violation.line, violation.rule):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def lint_paths(
    targets: Iterable[Path],
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint every ``.py`` file under ``targets`` (files or trees)."""
    active = tuple(rules) if rules is not None else all_rules()
    seen: Set[Path] = set()
    found: List[Violation] = []
    for target in targets:
        for path in _iter_python_files(Path(target)):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            found.extend(lint_file(path, root, active))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def render_text(violations: Sequence[Violation]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [violation.render() for violation in violations]
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    if violations:
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_rule.items())
        )
        lines.append(f"{len(violations)} violation(s) ({summary})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (what ``repro lint --json`` prints)."""
    return json.dumps(
        {
            "violations": [v.to_wire() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )
