"""`reprolint` — the repo's AST-based invariant linter.

The reproduction's headline guarantees (bit-identical parallel runs,
lock-free epoch swaps, cluster/single-process equality) rest on
invariants no test can economically enforce file-by-file: simulation
code must draw time and randomness from injected ``sim.clock`` /
``sim.rng`` streams, wire-facing code must bound every read, and
threaded serving code must mutate shared state under a lock. This
module is the framework; :mod:`repro.devtools.rules` holds the rules
themselves.

Three pieces:

* a **rule registry** — each rule is a function over a parsed
  :class:`LintModule`, registered with :func:`rule` under a short code
  (``DET``, ``WIRE``, ...) and a severity;
* **waivers** — ``# reprolint: disable=CODE[,CODE]`` on (or on the
  comment line directly above) a violating line suppresses it, and
  ``# reprolint: disable-file=CODE`` near the top of a file waives the
  whole module: intentional exceptions are visible in the diff, not in
  reviewer memory;
* a **baseline** (:mod:`repro.devtools.baseline`) mirroring
  ``BENCH_baseline.json``: the gate fails on violations *new* since
  the committed ``LINT_baseline.json``, so the bar can be adopted
  before the last legacy finding is burned down.

Stdlib only — ``ast`` does the parsing; nothing here imports outside
the standard library, so the gate runs wherever the repo does.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import io
import json
import re
import time
import tokenize
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "FILE_WAIVER_WINDOW",
    "LintModule",
    "LintReport",
    "ProgramContext",
    "Rule",
    "Violation",
    "WaiverIssue",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_report",
    "render_text",
    "render_json",
    "rule",
]

#: Severities a rule may carry (order = display order).
SEVERITIES = ("error", "warning")

#: Scopes a rule may run at: per parsed file, or once over the whole
#: module set (the flow pass — see :mod:`repro.devtools.flow`).
SCOPES = ("module", "program")

# Rule codes may be hyphenated (FLOW-LOCK, FLOW-BLOCK, FLOW-WIRE).
_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z0-9_\-,\s]+)"
)
_FILE_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*disable-file=([A-Z0-9_\-,\s]+)"
)
#: File-level waivers must appear in the first N lines.
FILE_WAIVER_WINDOW = 12


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding: a rule tripped at a source location."""

    rule: str
    severity: str
    path: str  # posix path relative to the lint root
    line: int
    col: int
    message: str
    #: The stripped source line — the baseline fingerprint ingredient,
    #: so findings survive unrelated line-number drift.
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (rule + file + code)."""
        basis = f"{self.rule}\x1f{self.path}\x1f{self.snippet}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_wire(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["fingerprint"] = self.fingerprint
        return data

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclasses.dataclass(frozen=True)
class Rule:
    """A registered invariant check.

    ``scope`` selects the calling convention: a ``"module"`` rule's
    ``check`` receives one :class:`LintModule` per file; a
    ``"program"`` rule's ``check`` receives a single
    :class:`ProgramContext` holding every parsed module, and runs
    once per lint invocation (after all module rules).  ``example``
    is a short violating snippet shown by ``repro lint --explain``.
    """

    code: str
    severity: str
    summary: str
    check: Callable[..., Iterable[Violation]]
    scope: str = "module"
    example: str = ""


_REGISTRY: Dict[str, Rule] = {}


def rule(
    code: str,
    *,
    severity: str,
    summary: str,
    scope: str = "module",
    example: str = "",
) -> Callable[
    [Callable[..., Iterable[Violation]]],
    Callable[..., Iterable[Violation]],
]:
    """Register ``check`` under ``code``; used as a decorator."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity: {severity!r}")
    if scope not in SCOPES:
        raise ValueError(f"unknown scope: {scope!r}")

    def register(
        check: Callable[..., Iterable[Violation]]
    ) -> Callable[..., Iterable[Violation]]:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code: {code}")
        _REGISTRY[code] = Rule(code, severity, summary, check, scope, example)
        return check

    return register


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, code-ordered (imports the rule sets)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)
    from . import flow as _flow  # noqa: F401  (registration side effect)

    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    all_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code: {code}") from None


@dataclasses.dataclass
class _Waiver:
    """One ``# reprolint: disable[-file]=...`` comment, with usage
    tracking so stale waivers can be reported after a run."""

    line: int
    codes: Tuple[str, ...]
    file_level: bool
    used: Set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass(frozen=True)
class WaiverIssue:
    """A waiver comment that is doing nothing: its code is unknown to
    the registry, or no violation matched it this run."""

    path: str
    line: int
    code: str
    reason: str  # "unknown rule code" or "matched no violation"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: stale waiver "
            f"'disable={self.code}' ({self.reason})"
        )


class LintModule:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.parts = tuple(Path(relpath).parts)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._line_waivers = self._collect_line_waivers()
        self.file_waivers = self._collect_file_waivers()
        self.import_aliases = self._collect_import_aliases()

    # -- layout ---------------------------------------------------------

    def in_dirs(self, *names: str) -> bool:
        """True when any path segment (not the filename) matches."""
        return any(part in names for part in self.parts[:-1])

    def imports(self, module: str) -> bool:
        """True when the file imports ``module`` (any alias/form)."""
        return module in self.import_aliases.values() or any(
            canonical == module or canonical.startswith(module + ".")
            for canonical in self.import_aliases.values()
        )

    # -- AST helpers ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return ancestor
        return None

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for Name/Attribute chains, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """The canonical dotted target of ``call``, import-aliases
        resolved (``import time as t; t.time()`` → ``time.time``)."""
        dotted = self.dotted_name(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        canonical = self.import_aliases.get(head)
        if canonical is not None:
            return canonical + ("." + rest if rest else "")
        return dotted

    def _collect_import_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = (
                        name.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for name in node.names:
                    aliases[name.asname or name.name] = (
                        f"{node.module}.{name.name}"
                    )
        return aliases

    # -- waivers --------------------------------------------------------

    def _comment_lines(self) -> List[Tuple[int, str]]:
        """(line, text) for every real ``#`` comment — waiver syntax
        quoted in docstrings or string literals is not a waiver."""
        comments: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline
            )
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
        except (tokenize.TokenError, IndentationError):
            pass
        return comments

    def _collect_line_waivers(self) -> Dict[int, List[_Waiver]]:
        self.waivers: List[_Waiver] = []
        self._comments = self._comment_lines()
        covered: Dict[int, List[_Waiver]] = {}
        for number, text in self._comments:
            match = _WAIVER_RE.search(text)
            if not match or _FILE_WAIVER_RE.search(text):
                continue
            codes = tuple(
                sorted(
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
            )
            waiver = _Waiver(number, codes, file_level=False)
            self.waivers.append(waiver)
            covered.setdefault(number, []).append(waiver)
            # A waiver on a pure comment line covers the next line,
            # so long justifications don't force long code lines.
            source_line = (
                self.lines[number - 1]
                if 0 < number <= len(self.lines)
                else ""
            )
            if source_line.lstrip().startswith("#"):
                covered.setdefault(number + 1, []).append(waiver)
        return covered

    def _collect_file_waivers(self) -> Set[str]:
        waived: Set[str] = set()
        for number, text in self._comments:
            if number > FILE_WAIVER_WINDOW:
                continue
            match = _FILE_WAIVER_RE.search(text)
            if match:
                codes = tuple(
                    sorted(
                        code.strip()
                        for code in match.group(1).split(",")
                        if code.strip()
                    )
                )
                self.waivers.append(
                    _Waiver(number, codes, file_level=True)
                )
                waived.update(codes)
        return waived

    def waived(self, line: int, code: str) -> bool:
        """True when a waiver suppresses ``code`` at ``line`` — and
        mark that waiver used, for stale-waiver reporting."""
        hit = False
        if code in self.file_waivers:
            for waiver in self.waivers:
                if waiver.file_level and code in waiver.codes:
                    waiver.used.add(code)
            hit = True
        for waiver in self._line_waivers.get(line, []):
            if code in waiver.codes:
                waiver.used.add(code)
                hit = True
        return hit

    def waiver_issues(
        self, known_codes: Set[str], active_codes: Set[str]
    ) -> Iterator[WaiverIssue]:
        """Waivers that did nothing this run: unknown codes always
        count; known codes count only when their rule actually ran
        (``active_codes``) yet the waiver matched no violation."""
        for waiver in self.waivers:
            for code in waiver.codes:
                if code not in known_codes:
                    yield WaiverIssue(
                        self.relpath,
                        waiver.line,
                        code,
                        "unknown rule code",
                    )
                elif code in active_codes and code not in waiver.used:
                    yield WaiverIssue(
                        self.relpath,
                        waiver.line,
                        code,
                        "matched no violation",
                    )

    # -- violation factory ---------------------------------------------

    def violation(
        self, rule_code: str, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = (
            self.lines[line - 1].strip()
            if 0 < line <= len(self.lines)
            else ""
        )
        return Violation(
            rule=rule_code,
            severity=_REGISTRY[rule_code].severity,
            path=self.relpath,
            line=line,
            col=col + 1,
            message=message,
            snippet=snippet,
        )


class ProgramContext:
    """What a program-scope rule sees: every parsed module in the run
    plus a shared cache where the flow analyses stash cross-rule
    artefacts (symbol table, call graph) so each is built once."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules: List[LintModule] = list(modules)
        self.by_relpath: Dict[str, LintModule] = {
            module.relpath: module for module in self.modules
        }
        self.cache: Dict[str, object] = {}


@dataclasses.dataclass
class LintReport:
    """Everything one lint run produced: findings, waiver hygiene,
    and per-phase wall-clock timings (seconds) for the cost gate."""

    violations: List[Violation]
    waiver_issues: List[WaiverIssue]
    timings: Dict[str, float]


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        if target.suffix == ".py":
            yield target
        return
    for path in sorted(target.rglob("*.py")):
        if any(part.startswith(".") for part in path.parts):
            continue
        yield path


def _parse_violation(relpath: str, exc: SyntaxError) -> Violation:
    return Violation(
        rule="PARSE",
        severity="error",
        path=relpath,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
        snippet="",
    )


def lint_file(
    path: Path,
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """All (un-waived) module-rule violations in one file.

    Program-scope rules need the whole module set and are skipped
    here; use :func:`lint_paths`/:func:`lint_report` for them.
    """
    active = tuple(rules) if rules is not None else all_rules()
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        module = LintModule(path, relpath, source)
    except SyntaxError as exc:
        return [_parse_violation(relpath, exc)]
    found: List[Violation] = []
    for active_rule in active:
        if active_rule.scope != "module":
            continue
        for violation in active_rule.check(module):
            if not module.waived(violation.line, violation.rule):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def lint_report(
    targets: Iterable[Path],
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``targets`` (files or trees):
    parse all modules, run module rules per file, then run the
    program-scope flow pass once over the whole set."""
    active = tuple(rules) if rules is not None else all_rules()
    module_rules = [r for r in active if r.scope == "module"]
    program_rules = [r for r in active if r.scope == "program"]

    started = time.perf_counter()
    modules: List[LintModule] = []
    found: List[Violation] = []
    seen: Set[Path] = set()
    for target in targets:
        for path in _iter_python_files(Path(target)):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                relpath = resolved.relative_to(
                    root.resolve()
                ).as_posix()
            except ValueError:
                relpath = path.as_posix()
            source = path.read_text(encoding="utf-8")
            try:
                modules.append(LintModule(path, relpath, source))
            except SyntaxError as exc:
                found.append(_parse_violation(relpath, exc))
    parsed_at = time.perf_counter()

    for module in modules:
        for active_rule in module_rules:
            for violation in active_rule.check(module):
                if not module.waived(violation.line, violation.rule):
                    found.append(violation)
    module_rules_at = time.perf_counter()

    if program_rules and modules:
        context = ProgramContext(modules)
        for active_rule in program_rules:
            for violation in active_rule.check(context):
                owner = context.by_relpath.get(violation.path)
                if owner is None or not owner.waived(
                    violation.line, violation.rule
                ):
                    found.append(violation)
    flow_at = time.perf_counter()

    known_codes = {r.code for r in all_rules()} | {"PARSE"}
    active_codes = {r.code for r in active}
    issues: List[WaiverIssue] = []
    for module in modules:
        issues.extend(
            module.waiver_issues(known_codes, active_codes)
        )

    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    issues.sort(key=lambda i: (i.path, i.line, i.code))
    return LintReport(
        violations=found,
        waiver_issues=issues,
        timings={
            "parse": parsed_at - started,
            "module_rules": module_rules_at - parsed_at,
            "flow": flow_at - module_rules_at,
            "total": flow_at - started,
        },
    )


def lint_paths(
    targets: Iterable[Path],
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Violations only — :func:`lint_report` without the hygiene."""
    return lint_report(targets, root, rules).violations


def render_text(violations: Sequence[Violation]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [violation.render() for violation in violations]
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    if violations:
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_rule.items())
        )
        lines.append(f"{len(violations)} violation(s) ({summary})")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (what ``repro lint --json`` prints)."""
    return json.dumps(
        {
            "violations": [v.to_wire() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )
