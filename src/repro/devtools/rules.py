"""The repo's invariant rules.

Each rule guards an invariant a shipped guarantee rests on:

``DET``
    Simulation paths (``sim/``, ``internet/``, ``bittorrent/``,
    ``experiments/``) must not read the wall clock or unseeded
    randomness — bit-identical parallel runs (the PR 1 guarantee) die
    the moment one does. Time comes from ``sim.clock``, randomness
    from injected ``sim.rng`` streams.

``WIRE``
    Wire-facing code (``service/``, ``cluster/``, ``stream/``) must
    bound what it reads and guard what it decodes: no zero-argument
    ``sock.recv()``/``.read()``, no ``json.loads`` or
    ``struct.unpack``/``unpack_from``/``iter_unpack`` in a function
    that shows no size bound (a ``len()`` comparison or a
    ``MAX_*``/``*limit*`` constant).

``RES``
    Sockets and file handles must be scoped: opened in a ``with``,
    owned by ``self`` (a close-managed object), created under a
    ``try``/``finally``, or returned to the caller.

``EXC``
    Serving paths must not swallow exceptions silently: an
    ``except Exception``/bare ``except`` whose body is only ``pass``
    or ``continue`` hides the pipeline defects blocklist
    false-positive studies trace outages to.

Lock discipline moved out of this module in PR 10: the old
single-function CONC heuristic is replaced by the interprocedural
``FLOW-LOCK`` pass in :mod:`repro.devtools.flow.locks`, which also
brought ``FLOW-BLOCK`` (reactor blocking calls) and ``FLOW-WIRE``
(codec conformance) — see :mod:`repro.devtools.flow`.

False positives are expected occasionally — that is what inline
``# reprolint: disable=CODE`` waivers (with a justifying comment) are
for; the waiver shows up in review, silent drift does not.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .lint import LintModule, Violation, rule

__all__ = ["DETERMINISM_DIRS", "SERVING_DIRS"]

#: Directories whose code must be deterministic (DET scope).
DETERMINISM_DIRS = (
    "sim",
    "internet",
    "bittorrent",
    "experiments",
    "adversary",
    "v6serve",
    "loadgen",
)

#: Directories on the serving/wire path (WIRE / EXC / FLOW-* scope).
SERVING_DIRS = ("service", "cluster", "stream")

# -- DET ---------------------------------------------------------------

#: Canonical call targets that read the wall clock or process entropy.
_DET_BANNED = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.sleep": "wall-clock wait",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "OS entropy",
    "random.SystemRandom": "OS entropy",
}

#: Module-level ``random.*`` functions (the shared unseeded stream).
_DET_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}


@rule(
    "DET",
    severity="error",
    summary=(
        "no wall-clock or unseeded randomness in simulation paths "
        "(inject sim.rng streams / sim.clock)"
    ),
    example=(
        "def tick():\n"
        "    return time.time()   # DET: wall-clock read in sim/\n"
    ),
)
def check_determinism(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*DETERMINISM_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve_call(node)
        if target is None:
            continue
        reason = _DET_BANNED.get(target)
        if reason is None and target.startswith("secrets."):
            reason = "OS entropy"
        if reason is None:
            head, _, tail = target.partition(".")
            if head == "random" and tail in _DET_RANDOM_FUNCS:
                reason = "module-level random stream"
        if reason is not None:
            yield module.violation(
                "DET",
                node,
                f"{target}() is {reason} — simulation paths must use "
                f"an injected sim.rng stream or sim.clock",
            )


# -- WIRE --------------------------------------------------------------


def _has_size_evidence(scope: ast.AST) -> bool:
    """A ``len()`` comparison or a ``MAX_*``/``*limit*`` reference
    anywhere in ``scope`` counts as evidence the data is bounded."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Compare):
            # A len() anywhere inside the comparison counts — bounds
            # often arrive arithmetically (``len(b) % rec.size != 0``,
            # ``pos + need > len(buf)``), not as a bare operand.
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "len"
                ):
                    return True
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            lowered = name.lower()
            if "max" in lowered or "limit" in lowered:
                return True
    return False


def _catches_struct_error(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.ExceptHandler) and node.type is not None:
            names = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for name in names:
                if (
                    isinstance(name, ast.Attribute)
                    and name.attr == "error"
                ):
                    return True
    return False


@rule(
    "WIRE",
    severity="error",
    summary=(
        "bounded reads and guarded decodes on the wire path "
        "(no naked recv()/read()/json.loads/struct.unpack)"
    ),
    example=(
        "def pump(sock):\n"
        "    return sock.recv()   # WIRE: no byte limit\n"
    ),
)
def check_wire(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*SERVING_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        scope = module.enclosing_function(node) or module.tree
        if isinstance(func, ast.Attribute):
            receiver = module.dotted_name(func.value) or ""
            if (
                func.attr in ("recv", "recvfrom")
                and not node.args
                and "sock" in receiver.lower()
            ):
                yield module.violation(
                    "WIRE",
                    node,
                    f"unbounded {receiver}.{func.attr}() — pass an "
                    f"explicit byte limit",
                )
                continue
            if func.attr == "read" and not node.args:
                yield module.violation(
                    "WIRE",
                    node,
                    f"unbounded {receiver or '<expr>'}.read() — pass "
                    f"a byte limit or read in bounded chunks",
                )
                continue
        target = module.resolve_call(node)
        if target == "json.loads" and not _has_size_evidence(scope):
            yield module.violation(
                "WIRE",
                node,
                "json.loads() of unbounded input — check the payload "
                "against an explicit size limit first",
            )
        elif (
            target is not None
            and (
                target in (
                    "struct.unpack",
                    "struct.unpack_from",
                    "struct.iter_unpack",
                )
                or (
                    isinstance(func, ast.Attribute)
                    and func.attr
                    in ("unpack", "unpack_from", "iter_unpack")
                )
            )
            and not _has_size_evidence(scope)
            and not _catches_struct_error(scope)
        ):
            yield module.violation(
                "WIRE",
                node,
                "struct unpack without a length guard — compare "
                "len() against the format size (or catch struct.error)",
            )


# -- RES ---------------------------------------------------------------


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None

#: Canonical calls that hand back a resource needing a close().
_RES_OPENERS = {
    "open",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "os.fdopen",
    "socket.socket",
    "socket.create_connection",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
}


def _in_with_context(module: LintModule, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                for sub in ast.walk(item.context_expr):
                    if sub is node:
                        return True
    return False


def _assigned_to_self(module: LintModule, node: ast.AST) -> bool:
    parent = module.parent(node)
    if isinstance(parent, ast.Assign):
        return any(
            _self_attr_target(target) is not None
            for target in parent.targets
        )
    if isinstance(parent, ast.AnnAssign):
        return _self_attr_target(parent.target) is not None
    return False


def _in_try_finally(module: LintModule, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Try) and ancestor.finalbody:
            return True
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            break
    # The common idiom opens *before* the try so the name is bound for
    # the finally: ``h = open(p)`` immediately followed by
    # ``try: ... finally: ...`` counts as scoped.
    parent = module.parent(node)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        grandparent = module.parent(parent)
        for body in (
            getattr(grandparent, "body", None),
            getattr(grandparent, "orelse", None),
            getattr(grandparent, "finalbody", None),
        ):
            if body and parent in body:
                index = body.index(parent)
                if index + 1 < len(body):
                    follower = body[index + 1]
                    if (
                        isinstance(follower, ast.Try)
                        and follower.finalbody
                    ):
                        return True
    return False


def _is_returned(module: LintModule, node: ast.AST) -> bool:
    parent = module.parent(node)
    return isinstance(parent, ast.Return)


@rule(
    "RES",
    severity="warning",
    summary=(
        "files/sockets must be scoped: with-block, self-owned, "
        "try/finally, or returned to the caller"
    ),
    example=(
        "def load(path):\n"
        "    handle = open(path)   # RES: leaks on first exception\n"
        "    return handle.read(100)\n"
    ),
)
def check_resources(module: LintModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve_call(node)
        if target not in _RES_OPENERS:
            continue
        if (
            _in_with_context(module, node)
            or _assigned_to_self(module, node)
            or _in_try_finally(module, node)
            or _is_returned(module, node)
        ):
            continue
        yield module.violation(
            "RES",
            node,
            f"{target}() outside a with-block/try-finally — the "
            f"handle leaks on the first exception",
        )


# -- EXC ---------------------------------------------------------------


def _broad_handler(node: ast.ExceptHandler) -> bool:
    if node.type is None:
        return True
    names = (
        list(node.type.elts)
        if isinstance(node.type, ast.Tuple)
        else [node.type]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "Exception",
            "BaseException",
        ):
            return True
    return False


@rule(
    "EXC",
    severity="warning",
    summary=(
        "serving paths must not silently swallow Exception "
        "(count it, log it, or narrow the except)"
    ),
    example=(
        "try:\n"
        "    step()\n"
        "except Exception:\n"
        "    pass   # EXC: failure vanishes silently\n"
    ),
)
def check_silent_except(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*SERVING_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _broad_handler(node):
            continue
        body = [
            stmt
            for stmt in node.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        if all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body
        ):
            yield module.violation(
                "EXC",
                node,
                "except Exception with a pass-only body swallows "
                "failures silently — count/log it or narrow the type",
            )
