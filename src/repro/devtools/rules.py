"""The repo's invariant rules.

Each rule guards an invariant a shipped guarantee rests on:

``DET``
    Simulation paths (``sim/``, ``internet/``, ``bittorrent/``,
    ``experiments/``) must not read the wall clock or unseeded
    randomness — bit-identical parallel runs (the PR 1 guarantee) die
    the moment one does. Time comes from ``sim.clock``, randomness
    from injected ``sim.rng`` streams.

``WIRE``
    Wire-facing code (``service/``, ``cluster/``, ``stream/``) must
    bound what it reads and guard what it decodes: no zero-argument
    ``sock.recv()``/``.read()``, no ``json.loads`` or
    ``struct.unpack``/``unpack_from``/``iter_unpack`` in a function
    that shows no size bound (a ``len()`` comparison or a
    ``MAX_*``/``*limit*`` constant).

``CONC``
    In threaded serving modules, shared instance state must be
    mutated under ``self.*lock*``: read-modify-write (``+=``) outside
    a lock is always flagged; a plain attribute written from several
    methods is flagged at each unguarded write site.

``RES``
    Sockets and file handles must be scoped: opened in a ``with``,
    owned by ``self`` (a close-managed object), created under a
    ``try``/``finally``, or returned to the caller.

``EXC``
    Serving paths must not swallow exceptions silently: an
    ``except Exception``/bare ``except`` whose body is only ``pass``
    or ``continue`` hides the pipeline defects blocklist
    false-positive studies trace outages to.

False positives are expected occasionally — that is what inline
``# reprolint: disable=CODE`` waivers (with a justifying comment) are
for; the waiver shows up in review, silent drift does not.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .lint import LintModule, Violation, rule

__all__ = ["DETERMINISM_DIRS", "SERVING_DIRS"]

#: Directories whose code must be deterministic (DET scope).
DETERMINISM_DIRS = (
    "sim",
    "internet",
    "bittorrent",
    "experiments",
    "adversary",
    "v6serve",
)

#: Directories on the serving/wire path (WIRE / CONC / EXC scope).
SERVING_DIRS = ("service", "cluster", "stream")

# -- DET ---------------------------------------------------------------

#: Canonical call targets that read the wall clock or process entropy.
_DET_BANNED = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.sleep": "wall-clock wait",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "OS entropy",
    "random.SystemRandom": "OS entropy",
}

#: Module-level ``random.*`` functions (the shared unseeded stream).
_DET_RANDOM_FUNCS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}


@rule(
    "DET",
    severity="error",
    summary=(
        "no wall-clock or unseeded randomness in simulation paths "
        "(inject sim.rng streams / sim.clock)"
    ),
)
def check_determinism(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*DETERMINISM_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve_call(node)
        if target is None:
            continue
        reason = _DET_BANNED.get(target)
        if reason is None and target.startswith("secrets."):
            reason = "OS entropy"
        if reason is None:
            head, _, tail = target.partition(".")
            if head == "random" and tail in _DET_RANDOM_FUNCS:
                reason = "module-level random stream"
        if reason is not None:
            yield module.violation(
                "DET",
                node,
                f"{target}() is {reason} — simulation paths must use "
                f"an injected sim.rng stream or sim.clock",
            )


# -- WIRE --------------------------------------------------------------


def _has_size_evidence(scope: ast.AST) -> bool:
    """A ``len()`` comparison or a ``MAX_*``/``*limit*`` reference
    anywhere in ``scope`` counts as evidence the data is bounded."""
    for node in ast.walk(scope):
        if isinstance(node, ast.Compare):
            # A len() anywhere inside the comparison counts — bounds
            # often arrive arithmetically (``len(b) % rec.size != 0``,
            # ``pos + need > len(buf)``), not as a bare operand.
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "len"
                ):
                    return True
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            lowered = name.lower()
            if "max" in lowered or "limit" in lowered:
                return True
    return False


def _catches_struct_error(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.ExceptHandler) and node.type is not None:
            names = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for name in names:
                if (
                    isinstance(name, ast.Attribute)
                    and name.attr == "error"
                ):
                    return True
    return False


@rule(
    "WIRE",
    severity="error",
    summary=(
        "bounded reads and guarded decodes on the wire path "
        "(no naked recv()/read()/json.loads/struct.unpack)"
    ),
)
def check_wire(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*SERVING_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        scope = module.enclosing_function(node) or module.tree
        if isinstance(func, ast.Attribute):
            receiver = module.dotted_name(func.value) or ""
            if (
                func.attr in ("recv", "recvfrom")
                and not node.args
                and "sock" in receiver.lower()
            ):
                yield module.violation(
                    "WIRE",
                    node,
                    f"unbounded {receiver}.{func.attr}() — pass an "
                    f"explicit byte limit",
                )
                continue
            if func.attr == "read" and not node.args:
                yield module.violation(
                    "WIRE",
                    node,
                    f"unbounded {receiver or '<expr>'}.read() — pass "
                    f"a byte limit or read in bounded chunks",
                )
                continue
        target = module.resolve_call(node)
        if target == "json.loads" and not _has_size_evidence(scope):
            yield module.violation(
                "WIRE",
                node,
                "json.loads() of unbounded input — check the payload "
                "against an explicit size limit first",
            )
        elif (
            target is not None
            and (
                target in (
                    "struct.unpack",
                    "struct.unpack_from",
                    "struct.iter_unpack",
                )
                or (
                    isinstance(func, ast.Attribute)
                    and func.attr
                    in ("unpack", "unpack_from", "iter_unpack")
                )
            )
            and not _has_size_evidence(scope)
            and not _catches_struct_error(scope)
        ):
            yield module.violation(
                "WIRE",
                node,
                "struct unpack without a length guard — compare "
                "len() against the format size (or catch struct.error)",
            )


# -- CONC --------------------------------------------------------------


def _is_lockish(node: ast.expr) -> bool:
    """``self._lock`` / ``self._write_lock`` / anything named *lock*."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and "lock" in node.attr.lower()
    )


def _under_lock(module: LintModule, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With) and any(
            _is_lockish(item.context_expr)
            or (
                isinstance(item.context_expr, ast.Call)
                and any(
                    _is_lockish(arg) for arg in item.context_expr.args
                )
            )
            for item in ancestor.items
        ):
            return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _method_mutations(
    method: ast.FunctionDef,
) -> Iterator[Tuple[str, ast.stmt, bool]]:
    """Yields ``(attr, node, is_augmented)`` for self-attribute writes."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_target(target)
                if attr is not None:
                    yield attr, node, False
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            attr = _self_attr_target(node.target)
            if attr is not None:
                yield attr, node, False
        elif isinstance(node, ast.AugAssign):
            attr = _self_attr_target(node.target)
            if attr is not None:
                yield attr, node, True


@rule(
    "CONC",
    severity="error",
    summary=(
        "shared instance state in threaded serving code must be "
        "mutated under self.*lock*"
    ),
)
def check_concurrency(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*SERVING_DIRS):
        return
    if not module.imports("threading"):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [
            item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        ]
        # attr -> {method name -> [(node, augmented, guarded)]}
        writes: Dict[str, Dict[str, List[Tuple[ast.stmt, bool, bool]]]]
        writes = {}
        for method in methods:
            for attr, site, augmented in _method_mutations(method):
                writes.setdefault(attr, {}).setdefault(
                    method.name, []
                ).append((site, augmented, _under_lock(module, site)))
        for attr, by_method in writes.items():
            for method_name, sites in by_method.items():
                if method_name == "__init__":
                    continue
                for site, augmented, guarded in sites:
                    if guarded:
                        continue
                    if augmented:
                        yield module.violation(
                            "CONC",
                            site,
                            f"read-modify-write of self.{attr} in "
                            f"{node.name}.{method_name} without "
                            f"holding self._lock",
                        )
                        continue
                    mutators = sorted(
                        name
                        for name in by_method
                        if name != "__init__"
                    )
                    if len(mutators) > 1:
                        yield module.violation(
                            "CONC",
                            site,
                            f"self.{attr} is written by multiple "
                            f"{node.name} methods "
                            f"({', '.join(mutators)}) but this write "
                            f"in {method_name} does not hold "
                            f"self._lock",
                        )


# -- RES ---------------------------------------------------------------

#: Canonical calls that hand back a resource needing a close().
_RES_OPENERS = {
    "open",
    "gzip.open",
    "bz2.open",
    "lzma.open",
    "os.fdopen",
    "socket.socket",
    "socket.create_connection",
    "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile",
}


def _in_with_context(module: LintModule, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                for sub in ast.walk(item.context_expr):
                    if sub is node:
                        return True
    return False


def _assigned_to_self(module: LintModule, node: ast.AST) -> bool:
    parent = module.parent(node)
    if isinstance(parent, ast.Assign):
        return any(
            _self_attr_target(target) is not None
            for target in parent.targets
        )
    if isinstance(parent, ast.AnnAssign):
        return _self_attr_target(parent.target) is not None
    return False


def _in_try_finally(module: LintModule, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Try) and ancestor.finalbody:
            return True
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            break
    # The common idiom opens *before* the try so the name is bound for
    # the finally: ``h = open(p)`` immediately followed by
    # ``try: ... finally: ...`` counts as scoped.
    parent = module.parent(node)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        grandparent = module.parent(parent)
        for body in (
            getattr(grandparent, "body", None),
            getattr(grandparent, "orelse", None),
            getattr(grandparent, "finalbody", None),
        ):
            if body and parent in body:
                index = body.index(parent)
                if index + 1 < len(body):
                    follower = body[index + 1]
                    if (
                        isinstance(follower, ast.Try)
                        and follower.finalbody
                    ):
                        return True
    return False


def _is_returned(module: LintModule, node: ast.AST) -> bool:
    parent = module.parent(node)
    return isinstance(parent, ast.Return)


@rule(
    "RES",
    severity="warning",
    summary=(
        "files/sockets must be scoped: with-block, self-owned, "
        "try/finally, or returned to the caller"
    ),
)
def check_resources(module: LintModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve_call(node)
        if target not in _RES_OPENERS:
            continue
        if (
            _in_with_context(module, node)
            or _assigned_to_self(module, node)
            or _in_try_finally(module, node)
            or _is_returned(module, node)
        ):
            continue
        yield module.violation(
            "RES",
            node,
            f"{target}() outside a with-block/try-finally — the "
            f"handle leaks on the first exception",
        )


# -- EXC ---------------------------------------------------------------


def _broad_handler(node: ast.ExceptHandler) -> bool:
    if node.type is None:
        return True
    names = (
        list(node.type.elts)
        if isinstance(node.type, ast.Tuple)
        else [node.type]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "Exception",
            "BaseException",
        ):
            return True
    return False


@rule(
    "EXC",
    severity="warning",
    summary=(
        "serving paths must not silently swallow Exception "
        "(count it, log it, or narrow the except)"
    ),
)
def check_silent_except(module: LintModule) -> Iterator[Violation]:
    if not module.in_dirs(*SERVING_DIRS):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _broad_handler(node):
            continue
        body = [
            stmt
            for stmt in node.body
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            )
        ]
        if all(
            isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body
        ):
            yield module.violation(
                "EXC",
                node,
                "except Exception with a pass-only body swallows "
                "failures silently — count/log it or narrow the type",
            )
