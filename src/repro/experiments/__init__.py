"""Orchestrated experiments: one full run powers every figure/table."""

from .btsetup import CrawlOutcome, CrawlSetup, run_crawl
from .runner import FullRun, RunConfig, cached_run, run_full
from .validation import DetectionScore, score_sets

__all__ = [
    "CrawlOutcome",
    "CrawlSetup",
    "run_crawl",
    "FullRun",
    "RunConfig",
    "cached_run",
    "run_full",
    "DetectionScore",
    "score_sets",
]
