"""Wiring the BitTorrent crawl onto a scenario's ground truth.

Builds the simulated UDP fabric, instantiates one DHT peer per
BitTorrent user (public hosts directly, NATed users through their
line's shared gateway), runs churn, and drives the crawler for the
configured duration — restricted, like the paper's, to the blocklisted
/24 address space.

Multiple vantage points are supported (the paper: "we could reduce
this burden and have a faster coverage by having the crawler at
multiple vantage points in different networks"): each vantage point is
an independent crawler on its own address; their logs merge for
detection.

The bootstrap node and the crawlers live in 198.18.0.0/15 (benchmark
space, never allocated to the synthetic topology), so they can never
collide with a ground-truth address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import copy

from ..bittorrent.crawler import CrawlerConfig, DhtCrawler
from ..bittorrent.crawllog import CrawlLog
from ..bittorrent.swarm import DhtOverlay, PeerSpec, build_overlay
from ..internet.groundtruth import GroundTruth, NAT_NONE
from ..internet.scenario import Scenario
from ..net.ipv4 import ip_to_int, slash24_of
from ..net.prefixtrie import PrefixSet
from ..sim.clock import HOUR
from ..sim.events import Scheduler
from ..sim.nat import HostStack, NatBehaviour, NatGateway
from ..sim.udp import UdpFabric

__all__ = ["CrawlSetup", "CrawlOutcome", "run_crawl"]

_BOOTSTRAP_IP = ip_to_int("198.18.0.1")
_CRAWLER_IP = ip_to_int("198.18.0.2")


@dataclass
class CrawlSetup:
    """Crawl campaign parameters."""

    duration_hours: float = 10.0
    loss_rate: float = 0.19
    #: Independent crawler vantage points (paper's scaling suggestion).
    n_vantage_points: int = 1
    #: Restrict discovery to blocklisted /24s (the paper's operational
    #: constraint). Disable for the unrestricted-crawler ablation.
    restrict_to_blocklisted: bool = True
    #: Fraction of peers that restart (port + node_id change) and
    #: depart during the crawl.
    restart_fraction: float = 0.10
    depart_fraction: float = 0.03
    crawler: CrawlerConfig = field(default_factory=CrawlerConfig)


@dataclass
class CrawlOutcome:
    """Everything the campaign produced.

    ``crawler`` is the first vantage point (always present);
    ``crawlers`` holds all of them.
    """

    crawler: DhtCrawler
    overlay: DhtOverlay
    fabric: UdpFabric
    scheduler: Scheduler
    gateways: Dict[int, NatGateway]
    crawlers: List[DhtCrawler] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.crawlers:
            self.crawlers = [self.crawler]

    def bittorrent_ips(self) -> Set[int]:
        """Unique addresses sighted across all vantage points."""
        out: Set[int] = set()
        for crawler in self.crawlers:
            out |= crawler.discovered_addresses()
        return out

    def merged_log(self) -> CrawlLog:
        """All vantage points' records, merged in time order — the
        input NAT detection runs on."""
        if len(self.crawlers) == 1:
            return self.crawlers[0].log
        merged = CrawlLog()
        for record in sorted(
            (r for c in self.crawlers for r in c.log),
            key=lambda r: r.time,
        ):
            merged.append(record)
        return merged


def _build_specs(
    truth: GroundTruth,
    fabric: UdpFabric,
    rng,
) -> Tuple[List[PeerSpec], Dict[int, NatGateway]]:
    specs: List[PeerSpec] = []
    gateways: Dict[int, NatGateway] = {}
    for line in truth.lines.values():
        if line.static_ip is None:
            continue  # dynamic lines host no BitTorrent users here
        bt_users = truth.bt_users_behind(line)
        if not bt_users:
            continue
        if line.nat == NAT_NONE:
            stack = HostStack(fabric, line.static_ip, rng)
            for user in bt_users:
                specs.append(
                    PeerSpec(
                        key=user.key,
                        private_ip=line.static_ip,
                        socket_factory=stack.open_socket,
                    )
                )
        else:
            gateway = gateways.get(line.static_ip)
            if gateway is None:
                gateway = NatGateway(fabric, line.static_ip, rng)
                gateways[line.static_ip] = gateway
            for index, user in enumerate(bt_users):
                behaviour = (
                    NatBehaviour.FULL_CONE
                    if user.reachable
                    else NatBehaviour.ADDRESS_RESTRICTED
                )
                # RFC1918 private address unique per user behind the NAT.
                private_ip = ip_to_int("192.168.0.2") + index

                def factory(
                    gw: NatGateway = gateway, b: str = behaviour
                ):
                    return gw.open_socket(behaviour=b)

                specs.append(
                    PeerSpec(
                        key=user.key,
                        private_ip=private_ip,
                        socket_factory=factory,
                    )
                )
    return specs, gateways


def run_crawl(scenario: Scenario, setup: Optional[CrawlSetup] = None) -> CrawlOutcome:
    """Run a full crawl campaign against ``scenario``'s DHT population."""
    setup = setup or CrawlSetup()
    hub = scenario.hub
    scheduler = Scheduler()
    fabric = UdpFabric(
        scheduler, hub, loss_rate=setup.loss_rate
    )
    rng = hub.stream("bt-world")

    specs, gateways = _build_specs(scenario.truth, fabric, rng)
    if not specs:
        raise ValueError("scenario has no BitTorrent users to crawl")
    bootstrap_stack = HostStack(fabric, _BOOTSTRAP_IP, rng)
    overlay = build_overlay(fabric, specs, bootstrap_stack, rng)

    duration = setup.duration_hours * HOUR
    overlay.schedule_churn(
        scheduler,
        duration=duration,
        restart_fraction=setup.restart_fraction,
        depart_fraction=setup.depart_fraction,
    )

    if setup.n_vantage_points < 1:
        raise ValueError("need at least one vantage point")
    # Never mutate the caller's config object: campaigns derive their
    # own copy (duration and allowed space are campaign-scoped).
    crawler_config = copy.copy(setup.crawler)
    crawler_config.duration = duration
    if setup.restrict_to_blocklisted:
        allowed = PrefixSet(
            iter({slash24_of(ip) for ip in scenario.blocklisted_ips()})
        )
        crawler_config.allowed_space = allowed

    crawlers: List[DhtCrawler] = []
    for index in range(setup.n_vantage_points):
        crawler_stack = HostStack(fabric, _CRAWLER_IP + index, rng)
        config = (
            crawler_config if index == 0 else copy.copy(crawler_config)
        )
        crawler = DhtCrawler(
            scheduler,
            crawler_stack.open_socket(),
            hub.stream(f"crawler-{index}"),
            config,
        )
        crawler.start([overlay.bootstrap_endpoint])
        crawlers.append(crawler)
    scheduler.run_until(duration + HOUR)
    return CrawlOutcome(
        crawler=crawlers[0],
        overlay=overlay,
        fabric=fabric,
        scheduler=scheduler,
        gateways=gateways,
        crawlers=crawlers,
    )
