"""Wiring the BitTorrent crawl onto a scenario's ground truth.

Builds the simulated UDP fabric, instantiates one DHT peer per
BitTorrent user (public hosts directly, NATed users through their
line's shared gateway), runs churn, and drives the crawler for the
configured duration — restricted, like the paper's, to the blocklisted
/24 address space.

Multiple vantage points are supported (the paper: "we could reduce
this burden and have a faster coverage by having the crawler at
multiple vantage points in different networks"): each vantage point is
an **independent campaign** — its own fabric, overlay and scheduler,
built from a fresh seed-derived RNG hub so the world's behaviour is
identical across campaigns while each crawler's probing differs. Their
logs merge in time order for detection. Independent campaigns make
vantage points embarrassingly parallel: pass ``workers`` to
:func:`run_crawl` to shard them across a process pool with results
bit-identical to the serial order.

The bootstrap node and the crawlers live in 198.18.0.0/15 (benchmark
space, never allocated to the synthetic topology), so they can never
collide with a ground-truth address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import copy

from ..bittorrent.crawler import CrawlerConfig, CrawlerStats, DhtCrawler
from ..bittorrent.crawllog import CrawlLog
from ..bittorrent.swarm import DhtOverlay, PeerSpec, build_overlay
from ..internet.groundtruth import GroundTruth, NAT_NONE
from ..internet.scenario import Scenario
from ..net.ipv4 import ip_to_int, slash24_of
from ..net.prefixtrie import PrefixSet
from ..sim.clock import HOUR
from ..sim.events import Scheduler
from ..sim.nat import HostStack, NatBehaviour, NatGateway
from ..sim.rng import RngHub
from ..sim.udp import UdpFabric
from .parallel import map_shards

__all__ = [
    "CrawlSetup",
    "CrawlOutcome",
    "CrawlerView",
    "run_crawl",
    "snapshot_crawler",
]

_BOOTSTRAP_IP = ip_to_int("198.18.0.1")
_CRAWLER_IP = ip_to_int("198.18.0.2")


@dataclass
class CrawlSetup:
    """Crawl campaign parameters."""

    duration_hours: float = 10.0
    loss_rate: float = 0.19
    #: Independent crawler vantage points (paper's scaling suggestion).
    n_vantage_points: int = 1
    #: Restrict discovery to blocklisted /24s (the paper's operational
    #: constraint). Disable for the unrestricted-crawler ablation.
    restrict_to_blocklisted: bool = True
    #: Fraction of peers that restart (port + node_id change) and
    #: depart during the crawl.
    restart_fraction: float = 0.10
    depart_fraction: float = 0.03
    crawler: CrawlerConfig = field(default_factory=CrawlerConfig)


@dataclass
class CrawlerView:
    """Picklable snapshot of a crawler's measurement products.

    Mirrors the read-side API of :class:`DhtCrawler` (log, stats,
    discovered addresses, ports) without the live simulation objects —
    this is what crosses the process boundary from a parallel campaign
    worker, and what the persistent run cache stores.
    """

    log: CrawlLog
    stats: CrawlerStats
    ports: Dict[int, Set[int]]
    multiport: Set[int]

    @property
    def discovered_ips(self) -> int:
        """Unique IP addresses seen."""
        return len(self.ports)

    def discovered_addresses(self) -> Set[int]:
        """The unique addresses sighted."""
        return set(self.ports)

    @property
    def multiport_ips(self) -> Set[int]:
        """IPs observed with multiple distinct ports."""
        return set(self.multiport)

    def ports_of(self, ip: int) -> Set[int]:
        """Every port ever sighted for ``ip``."""
        return set(self.ports.get(ip, ()))


AnyCrawler = Union[DhtCrawler, CrawlerView]


def snapshot_crawler(crawler: AnyCrawler) -> CrawlerView:
    """Reduce a crawler to its picklable measurement products."""
    if isinstance(crawler, CrawlerView):
        return crawler
    return CrawlerView(
        log=crawler.log,
        stats=crawler.stats,
        ports={ip: set(ports) for ip, ports in crawler._ports.items()},
        multiport=set(crawler._multiport),
    )


@dataclass
class CrawlOutcome:
    """Everything the campaign produced.

    ``crawler`` is the first vantage point (always present);
    ``crawlers`` holds all of them. Serial runs (``workers=1``) keep
    the first campaign's live simulation objects; parallel runs carry
    :class:`CrawlerView` snapshots instead and leave the simulation
    handles (overlay/fabric/scheduler/gateways) as ``None`` — they
    lived and died in the worker processes.
    """

    crawler: AnyCrawler
    overlay: Optional[DhtOverlay]
    fabric: Optional[UdpFabric]
    scheduler: Optional[Scheduler]
    gateways: Optional[Dict[int, NatGateway]]
    crawlers: List[AnyCrawler] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.crawlers:
            self.crawlers = [self.crawler]

    def bittorrent_ips(self) -> Set[int]:
        """Unique addresses sighted across all vantage points."""
        out: Set[int] = set()
        for crawler in self.crawlers:
            out |= crawler.discovered_addresses()
        return out

    def merged_log(self) -> CrawlLog:
        """All vantage points' records, merged in time order — the
        input NAT detection runs on."""
        if len(self.crawlers) == 1:
            return self.crawlers[0].log
        merged = CrawlLog()
        for record in sorted(
            (r for c in self.crawlers for r in c.log),
            key=lambda r: r.time,
        ):
            merged.append(record)
        return merged


def _build_specs(
    truth: GroundTruth,
    fabric: UdpFabric,
    rng,
) -> Tuple[List[PeerSpec], Dict[int, NatGateway]]:
    specs: List[PeerSpec] = []
    gateways: Dict[int, NatGateway] = {}
    for line in truth.lines.values():
        if line.static_ip is None:
            continue  # dynamic lines host no BitTorrent users here
        bt_users = truth.bt_users_behind(line)
        if not bt_users:
            continue
        if line.nat == NAT_NONE:
            stack = HostStack(fabric, line.static_ip, rng)
            for user in bt_users:
                specs.append(
                    PeerSpec(
                        key=user.key,
                        private_ip=line.static_ip,
                        socket_factory=stack.open_socket,
                    )
                )
        else:
            gateway = gateways.get(line.static_ip)
            if gateway is None:
                gateway = NatGateway(fabric, line.static_ip, rng)
                gateways[line.static_ip] = gateway
            for index, user in enumerate(bt_users):
                behaviour = (
                    NatBehaviour.FULL_CONE
                    if user.reachable
                    else NatBehaviour.ADDRESS_RESTRICTED
                )
                # RFC1918 private address unique per user behind the NAT.
                private_ip = ip_to_int("192.168.0.2") + index

                def factory(
                    gw: NatGateway = gateway, b: str = behaviour
                ):
                    return gw.open_socket(behaviour=b)

                specs.append(
                    PeerSpec(
                        key=user.key,
                        private_ip=private_ip,
                        socket_factory=factory,
                    )
                )
    return specs, gateways


def _run_campaign(
    scenario: Scenario, setup: CrawlSetup, index: int
) -> Tuple[DhtCrawler, DhtOverlay, UdpFabric, Scheduler, Dict[int, NatGateway]]:
    """Run vantage point ``index`` as a self-contained campaign.

    Every campaign rebuilds the world's BitTorrent behaviour from a
    fresh ``RngHub(seed)``: named streams are seeded independently, so
    the overlay, churn and loss draws are identical across campaigns
    (and identical to what the pre-campaign shared-simulation code
    drew), while the ``crawler-{index}`` stream gives each vantage
    point its own probing schedule. Campaigns therefore share no state
    at all — they can run in any order, or in different processes, and
    still produce the same records.
    """
    hub = RngHub(scenario.config.seed)
    scheduler = Scheduler()
    fabric = UdpFabric(scheduler, hub, loss_rate=setup.loss_rate)
    rng = hub.stream("bt-world")

    specs, gateways = _build_specs(scenario.truth, fabric, rng)
    if not specs:
        raise ValueError("scenario has no BitTorrent users to crawl")
    bootstrap_stack = HostStack(fabric, _BOOTSTRAP_IP, rng)
    overlay = build_overlay(fabric, specs, bootstrap_stack, rng)

    duration = setup.duration_hours * HOUR
    overlay.schedule_churn(
        scheduler,
        duration=duration,
        restart_fraction=setup.restart_fraction,
        depart_fraction=setup.depart_fraction,
    )

    # Never mutate the caller's config object: campaigns derive their
    # own copy (duration and allowed space are campaign-scoped).
    crawler_config = copy.copy(setup.crawler)
    crawler_config.duration = duration
    if setup.restrict_to_blocklisted:
        allowed = PrefixSet(
            iter({slash24_of(ip) for ip in scenario.blocklisted_ips()})
        )
        crawler_config.allowed_space = allowed

    crawler_stack = HostStack(fabric, _CRAWLER_IP + index, rng)
    crawler = DhtCrawler(
        scheduler,
        crawler_stack.open_socket(),
        hub.stream(f"crawler-{index}"),
        crawler_config,
    )
    crawler.start([overlay.bootstrap_endpoint])
    scheduler.run_until(duration + HOUR)
    return crawler, overlay, fabric, scheduler, gateways


def _campaign_shard(shared: Tuple[Scenario, CrawlSetup], index: int) -> CrawlerView:
    """Worker entry: run one campaign, return its picklable snapshot."""
    scenario, setup = shared
    crawler = _run_campaign(scenario, setup, index)[0]
    return snapshot_crawler(crawler)


def run_crawl(
    scenario: Scenario,
    setup: Optional[CrawlSetup] = None,
    *,
    workers: int = 1,
) -> CrawlOutcome:
    """Run a full crawl campaign against ``scenario``'s DHT population.

    ``workers`` shards vantage-point campaigns across a process pool;
    ``workers=1`` runs them serially in-process and keeps the first
    campaign's live simulation objects on the outcome. Measurement
    products (logs, stats, sighted addresses) are bit-identical either
    way.
    """
    setup = setup or CrawlSetup()
    if setup.n_vantage_points < 1:
        raise ValueError("need at least one vantage point")

    if workers != 1 and setup.n_vantage_points > 1:
        views = map_shards(
            _campaign_shard,
            range(setup.n_vantage_points),
            workers=workers,
            shared=(scenario, setup),
        )
        return CrawlOutcome(
            crawler=views[0],
            overlay=None,
            fabric=None,
            scheduler=None,
            gateways=None,
            crawlers=list(views),
        )

    crawlers: List[DhtCrawler] = []
    first: Optional[Tuple] = None
    for index in range(setup.n_vantage_points):
        result = _run_campaign(scenario, setup, index)
        if first is None:
            first = result
        crawlers.append(result[0])
    assert first is not None
    _, overlay, fabric, scheduler, gateways = first
    return CrawlOutcome(
        crawler=crawlers[0],
        overlay=overlay,
        fabric=fabric,
        scheduler=scheduler,
        gateways=gateways,
        crawlers=crawlers,
    )
