"""Persistent, content-addressed cache of full reproduction runs.

A full run is a pure function of its :class:`RunConfig` — every draw
comes from seed-derived named streams — so its products can be reused
across processes, not just within one (the old in-memory memo). The
cache key is content-addressed twice over:

* the **config fingerprint** hashes the canonicalised ``RunConfig``
  tree (every nested dataclass field), so *any* parameter change —
  seed, scale, thresholds, vantage points — misses;
* the **code fingerprint** hashes every ``*.py`` file in the package,
  so editing the model invalidates all cached runs instead of serving
  stale results from an older implementation.

Artefacts are gzip-pickled :class:`FullRun` objects with live
simulation handles stripped (crawlers reduced to
:class:`~repro.experiments.btsetup.CrawlerView` snapshots — schedulers
hold closures and cannot pickle). Writes are atomic (temp file +
rename) and corrupt or unreadable entries fall back to recomputation,
so a killed process can never poison the cache.

The directory defaults to ``~/.cache/repro`` and is overridden by the
``RESULTS_CACHE_DIR`` environment variable (read per call, so tests
point it at a temp dir). ``repro cache stats|clear`` inspects it from
the command line.
"""

from __future__ import annotations

import dataclasses
import enum
import gzip
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from .btsetup import CrawlOutcome, snapshot_crawler

__all__ = [
    "cache_dir",
    "code_fingerprint",
    "config_fingerprint",
    "run_key",
    "entry_path",
    "has",
    "load",
    "store",
    "fetch",
    "cache_stats",
    "clear",
]

_ENV_VAR = "RESULTS_CACHE_DIR"
_STATS_FILE = "stats.json"
_SUFFIX = ".pkl.gz"


def cache_dir() -> Path:
    """The cache directory (not necessarily existing yet)."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


# -- fingerprints ----------------------------------------------------


def _canonical(value: Any) -> Any:
    """JSON-serialisable canonical form of a config tree.

    Only shapes that actually occur in configs are supported; anything
    else raises so a new un-canonicalisable field type becomes a loud
    error instead of a silent cache-key collision.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, enum.Enum):
        return {"__enum__": f"{type(value).__name__}.{value.name}"}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, "fields": fields}
    if isinstance(value, dict):
        return {
            "__dict__": sorted(
                (
                    [_canonical(key), _canonical(item)]
                    for key, item in value.items()
                ),
                key=json.dumps,
            )
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (_canonical(item) for item in value), key=json.dumps
            )
        }
    # PrefixSet and other iterable containers of dataclasses.
    try:
        items = list(value)
    except TypeError:
        raise TypeError(
            f"cannot canonicalise config value of type "
            f"{type(value).__name__}: {value!r}"
        ) from None
    return {
        "__container__": type(value).__name__,
        "items": sorted((_canonical(item) for item in items), key=json.dumps),
    }


def config_fingerprint(config: Any) -> str:
    """Hex digest of the canonicalised config tree."""
    text = json.dumps(_canonical(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Hex digest over every ``*.py`` file of the installed package.

    Computed once per process: the code cannot change under a running
    interpreter in any way that matters to already-imported modules.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def run_key(config: Any) -> str:
    """The content address of a run: config x code version."""
    return hashlib.sha256(
        f"{config_fingerprint(config)}:{code_fingerprint()}".encode()
    ).hexdigest()[:40]


def entry_path(config: Any) -> Path:
    """Where ``config``'s run artefact lives (existing or not).

    Consumers that only need to know *whether* a run is servable from
    cache — e.g. ``repro serve`` deciding between loading and
    recomputing — check this path instead of deserialising the entry.
    """
    return cache_dir() / f"run-{run_key(config)}{_SUFFIX}"


def has(config: Any) -> bool:
    """True when a cached artefact exists for ``config``."""
    try:
        return entry_path(config).is_file()
    except OSError:
        return False


# -- stats -----------------------------------------------------------


def _read_stats(directory: Path) -> Dict[str, int]:
    try:
        raw = json.loads((directory / _STATS_FILE).read_text())
        return {
            "hits": int(raw.get("hits", 0)),
            "misses": int(raw.get("misses", 0)),
        }
    except (OSError, ValueError):
        return {"hits": 0, "misses": 0}


def _bump(counter: str) -> None:
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        stats = _read_stats(directory)
        stats[counter] += 1
        (directory / _STATS_FILE).write_text(json.dumps(stats))
    except OSError:
        pass  # stats are best-effort; never fail a run over them


# -- load / store ----------------------------------------------------


def _strip_run(run: Any) -> Any:
    """Pickling-safe copy of a :class:`FullRun`.

    Live simulation objects (scheduler heaps full of closures, bound
    fabric handlers) cannot cross a pickle boundary; the measurement
    products can. Crawlers are reduced to snapshots, simulation handles
    dropped.
    """
    crawl = run.crawl
    stripped_crawl = CrawlOutcome(
        crawler=snapshot_crawler(crawl.crawler),
        overlay=None,
        fabric=None,
        scheduler=None,
        gateways=None,
        crawlers=[snapshot_crawler(c) for c in crawl.crawlers],
    )
    return dataclasses.replace(run, crawl=stripped_crawl)


def load(config: Any) -> Optional[Any]:
    """The cached :class:`FullRun` for ``config``, or ``None``.

    Any failure — missing entry, truncated gzip, unpicklable payload —
    is a miss; a corrupt file is deleted so the next store rewrites it.
    """
    path = entry_path(config)
    try:
        with gzip.open(path, "rb") as handle:
            run = pickle.load(handle)
    except FileNotFoundError:
        _bump("misses")
        return None
    except Exception:
        # Corrupt entry (killed writer predating atomic rename, bad
        # disk, version skew inside the pickle). Drop it and recompute.
        try:
            path.unlink()
        except OSError:
            pass
        _bump("misses")
        return None
    _bump("hits")
    return run


def store(config: Any, run: Any) -> Path:
    """Persist ``run`` under ``config``'s content address."""
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = entry_path(config)
    payload = _strip_run(run)
    handle, temp_name = tempfile.mkstemp(
        dir=directory, prefix="tmp-", suffix=_SUFFIX
    )
    try:
        with os.fdopen(handle, "wb") as raw:
            with gzip.open(raw, "wb", compresslevel=6) as compressed:
                pickle.dump(payload, compressed, pickle.HIGHEST_PROTOCOL)
        os.replace(temp_name, path)  # atomic: readers see old or new
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def fetch(config: Any, compute: Callable[[], Any]) -> Any:
    """Cached run for ``config``, computing and storing on a miss."""
    run = load(config)
    if run is None:
        run = compute()
        store(config, run)
    return run


# -- maintenance -----------------------------------------------------


def cache_stats() -> Dict[str, Any]:
    """Entry count, size on disk and hit/miss counters."""
    directory = cache_dir()
    exists = directory.is_dir()
    entries = sorted(directory.glob(f"run-*{_SUFFIX}")) if exists else []
    counters = _read_stats(directory)
    total = 0
    for path in entries:
        try:
            total += path.stat().st_size
        except OSError:
            pass  # entry vanished between glob and stat — fine
    return {
        "dir": str(directory),
        "exists": exists,
        "entries": len(entries),
        "bytes": total,
        "hits": counters["hits"],
        "misses": counters["misses"],
    }


def clear() -> int:
    """Delete every cache entry; returns how many were removed."""
    directory = cache_dir()
    if not directory.is_dir():
        return 0
    removed = 0
    for path in directory.glob(f"run-*{_SUFFIX}"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    try:
        (directory / _STATS_FILE).unlink()
    except OSError:
        pass
    return removed
