"""Deterministic sharded execution across a process pool.

The expensive stages of a full run decompose into independent work
units — one crawl campaign per vantage point, one census shard per
group of /24 blocks, one RIPE summary per probe group, one full run per
seed in a sensitivity sweep. This module runs such shards across a
``multiprocessing`` pool while keeping results **bit-identical to
serial execution**:

* shard functions are pure with respect to their inputs (each derives
  any randomness it needs from explicit seeds, never from shared
  mutable state);
* results are always returned in input order (``pool.map`` order, not
  completion order), so merging is stable regardless of worker count;
* ``workers=1`` bypasses the pool entirely and is the exact serial
  code path.

Workers are forked (POSIX): the parent installs the shard function,
the shared context object and the item list in a module global right
before forking, so children inherit them copy-on-write and nothing but
integer shard indices and pickled results ever crosses a process
boundary. Shared inputs can therefore hold arbitrarily large scenario
state; only each shard's *return value* must be picklable. On
platforms without ``fork`` the pool degrades to serial execution
rather than failing.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, List, Optional, Tuple

__all__ = [
    "available_parallelism",
    "resolve_workers",
    "map_shards",
]

#: (fn, shared, items) for the pool currently being served; forked
#: children read it, the parent clears it when the pool closes.
_ACTIVE: Optional[Tuple[Callable[[Any, Any], Any], Any, List[Any]]] = None

#: True inside a forked worker — nested map_shards calls run serially
#: instead of forking grandchildren.
_IN_WORKER = False


def available_parallelism() -> int:
    """Usable CPU count (minimum 1)."""
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` knob.

    ``None`` or ``0`` mean "use all available cores"; positive values
    are taken as-is; anything else is an error.
    """
    if workers is None or workers == 0:
        return available_parallelism()
    if not isinstance(workers, int) or workers < 0:
        raise ValueError(f"workers must be a non-negative int: {workers!r}")
    return workers


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _call_shard(index: int) -> Any:
    global _IN_WORKER
    _IN_WORKER = True
    assert _ACTIVE is not None
    fn, shared, items = _ACTIVE
    return fn(shared, items[index])


def map_shards(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    *,
    workers: int = 1,
    shared: Any = None,
) -> List[Any]:
    """Apply ``fn(shared, item)`` to every item, in input order.

    With ``workers=1`` (or one item, or inside a worker, or without
    ``fork``) this is exactly ``[fn(shared, item) for item in items]``.
    With more workers the items are distributed across a forked pool;
    the returned list is always ordered by input position, so callers
    merge deterministically no matter how shards raced.
    """
    items = list(items)
    workers = min(resolve_workers(workers), len(items))
    if workers <= 1 or _IN_WORKER or not _fork_available():
        return [fn(shared, item) for item in items]
    global _ACTIVE
    if _ACTIVE is not None:
        # A pool is already being served from this process (re-entrant
        # call outside a worker); don't clobber its context.
        return [fn(shared, item) for item in items]
    _ACTIVE = (fn, shared, items)
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=workers) as pool:
            return pool.map(_call_shard, range(len(items)))
    finally:
        _ACTIVE = None
