"""End-to-end reproduction runs.

``run_full`` executes the entire study against one scenario:

1. build the synthetic world (topology, population, abuse, feeds,
   Atlas logs);
2. run the BitTorrent crawl campaign and NAT detection;
3. run the RIPE dynamic-address pipeline;
4. run the Cai et al. census baseline;
5. join everything into the reuse analysis and headline report;
6. generate and tabulate the operator survey.

Runs are cached per preset so the benchmark suite (one bench per
figure/table) evaluates the expensive pipeline once per scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..baselines.icmp_census import CensusConfig, CensusResult, run_census
from ..core.report import HeadlineReport, build_report
from ..core.reuse import ReuseAnalysis
from ..internet.scenario import Scenario, ScenarioConfig, build_scenario
from ..natdetect.detector import NatDetectionResult, detect_nated
from ..ripe.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..survey.analyze import SurveySummary, summarize
from ..survey.generate import generate_responses
from ..survey.model import SurveyResponse
from .btsetup import CrawlOutcome, CrawlSetup, run_crawl
from .parallel import map_shards, resolve_workers

__all__ = [
    "RunConfig",
    "FullRun",
    "run_full",
    "cached_run",
    "preset_config",
    "sweep_headlines",
]


@dataclass
class RunConfig:
    """One full reproduction run."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig.default)
    crawl: CrawlSetup = field(default_factory=CrawlSetup)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    census: CensusConfig = field(default_factory=CensusConfig)

    @classmethod
    def small(cls, seed: int = 2020) -> "RunConfig":
        """Test-scale run (seconds). Single vantage point, pinned:
        the regression goldens fingerprint this preset."""
        return cls(
            scenario=ScenarioConfig.small(seed),
            crawl=CrawlSetup(duration_hours=8.0, n_vantage_points=1),
        )

    @classmethod
    def default(cls, seed: int = 2020) -> "RunConfig":
        """Benchmark-scale run. Four crawler vantage points — the
        paper's multi-vantage scaling suggestion, and the unit the
        parallel runner shards across workers."""
        return cls(
            scenario=ScenarioConfig.default(seed),
            crawl=CrawlSetup(n_vantage_points=4),
        )

    @classmethod
    def large(cls, seed: int = 2020) -> "RunConfig":
        """~4x default scale (minutes)."""
        return cls(
            scenario=ScenarioConfig.large(seed),
            crawl=CrawlSetup(n_vantage_points=4),
        )


@dataclass
class FullRun:
    """All products of one run."""

    config: RunConfig
    scenario: Scenario
    crawl: CrawlOutcome
    nat: NatDetectionResult
    pipeline: PipelineResult
    census: CensusResult
    analysis: ReuseAnalysis
    report: HeadlineReport
    survey_responses: List[SurveyResponse]
    survey_summary: SurveySummary


def run_full(
    config: Optional[RunConfig] = None,
    *,
    workers: int = 1,
) -> FullRun:
    """Execute the whole study for ``config``.

    ``workers`` shards the run's independent work units — crawl
    campaigns per vantage point, RIPE grouping per probe, census
    probing per /24 block — across a process pool. Results are
    bit-identical to ``workers=1``, which is the exact serial path.
    """
    resolve_workers(workers)  # reject bad counts before the build
    config = config or RunConfig.default()
    scenario = build_scenario(config.scenario)

    crawl = run_crawl(scenario, config.crawl, workers=workers)
    nat = detect_nated(crawl.merged_log())

    pipeline = run_pipeline(
        scenario.atlas_log,
        scenario.truth.asdb,
        config.pipeline,
        workers=workers,
    )
    census = run_census(
        scenario.truth,
        config.census,
        scenario.hub.stream("census"),
        workers=workers,
    )

    analysis = ReuseAnalysis(
        scenario.listings,
        scenario.windows,
        nat,
        pipeline,
        scenario.truth.asdb,
        bittorrent_ips=crawl.bittorrent_ips(),
    )
    report = build_report(
        analysis,
        all_list_ids=[info.list_id for info in scenario.catalog],
    )
    survey_responses = generate_responses(scenario.hub.stream("survey"))
    survey_summary = summarize(survey_responses)
    return FullRun(
        config=config,
        scenario=scenario,
        crawl=crawl,
        nat=nat,
        pipeline=pipeline,
        census=census,
        analysis=analysis,
        report=report,
        survey_responses=survey_responses,
        survey_summary=survey_summary,
    )


def preset_config(preset: str, seed: int = 2020) -> RunConfig:
    """The :class:`RunConfig` behind a named preset."""
    if preset == "small":
        return RunConfig.small(seed)
    if preset == "default":
        return RunConfig.default(seed)
    if preset == "large":
        return RunConfig.large(seed)
    raise ValueError(f"unknown preset {preset!r}")


def _sweep_shard(preset: str, seed: int) -> Tuple[int, HeadlineReport]:
    """One seed of a sensitivity sweep: run everything, keep only the
    picklable headline report."""
    return seed, run_full(preset_config(preset, seed)).report


def sweep_headlines(
    preset: str = "small",
    seeds: Iterable[int] = (2019, 2020, 2021),
    *,
    workers: int = 1,
) -> List[Tuple[int, HeadlineReport]]:
    """Headline reports across seeds (robustness sweeps, Table 5-style
    sensitivity checks). Each seed is an independent full run, so the
    sweep shards across a process pool; the returned list follows the
    input seed order regardless of worker count."""
    return map_shards(
        _sweep_shard, list(seeds), workers=workers, shared=preset
    )


_CACHE: Dict[str, FullRun] = {}


def cached_run(preset: str = "default", seed: int = 2020) -> FullRun:
    """Memoised full run for a named preset.

    Two layers: an in-process memo (same object back within one
    process — benches and test fixtures share it) over the persistent
    content-addressed cache in :mod:`repro.experiments.cache`, which
    survives process boundaries and invalidates on any config or code
    change. A persistent hit carries :class:`CrawlerView` snapshots
    instead of live simulation objects.
    """
    from . import cache as results_cache

    key = f"{preset}:{seed}"
    run = _CACHE.get(key)
    if run is None:
        config = preset_config(preset, seed)
        run = results_cache.fetch(config, lambda: run_full(config))
        _CACHE[key] = run
    return run
