"""End-to-end reproduction runs.

``run_full`` executes the entire study against one scenario:

1. build the synthetic world (topology, population, abuse, feeds,
   Atlas logs);
2. run the BitTorrent crawl campaign and NAT detection;
3. run the RIPE dynamic-address pipeline;
4. run the Cai et al. census baseline;
5. join everything into the reuse analysis and headline report;
6. generate and tabulate the operator survey.

Runs are cached per preset so the benchmark suite (one bench per
figure/table) evaluates the expensive pipeline once per scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..baselines.icmp_census import CensusConfig, CensusResult, run_census
from ..core.report import HeadlineReport, build_report
from ..core.reuse import ReuseAnalysis
from ..internet.scenario import Scenario, ScenarioConfig, build_scenario
from ..natdetect.detector import NatDetectionResult, detect_nated
from ..ripe.pipeline import PipelineConfig, PipelineResult, run_pipeline
from ..survey.analyze import SurveySummary, summarize
from ..survey.generate import generate_responses
from ..survey.model import SurveyResponse
from .btsetup import CrawlOutcome, CrawlSetup, run_crawl

__all__ = ["RunConfig", "FullRun", "run_full", "cached_run"]


@dataclass
class RunConfig:
    """One full reproduction run."""

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig.default)
    crawl: CrawlSetup = field(default_factory=CrawlSetup)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    census: CensusConfig = field(default_factory=CensusConfig)

    @classmethod
    def small(cls, seed: int = 2020) -> "RunConfig":
        """Test-scale run (seconds)."""
        return cls(
            scenario=ScenarioConfig.small(seed),
            crawl=CrawlSetup(duration_hours=8.0),
        )

    @classmethod
    def default(cls, seed: int = 2020) -> "RunConfig":
        """Benchmark-scale run."""
        return cls(scenario=ScenarioConfig.default(seed))

    @classmethod
    def large(cls, seed: int = 2020) -> "RunConfig":
        """~4x default scale (minutes)."""
        return cls(scenario=ScenarioConfig.large(seed))


@dataclass
class FullRun:
    """All products of one run."""

    config: RunConfig
    scenario: Scenario
    crawl: CrawlOutcome
    nat: NatDetectionResult
    pipeline: PipelineResult
    census: CensusResult
    analysis: ReuseAnalysis
    report: HeadlineReport
    survey_responses: List[SurveyResponse]
    survey_summary: SurveySummary


def run_full(config: Optional[RunConfig] = None) -> FullRun:
    """Execute the whole study for ``config``."""
    config = config or RunConfig.default()
    scenario = build_scenario(config.scenario)

    crawl = run_crawl(scenario, config.crawl)
    nat = detect_nated(crawl.merged_log())

    pipeline = run_pipeline(
        scenario.atlas_log, scenario.truth.asdb, config.pipeline
    )
    census = run_census(
        scenario.truth, config.census, scenario.hub.stream("census")
    )

    analysis = ReuseAnalysis(
        scenario.listings,
        scenario.windows,
        nat,
        pipeline,
        scenario.truth.asdb,
        bittorrent_ips=crawl.bittorrent_ips(),
    )
    report = build_report(
        analysis,
        all_list_ids=[info.list_id for info in scenario.catalog],
    )
    survey_responses = generate_responses(scenario.hub.stream("survey"))
    survey_summary = summarize(survey_responses)
    return FullRun(
        config=config,
        scenario=scenario,
        crawl=crawl,
        nat=nat,
        pipeline=pipeline,
        census=census,
        analysis=analysis,
        report=report,
        survey_responses=survey_responses,
        survey_summary=survey_summary,
    )


_CACHE: Dict[str, FullRun] = {}


def cached_run(preset: str = "default", seed: int = 2020) -> FullRun:
    """Run once per (preset, seed) per process; benches share this."""
    key = f"{preset}:{seed}"
    run = _CACHE.get(key)
    if run is None:
        if preset == "small":
            config = RunConfig.small(seed)
        elif preset == "default":
            config = RunConfig.default(seed)
        elif preset == "large":
            config = RunConfig.large(seed)
        else:
            raise ValueError(f"unknown preset {preset!r}")
        run = run_full(config)
        _CACHE[key] = run
    return run
