"""Detection-quality scoring against ground truth.

The original study could only argue its techniques are precise; a
ground-truthed reproduction can *measure* it. These helpers score any
detector output (sets of addresses or prefixes) against the synthetic
truth and are used by the ablation benchmarks and the validation
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, TypeVar

__all__ = ["DetectionScore", "score_sets"]

T = TypeVar("T")


@dataclass(frozen=True)
class DetectionScore:
    """Standard binary detection metrics."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def detected(self) -> int:
        """Total items the detector reported."""
        return self.true_positives + self.false_positives

    @property
    def precision(self) -> float:
        """TP / detected (1.0 for an empty detection — nothing wrong
        was claimed)."""
        if self.detected == 0:
            return 1.0
        return self.true_positives / self.detected

    @property
    def recall(self) -> float:
        """TP / truth (1.0 when there was nothing to find)."""
        truth = self.true_positives + self.false_negatives
        if truth == 0:
            return 1.0
        return self.true_positives / truth

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    def as_row(self) -> tuple:
        """(detected, TP, FP, precision, recall) for table rendering."""
        return (
            self.detected,
            self.true_positives,
            self.false_positives,
            round(self.precision, 3),
            round(self.recall, 3),
        )


def score_sets(
    detected: AbstractSet[T], truth: AbstractSet[T]
) -> DetectionScore:
    """Score a detected set against the ground-truth set."""
    tp = len(detected & truth)
    return DetectionScore(
        true_positives=tp,
        false_positives=len(detected) - tp,
        false_negatives=len(truth) - tp,
    )
