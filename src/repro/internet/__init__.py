"""Synthetic internet ground truth: topology, population, churn, abuse."""

from .addressplan import RESERVED_PREFIXES, AddressCursor, iter_public_slash16s
from .topology import RegionMix, Topology, TopologyConfig, build_topology
from .dhcp import AssignmentTimeline, DhcpPool, LineChurnSpec
from .groundtruth import (
    ADDRESSING_DYNAMIC,
    ADDRESSING_STATIC,
    NAT_CGN,
    NAT_HOME,
    NAT_NONE,
    GroundTruth,
    LineInfo,
    UserInfo,
)
from .population import PopulationConfig, build_population
from .abuse import AbuseCategory, AbuseConfig, AbuseEvent, generate_abuse
from .scenario import PAPER_WINDOWS, Scenario, ScenarioConfig, build_scenario
from .serialize import (
    load_listings,
    load_truth,
    save_listings,
    save_truth,
    truth_from_dict,
    truth_to_dict,
)

__all__ = [
    "RESERVED_PREFIXES",
    "AddressCursor",
    "iter_public_slash16s",
    "RegionMix",
    "Topology",
    "TopologyConfig",
    "build_topology",
    "AssignmentTimeline",
    "DhcpPool",
    "LineChurnSpec",
    "ADDRESSING_DYNAMIC",
    "ADDRESSING_STATIC",
    "NAT_CGN",
    "NAT_HOME",
    "NAT_NONE",
    "GroundTruth",
    "LineInfo",
    "UserInfo",
    "PopulationConfig",
    "build_population",
    "AbuseCategory",
    "AbuseConfig",
    "AbuseEvent",
    "generate_abuse",
    "PAPER_WINDOWS",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "load_listings",
    "load_truth",
    "save_listings",
    "save_truth",
    "truth_from_dict",
    "truth_to_dict",
]
