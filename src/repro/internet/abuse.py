"""Abuse-actor model: who is compromised and what they emit.

Produces the stream of malicious-activity events that blocklist feeds
observe. Three empirical regularities from the paper (and the work it
cites) are baked in:

* abuse concentrates in a few ASes (top-10 ASes hold 27.7% of listings)
  — per-AS Zipf badness multipliers;
* devices using P2P are more likely compromised (DeKoven et al., cited
  in Section 4 to explain the BitTorrent/blocklist overlap) — a higher
  compromise rate for BitTorrent users;
* a compromised host on a *dynamic* line smears its activity across
  many addresses, each tainted only briefly — which is exactly what
  makes blocklisting dynamic space unjust.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..net.asdb import ASKind
from ..sim.rng import zipf_weights
from .groundtruth import ADDRESSING_DYNAMIC, GroundTruth, UserInfo

__all__ = [
    "AbuseCategory",
    "AbuseEvent",
    "AbuseConfig",
    "event_sort_key",
    "generate_abuse",
]


class AbuseCategory:
    """Malicious-activity categories blocklists specialise in."""

    SPAM = "spam"
    BRUTEFORCE = "bruteforce"
    DDOS = "ddos"
    MALWARE = "malware"
    SCAN = "scan"
    REPUTATION = "reputation"

    ALL = (SPAM, BRUTEFORCE, DDOS, MALWARE, SCAN, REPUTATION)


@dataclass(frozen=True)
class AbuseEvent:
    """One day of malicious activity from one source address."""

    day: int
    ip: int
    user_key: str
    category: str

    def __post_init__(self) -> None:
        if self.category not in AbuseCategory.ALL:
            raise ValueError(f"unknown abuse category {self.category!r}")


def event_sort_key(event: AbuseEvent) -> Tuple[int, int, str]:
    """Canonical feed order for abuse-event streams.

    Every producer (the calibrated model here, the adversary scenarios
    in :mod:`repro.adversary`) sorts with this key so feed generation
    sees one well-defined order regardless of how the events were
    simulated."""
    return (event.day, event.ip, event.category)


@dataclass
class AbuseConfig:
    """Abuse model knobs."""

    #: Compromise probability for BitTorrent vs other eyeball users.
    compromise_rate_bt: float = 0.09
    compromise_rate_other: float = 0.015
    #: Users on dynamically-addressed lines are compromised more often
    #: — spam correlates with dynamic space (Wilcox et al., Xie et al.,
    #: cited in Appendix A).
    compromise_rate_dynamic: float = 0.065
    #: Hosting servers (malware distribution, scanners) are dirtier.
    compromise_rate_hosting: float = 0.15
    #: Zipf exponent for per-AS badness concentration.
    as_badness_exponent: float = 1.1
    #: Campaigns per compromised user over the active periods.
    campaigns_per_user_range: Tuple[int, int] = (1, 3)
    #: Mean campaign length in days (exponential, min 1 day).
    campaign_duration_mean_days: float = 4.5
    #: A minority of compromised hosts run long-lived campaigns; they
    #: produce the listings that stay for a whole collection window
    #: (the paper's worst case: 44 days).
    persistent_fraction: float = 0.06
    persistent_duration_mean_days: float = 40.0
    #: Periods (start_day, end_day) when campaigns start. Defaults pad
    #: the paper's two collection windows (days 214–253 and 453–497
    #: from the 2019-01-01 epoch) by a week on each side.
    activity_periods: Sequence[Tuple[float, float]] = (
        (207.0, 253.0),
        (446.0, 497.0),
    )


def _badness_by_asn(
    truth: GroundTruth, exponent: float, rng: random.Random
) -> Dict[int, float]:
    """Zipf badness multipliers, shuffled across eyeball ASes and
    normalised to mean 1."""
    eyeballs = [
        record.asn
        for record in truth.asdb
        if record.kind == ASKind.EYEBALL
    ]
    if not eyeballs:
        return {}
    weights = list(zipf_weights(len(eyeballs), exponent))
    mean = sum(weights) / len(weights)
    multipliers = [w / mean for w in weights]
    rng.shuffle(eyeballs)
    return dict(zip(eyeballs, multipliers))


def generate_abuse(
    truth: GroundTruth,
    config: AbuseConfig,
    rng: random.Random,
) -> List[AbuseEvent]:
    """Flag compromised users in ``truth`` and return their activity.

    Mutates ``UserInfo.compromised`` in place (the ground truth should
    know who is bad) and returns the day-granular event stream feeds
    consume.
    """
    badness = _badness_by_asn(truth, config.as_badness_exponent, rng)
    hosting_asns = {
        record.asn
        for record in truth.asdb
        if record.kind == ASKind.HOSTING
    }
    events: List[AbuseEvent] = []
    for user in truth.users.values():
        line = truth.lines[user.line_key]
        if line.asn in hosting_asns:
            rate = config.compromise_rate_hosting
        elif line.addressing == ADDRESSING_DYNAMIC:
            rate = config.compromise_rate_dynamic * badness.get(line.asn, 1.0)
        elif user.runs_bittorrent:
            rate = config.compromise_rate_bt * badness.get(line.asn, 1.0)
        else:
            rate = config.compromise_rate_other * badness.get(line.asn, 1.0)
        if rng.random() >= min(rate, 1.0):
            continue
        user.compromised = True
        events.extend(_user_campaigns(truth, user, config, rng))
    events.sort(key=event_sort_key)
    return events


def _pick_category(
    user: UserInfo, truth: GroundTruth, rng: random.Random
) -> str:
    line = truth.lines[user.line_key]
    record = truth.asdb.get(line.asn)
    if record is not None and record.kind == ASKind.HOSTING:
        return rng.choices(
            [AbuseCategory.MALWARE, AbuseCategory.SCAN],
            weights=[0.7, 0.3],
        )[0]
    if line.addressing == ADDRESSING_DYNAMIC:
        # Residential dynamic lines: spam-heavy, with a malware-C2
        # slice (infected home devices), spreading dynamic reuse
        # across more list categories.
        return rng.choices(
            [
                AbuseCategory.SPAM,
                AbuseCategory.BRUTEFORCE,
                AbuseCategory.DDOS,
                AbuseCategory.SCAN,
                AbuseCategory.REPUTATION,
                AbuseCategory.MALWARE,
            ],
            weights=[0.40, 0.18, 0.08, 0.09, 0.14, 0.11],
        )[0]
    return rng.choices(
        [
            AbuseCategory.SPAM,
            AbuseCategory.BRUTEFORCE,
            AbuseCategory.DDOS,
            AbuseCategory.SCAN,
            AbuseCategory.REPUTATION,
        ],
        weights=[0.45, 0.2, 0.1, 0.1, 0.15],
    )[0]


def _user_campaigns(
    truth: GroundTruth,
    user: UserInfo,
    config: AbuseConfig,
    rng: random.Random,
) -> List[AbuseEvent]:
    events: List[AbuseEvent] = []
    n_campaigns = rng.randint(*config.campaigns_per_user_range)
    persistent = rng.random() < config.persistent_fraction
    for _ in range(n_campaigns):
        period = rng.choice(list(config.activity_periods))
        start = rng.uniform(*period)
        mean_days = (
            config.persistent_duration_mean_days
            if persistent
            else config.campaign_duration_mean_days
        )
        duration = max(1, round(rng.expovariate(1.0 / mean_days)))
        category = _pick_category(user, truth, rng)
        for offset in range(duration):
            day = int(start) + offset
            if day >= truth.horizon_days:
                break
            # The activity leaves the address the line holds that day.
            ip = truth.ip_of_line(user.line_key, day + 0.5)
            if ip is None:
                continue
            events.append(
                AbuseEvent(
                    day=day, ip=ip, user_key=user.key, category=category
                )
            )
    return events
