"""Global address-space planning for the synthetic internet.

Carves the public IPv4 space into /16 blocks handed to ASes, skipping
everything reserved (RFC 1918, loopback, CGN shared space, multicast,
...). Inside an AS, an :class:`AddressCursor` hands out /24-aligned
sub-blocks and individual addresses, which keeps the ground-truth
"dynamic pool" boundaries exactly /24-aligned or coarser — the paper's
unit of analysis.
"""

from __future__ import annotations

from typing import Iterator, List

from ..net.ipv4 import MAX_IPV4, Prefix

__all__ = ["RESERVED_PREFIXES", "iter_public_slash16s", "AddressCursor"]

#: Prefixes never handed to the synthetic topology.
RESERVED_PREFIXES = (
    Prefix.from_text("0.0.0.0/8"),
    Prefix.from_text("10.0.0.0/8"),
    Prefix.from_text("100.64.0.0/10"),
    Prefix.from_text("127.0.0.0/8"),
    Prefix.from_text("169.254.0.0/16"),
    Prefix.from_text("172.16.0.0/12"),
    Prefix.from_text("192.0.2.0/24"),
    Prefix.from_text("192.168.0.0/16"),
    Prefix.from_text("198.18.0.0/15"),
    Prefix.from_text("203.0.113.0/24"),
    Prefix.from_text("224.0.0.0/3"),
)


def _is_reserved(prefix: Prefix) -> bool:
    return any(
        reserved.contains_prefix(prefix) or prefix.contains_prefix(reserved)
        for reserved in RESERVED_PREFIXES
    )


def iter_public_slash16s() -> Iterator[Prefix]:
    """Yield assignable /16 blocks in address order, skipping reserved
    space. (There are ~57K of them — far more than any scenario uses.)"""
    step = 1 << 16
    for network in range(0, MAX_IPV4 + 1, step):
        candidate = Prefix(network, 16)
        if not _is_reserved(candidate):
            yield candidate


class AddressCursor:
    """Sequential allocator over a list of prefixes owned by one AS.

    Allocation is strictly increasing, /24-block requests are aligned,
    and exhaustion raises — silently wrapping around would alias two
    "different" hosts onto one address and corrupt the ground truth.
    """

    def __init__(self, prefixes: List[Prefix]) -> None:
        if not prefixes:
            raise ValueError("cursor needs at least one prefix")
        self._prefixes = sorted(prefixes, key=lambda p: p.network)
        self._index = 0
        self._next = self._prefixes[0].first()

    def _advance_block(self) -> None:
        self._index += 1
        if self._index >= len(self._prefixes):
            raise RuntimeError("address space exhausted for this AS")
        self._next = self._prefixes[self._index].first()

    def take_address(self) -> int:
        """Allocate the next single address."""
        while self._next > self._prefixes[self._index].last():
            self._advance_block()
        address = self._next
        self._next += 1
        return address

    def take_slash24s(self, count: int) -> List[Prefix]:
        """Allocate ``count`` consecutive aligned /24 blocks."""
        if count <= 0:
            raise ValueError(f"need a positive block count, got {count}")
        # Align up to the next /24 boundary inside the current prefix.
        while True:
            aligned = (self._next + 0xFF) & 0xFFFFFF00
            current = self._prefixes[self._index]
            if aligned + count * 256 - 1 <= current.last():
                break
            self._advance_block()
        blocks = [Prefix(aligned + i * 256, 24) for i in range(count)]
        self._next = aligned + count * 256
        return blocks

    def remaining_in_current(self) -> int:
        """Addresses left in the currently-open prefix (diagnostics)."""
        return max(0, self._prefixes[self._index].last() - self._next + 1)
