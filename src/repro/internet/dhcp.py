"""Dynamic address allocation (DHCP pool) ground truth.

Each pool owns a set of /24-aligned blocks inside one AS and a set of
subscriber lines. Lines re-draw a random free address at exponentially
distributed intervals; the pool guarantees exclusivity (no two lines
hold one address at the same time). The per-line
:class:`AssignmentTimeline` is the ground truth that both the RIPE log
simulator and the abuse model read — and the reason "unjust blocking"
emerges organically: an address listed while line A held it is later
drawn by line B.
"""

from __future__ import annotations

import bisect
import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..net.ipv4 import Prefix

__all__ = ["AssignmentTimeline", "LineChurnSpec", "DhcpPool"]


class AssignmentTimeline:
    """The sequence of (start_day, ip) assignments of one line.

    Times are in days since the scenario epoch. A static line is simply
    a timeline with one entry.
    """

    __slots__ = ("_starts", "_ips", "horizon")

    def __init__(
        self, entries: Sequence[Tuple[float, int]], horizon: float
    ) -> None:
        if not entries:
            raise ValueError("a line must hold at least one address")
        starts = [t for t, _ in entries]
        if starts != sorted(starts):
            raise ValueError("timeline entries must be time-ordered")
        if horizon < starts[-1]:
            raise ValueError("horizon precedes the last assignment")
        self._starts: List[float] = starts
        self._ips: List[int] = [ip for _, ip in entries]
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self._starts)

    def ip_at(self, day: float) -> Optional[int]:
        """Address held at time ``day`` (None before the first
        assignment or past the horizon)."""
        if day < self._starts[0] or day > self.horizon:
            return None
        index = bisect.bisect_right(self._starts, day) - 1
        return self._ips[index]

    def addresses(self) -> Set[int]:
        """Every distinct address the line ever held."""
        return set(self._ips)

    def change_count(self) -> int:
        """Number of address *changes* (allocations minus one)."""
        return len(self._starts) - 1

    def allocation_count(self) -> int:
        """Number of allocations (what the paper's Figure 2 counts)."""
        return len(self._starts)

    def mean_holding_days(self) -> float:
        """Average time between consecutive address changes.

        The paper's "frequency of IP address change" criterion keeps
        probes whose average inter-change duration is within one day.
        For a single-assignment line this is the full horizon.
        """
        if len(self._starts) == 1:
            return self.horizon - self._starts[0]
        span = self._starts[-1] - self._starts[0]
        return span / (len(self._starts) - 1)

    def intervals(self) -> Iterator[Tuple[float, float, int]]:
        """Yield (start, end, ip) holdings; the last ends at horizon."""
        for index, start in enumerate(self._starts):
            end = (
                self._starts[index + 1]
                if index + 1 < len(self._starts)
                else self.horizon
            )
            yield start, end, self._ips[index]


@dataclass(frozen=True)
class LineChurnSpec:
    """Churn profile of one dynamic line."""

    line_key: str
    #: Mean days between address changes (exponential draw).
    mean_interchange_days: float

    def __post_init__(self) -> None:
        if self.mean_interchange_days <= 0:
            raise ValueError(
                f"mean inter-change must be positive, got "
                f"{self.mean_interchange_days}"
            )


@dataclass
class DhcpPool:
    """One dynamically-allocated address pool (ground truth)."""

    pool_id: str
    asn: int
    prefixes: List[Prefix]
    timelines: Dict[str, AssignmentTimeline] = field(default_factory=dict)

    def addresses(self) -> List[int]:
        """Every address the pool manages."""
        out: List[int] = []
        for prefix in self.prefixes:
            out.extend(prefix.addresses())
        return out

    def slash24s(self) -> List[Prefix]:
        """The /24 blocks this pool spans (ground-truth dynamic /24s)."""
        blocks: Set[Prefix] = set()
        for prefix in self.prefixes:
            if prefix.length >= 24:
                blocks.add(Prefix(prefix.network & 0xFFFFFF00, 24))
            else:
                blocks.update(prefix.subprefixes(24))
        return sorted(blocks, key=lambda p: p.network)

    def simulate(
        self,
        lines: Sequence[LineChurnSpec],
        horizon_days: float,
        rng: random.Random,
    ) -> None:
        """Simulate churn for ``lines`` over ``horizon_days``.

        Populates :attr:`timelines`. The pool must be larger than the
        line count (ISPs over-provision pools; exhaustion would break
        the exclusivity guarantee).
        """
        if horizon_days <= 0:
            raise ValueError(f"horizon must be positive: {horizon_days}")
        pool_addresses = self.addresses()
        if len(lines) >= len(pool_addresses):
            raise ValueError(
                f"pool {self.pool_id}: {len(lines)} lines need more than "
                f"{len(pool_addresses)} addresses"
            )
        free = list(pool_addresses)
        rng.shuffle(free)
        entries: Dict[str, List[Tuple[float, int]]] = {}
        heap: List[Tuple[float, int, str, float]] = []
        for order, spec in enumerate(lines):
            ip = free.pop()
            entries[spec.line_key] = [(0.0, ip)]
            next_change = rng.expovariate(1.0 / spec.mean_interchange_days)
            heapq.heappush(
                heap,
                (next_change, order, spec.line_key, spec.mean_interchange_days),
            )
        while heap:
            when, order, line_key, mean = heapq.heappop(heap)
            if when >= horizon_days:
                continue
            held = entries[line_key][-1][1]
            # Release-then-draw, excluding an immediate re-draw of the
            # same address (a renewal, not a change).
            replacement_index = rng.randrange(len(free))
            replacement = free[replacement_index]
            free[replacement_index] = held
            entries[line_key].append((when, replacement))
            next_change = when + rng.expovariate(1.0 / mean)
            heapq.heappush(heap, (next_change, order, line_key, mean))
        for line_key, line_entries in entries.items():
            self.timelines[line_key] = AssignmentTimeline(
                line_entries, horizon_days
            )

    def line_holding(self, ip: int, day: float) -> Optional[str]:
        """Which line held ``ip`` at ``day`` (reverse lookup; None when
        the address was in the free set)."""
        for line_key, timeline in self.timelines.items():
            if timeline.ip_at(day) == ip:
                return line_key
        return None
