"""Ground-truth container for the synthetic internet.

Everything detection techniques try to *infer* — which IPs are NATed,
how many users share them, which /24s are dynamically allocated — is
recorded here explicitly, so precision/recall of the reproduction's
detectors can be measured (something the original live study could not
do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..net.asdb import ASDatabase
from ..net.ipv4 import Prefix, slash24_of
from .dhcp import DhcpPool

__all__ = [
    "ADDRESSING_STATIC",
    "ADDRESSING_DYNAMIC",
    "NAT_NONE",
    "NAT_HOME",
    "NAT_CGN",
    "UserInfo",
    "LineInfo",
    "GroundTruth",
]

ADDRESSING_STATIC = "static"
ADDRESSING_DYNAMIC = "dynamic"
NAT_NONE = "none"
NAT_HOME = "home"
NAT_CGN = "cgn"


@dataclass
class UserInfo:
    """One end user (or server)."""

    key: str
    line_key: str
    runs_bittorrent: bool = False
    #: For NATed BitTorrent users: is the mapping crawler-reachable
    #: (full-cone / port-forwarded)?
    reachable: bool = True
    compromised: bool = False


@dataclass
class LineInfo:
    """One access line: the unit that holds a public IP address."""

    key: str
    asn: int
    addressing: str = ADDRESSING_STATIC
    nat: str = NAT_NONE
    pool_id: Optional[str] = None
    static_ip: Optional[int] = None
    user_keys: List[str] = field(default_factory=list)
    country: str = "XX"

    def __post_init__(self) -> None:
        if self.addressing not in (ADDRESSING_STATIC, ADDRESSING_DYNAMIC):
            raise ValueError(f"bad addressing {self.addressing!r}")
        if self.nat not in (NAT_NONE, NAT_HOME, NAT_CGN):
            raise ValueError(f"bad NAT kind {self.nat!r}")
        if self.addressing == ADDRESSING_STATIC and self.static_ip is None:
            raise ValueError(f"static line {self.key} needs an address")
        if self.addressing == ADDRESSING_DYNAMIC and self.pool_id is None:
            raise ValueError(f"dynamic line {self.key} needs a pool")


class GroundTruth:
    """The synthetic internet's factual record."""

    def __init__(self, asdb: ASDatabase, horizon_days: float) -> None:
        if horizon_days <= 0:
            raise ValueError(f"horizon must be positive: {horizon_days}")
        self.asdb = asdb
        self.horizon_days = horizon_days
        self.lines: Dict[str, LineInfo] = {}
        self.users: Dict[str, UserInfo] = {}
        self.pools: Dict[str, DhcpPool] = {}

    # -- construction ---------------------------------------------------

    def add_line(self, line: LineInfo) -> None:
        """Register a line (keys must be unique)."""
        if line.key in self.lines:
            raise ValueError(f"duplicate line key {line.key!r}")
        self.lines[line.key] = line

    def add_user(self, user: UserInfo) -> None:
        """Register a user and attach it to its line."""
        if user.key in self.users:
            raise ValueError(f"duplicate user key {user.key!r}")
        line = self.lines.get(user.line_key)
        if line is None:
            raise KeyError(f"user {user.key} references unknown line")
        self.users[user.key] = user
        line.user_keys.append(user.key)

    def add_pool(self, pool: DhcpPool) -> None:
        """Register a DHCP pool."""
        if pool.pool_id in self.pools:
            raise ValueError(f"duplicate pool id {pool.pool_id!r}")
        self.pools[pool.pool_id] = pool

    # -- address resolution ----------------------------------------------

    def ip_of_line(self, line_key: str, day: float) -> Optional[int]:
        """Public address of ``line_key`` at time ``day``."""
        line = self.lines[line_key]
        if line.addressing == ADDRESSING_STATIC:
            return line.static_ip
        pool = self.pools[line.pool_id]  # type: ignore[index]
        timeline = pool.timelines.get(line_key)
        return None if timeline is None else timeline.ip_at(day)

    def users_of_line(self, line_key: str) -> List[UserInfo]:
        """User records attached to a line."""
        return [self.users[k] for k in self.lines[line_key].user_keys]

    # -- NAT ground truth -------------------------------------------------

    def nat_lines(self) -> Iterator[LineInfo]:
        """Lines with any form of address sharing."""
        return (l for l in self.lines.values() if l.nat != NAT_NONE)

    def true_nated_ips(self) -> Dict[int, int]:
        """Ground truth: IP → number of concurrent users (≥2) sharing
        it. Only static NAT lines share addresses in this model."""
        out: Dict[int, int] = {}
        for line in self.nat_lines():
            if line.static_ip is not None and len(line.user_keys) >= 2:
                out[line.static_ip] = len(line.user_keys)
        return out

    def bt_users_behind(self, line: LineInfo) -> List[UserInfo]:
        """BitTorrent users on a line."""
        return [
            self.users[k]
            for k in line.user_keys
            if self.users[k].runs_bittorrent
        ]

    def detectable_nated_ips(self) -> Dict[int, int]:
        """IPs a perfect BitTorrent crawler could prove NATed: ≥2
        *reachable* BitTorrent users behind one address. The crawler's
        findings are bounded above by this set."""
        out: Dict[int, int] = {}
        for line in self.nat_lines():
            if line.static_ip is None:
                continue
            reachable_bt = [
                u for u in self.bt_users_behind(line) if u.reachable
            ]
            if len(reachable_bt) >= 2:
                out[line.static_ip] = len(reachable_bt)
        return out

    # -- dynamic ground truth ----------------------------------------------

    def dynamic_slash24s(self) -> Set[Prefix]:
        """Ground truth: every /24 under dynamic allocation."""
        blocks: Set[Prefix] = set()
        for pool in self.pools.values():
            blocks.update(pool.slash24s())
        return blocks

    def fast_dynamic_slash24s(self, max_mean_days: float = 1.0) -> Set[Prefix]:
        """Dynamic /24s whose pool has at least one line changing
        addresses at most every ``max_mean_days`` on average — the
        population the paper's daily-change criterion targets."""
        blocks: Set[Prefix] = set()
        for pool in self.pools.values():
            if any(
                t.change_count() > 0 and t.mean_holding_days() <= max_mean_days
                for t in pool.timelines.values()
            ):
                blocks.update(pool.slash24s())
        return blocks

    def is_dynamic_ip(self, ip: int) -> bool:
        """True when ``ip`` belongs to any dynamic pool."""
        block = slash24_of(ip)
        return block in self.dynamic_slash24s()

    # -- population summaries ----------------------------------------------

    def bittorrent_lines(self) -> List[LineInfo]:
        """Lines with at least one BitTorrent user (the crawler's
        potential sightings)."""
        return [
            line
            for line in self.lines.values()
            if any(self.users[k].runs_bittorrent for k in line.user_keys)
        ]

    def compromised_users(self) -> List[UserInfo]:
        """Users flagged by the abuse model."""
        return [u for u in self.users.values() if u.compromised]
