"""Population synthesis: lines, users, NATs, CGNs and DHCP pools.

Fills a :class:`~repro.internet.groundtruth.GroundTruth` from a
generated topology. All the knobs that shape the paper's observed
distributions live in :class:`PopulationConfig`:

* the home-NAT / CGN size mix drives Figure 8 (68.5% of NATed
  blocklisted IPs show exactly two users; the tail reaches 78);
* the fast/slow pool mix drives Figure 2 (59% of probes never change
  address; the knee sits at eight allocations);
* sequential address allocation keeps BitTorrent users, NAT sites and
  abuse sources in the same /24s, giving the crawler's blocklist-space
  restriction realistic coverage.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..net.asdb import ASKind
from .dhcp import DhcpPool, LineChurnSpec
from .groundtruth import (
    ADDRESSING_DYNAMIC,
    ADDRESSING_STATIC,
    GroundTruth,
    LineInfo,
    NAT_CGN,
    NAT_HOME,
    NAT_NONE,
    UserInfo,
)
from .topology import Topology

__all__ = ["PopulationConfig", "build_population"]


@dataclass
class PopulationConfig:
    """Population shape knobs (defaults give the test-scale scenario)."""

    horizon_days: float = 497.0  # 2019-01-01 .. 2020-05-11, like the paper
    #: Per-/16 line counts in eyeball ASes.
    static_single_lines_per_16: int = 40
    home_nat_lines_per_16: int = 30
    cgn_sites_per_16: float = 0.35
    #: Household sizes behind home NATs, weighted towards two users
    #: (drives Figure 8's 68.5%-exactly-two shape).
    home_nat_user_sizes: Tuple[int, ...] = (2, 3, 4, 5, 6)
    home_nat_user_weights: Tuple[float, ...] = (0.52, 0.26, 0.13, 0.06, 0.03)
    #: CGN sizes (users per public IP); the top of the range creates
    #: the ~78-detected-users tail of Figure 8.
    cgn_users_range: Tuple[int, int] = (40, 350)
    #: Dynamic pools per eyeball AS.
    dynamic_pools_per_as_range: Tuple[int, int] = (0, 2)
    pool_slash24s_range: Tuple[int, int] = (1, 3)
    #: Lines per /24 of pool space (must stay below 256).
    pool_lines_per_24: int = 100
    #: Fast pools carry fewer lines so churn simulation stays cheap
    #: (each fast line produces hundreds of assignment entries).
    fast_pool_lines_per_24: int = 40
    #: Fraction of pools whose lines churn about daily.
    fast_pool_fraction: float = 0.25
    fast_mean_days_range: Tuple[float, float] = (0.5, 1.5)
    #: Slow pools draw log-uniform means across this range, producing
    #: allocation counts that straddle the paper's knee at 8.
    slow_mean_days_range: Tuple[float, float] = (75.0, 700.0)
    #: Fraction of eyeball ASes where BitTorrent is filtered or
    #: unpopular (the paper's coverage limitation: BitTorrent visible
    #: in only 29.6% of blocklisted ASes).
    bt_blocked_as_fraction: float = 0.50
    #: BitTorrent adoption per line type.
    p_bt_single: float = 0.5
    p_bt_home_nat: float = 0.6
    p_bt_cgn: float = 0.40
    #: Probability a NATed BitTorrent user is crawler-reachable.
    p_reachable: float = 0.7
    #: Servers per hosting AS (static, never BitTorrent).
    hosting_servers_per_as: int = 40

    def __post_init__(self) -> None:
        if self.pool_lines_per_24 >= 250:
            raise ValueError(
                "pool_lines_per_24 must leave headroom below 256 for "
                "address exclusivity"
            )
        if len(self.home_nat_user_sizes) != len(self.home_nat_user_weights):
            raise ValueError(
                "home NAT size and weight vectors must align"
            )
        for low, high in (
            self.cgn_users_range,
            self.dynamic_pools_per_as_range,
            self.pool_slash24s_range,
        ):
            if low > high or low < 0:
                raise ValueError(f"bad range ({low}, {high})")


def build_population(
    topology: Topology,
    config: PopulationConfig,
    rng: random.Random,
) -> GroundTruth:
    """Create lines, users, NAT sites and DHCP pools for every AS."""
    truth = GroundTruth(topology.asdb, config.horizon_days)
    line_seq = 0
    user_seq = 0

    def new_line_key() -> str:
        nonlocal line_seq
        line_seq += 1
        return f"l{line_seq:06d}"

    def new_user_key() -> str:
        nonlocal user_seq
        user_seq += 1
        return f"u{user_seq:06d}"

    def add_users(
        line: LineInfo, count: int, p_bt: float, p_reach: float
    ) -> None:
        for _ in range(count):
            runs_bt = rng.random() < p_bt
            reachable = (
                rng.random() < p_reach if line.nat != NAT_NONE else True
            )
            truth.add_user(
                UserInfo(
                    key=new_user_key(),
                    line_key=line.key,
                    runs_bittorrent=runs_bt,
                    reachable=reachable,
                )
            )

    for asn in topology.eyeball_asns:
        record = topology.asdb.get(asn)
        assert record is not None
        cursor = topology.cursors[asn]
        n_16s = len(record.prefixes)
        bt_blocked = rng.random() < config.bt_blocked_as_fraction
        bt_scale = 0.0 if bt_blocked else 1.0

        # Static single-user lines.
        for _ in range(config.static_single_lines_per_16 * n_16s):
            line = LineInfo(
                key=new_line_key(),
                asn=asn,
                addressing=ADDRESSING_STATIC,
                nat=NAT_NONE,
                static_ip=cursor.take_address(),
                country=record.country,
            )
            truth.add_line(line)
            add_users(line, 1, config.p_bt_single * bt_scale, 1.0)

        # Home NAT lines.
        for _ in range(config.home_nat_lines_per_16 * n_16s):
            line = LineInfo(
                key=new_line_key(),
                asn=asn,
                addressing=ADDRESSING_STATIC,
                nat=NAT_HOME,
                static_ip=cursor.take_address(),
                country=record.country,
            )
            truth.add_line(line)
            household = rng.choices(
                config.home_nat_user_sizes,
                weights=config.home_nat_user_weights,
            )[0]
            add_users(
                line,
                household,
                config.p_bt_home_nat * bt_scale,
                config.p_reachable,
            )

        # CGN sites.
        expected_cgns = config.cgn_sites_per_16 * n_16s
        n_cgns = int(expected_cgns) + (
            1 if rng.random() < expected_cgns % 1 else 0
        )
        for _ in range(n_cgns):
            line = LineInfo(
                key=new_line_key(),
                asn=asn,
                addressing=ADDRESSING_STATIC,
                nat=NAT_CGN,
                static_ip=cursor.take_address(),
                country=record.country,
            )
            truth.add_line(line)
            size = rng.randint(*config.cgn_users_range)
            add_users(line, size, config.p_bt_cgn * bt_scale, config.p_reachable)

        # Dynamic pools.
        n_pools = rng.randint(*config.dynamic_pools_per_as_range)
        for pool_index in range(n_pools):
            n_blocks = rng.randint(*config.pool_slash24s_range)
            blocks = cursor.take_slash24s(n_blocks)
            pool = DhcpPool(
                pool_id=f"pool-{asn}-{pool_index}",
                asn=asn,
                prefixes=blocks,
            )
            is_fast = rng.random() < config.fast_pool_fraction
            mean_range = (
                config.fast_mean_days_range
                if is_fast
                else config.slow_mean_days_range
            )
            lines_per_24 = (
                config.fast_pool_lines_per_24
                if is_fast
                else config.pool_lines_per_24
            )
            specs: List[LineChurnSpec] = []
            for _ in range(lines_per_24 * n_blocks):
                line = LineInfo(
                    key=new_line_key(),
                    asn=asn,
                    addressing=ADDRESSING_DYNAMIC,
                    nat=NAT_NONE,
                    pool_id=pool.pool_id,
                    country=record.country,
                )
                truth.add_line(line)
                # Dynamic lines host ordinary (non-BitTorrent) users;
                # the paper's two techniques probe disjoint populations.
                add_users(line, 1, 0.0, 1.0)
                if is_fast:
                    mean_days = rng.uniform(*mean_range)
                else:
                    # Log-uniform: slow-pool lease policies span an
                    # order of magnitude.
                    lo, hi = mean_range
                    mean_days = math.exp(
                        rng.uniform(math.log(lo), math.log(hi))
                    )
                specs.append(
                    LineChurnSpec(
                        line_key=line.key,
                        mean_interchange_days=mean_days,
                    )
                )
            pool.simulate(specs, config.horizon_days, rng)
            truth.add_pool(pool)

    for asn in topology.hosting_asns:
        record = topology.asdb.get(asn)
        assert record is not None
        cursor = topology.cursors[asn]
        for _ in range(config.hosting_servers_per_as):
            line = LineInfo(
                key=new_line_key(),
                asn=asn,
                addressing=ADDRESSING_STATIC,
                nat=NAT_NONE,
                static_ip=cursor.take_address(),
                country=record.country,
            )
            truth.add_line(line)
            add_users(line, 1, 0.0, 1.0)

    return truth
