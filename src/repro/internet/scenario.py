"""Scenario assembly: one call builds the whole synthetic world.

A scenario bundles the topology, population, abuse stream, blocklist
listings and Atlas deployment under a single seed. Two presets:

* :meth:`ScenarioConfig.small` — seconds-fast, for unit/integration
  tests;
* :meth:`ScenarioConfig.default` — the benchmark scale (≈1:100 of the
  paper's populations, same window geometry).

Calendar geometry follows the paper exactly, as day offsets from the
2019-01-01 epoch: RIPE monitoring days 0–497 (1 Jan 2019 – 11 May
2020); blocklist window 1 days 214–252 (3 Aug – 10 Sep 2019, 39 days);
window 2 days 453–496 (29 Mar – 11 May 2020, 44 days).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..blocklists.catalog import BlocklistInfo, build_catalog
from ..blocklists.feed import generate_listings
from ..blocklists.timeline import ListingStore, Window
from ..ripe.connlog import ConnectionLog
from ..ripe.simulate import (
    AtlasConfig,
    ProbeDeployment,
    deploy_probes,
    synthesize_log,
)
from ..sim.rng import RngHub
from .abuse import AbuseConfig, AbuseEvent, generate_abuse
from .groundtruth import GroundTruth
from .population import PopulationConfig, build_population
from .topology import Topology, TopologyConfig, build_topology

__all__ = ["PAPER_WINDOWS", "ScenarioConfig", "Scenario", "build_scenario"]

#: The paper's two collection windows as inclusive day ranges.
PAPER_WINDOWS: Tuple[Window, Window] = ((214, 252), (453, 496))


@dataclass
class ScenarioConfig:
    """Everything that determines a synthetic world."""

    seed: int = 2020
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    abuse: AbuseConfig = field(default_factory=AbuseConfig)
    atlas: AtlasConfig = field(default_factory=AtlasConfig)
    windows: Tuple[Window, ...] = PAPER_WINDOWS

    @classmethod
    def small(cls, seed: int = 2020) -> "ScenarioConfig":
        """Tiny world for tests: ~10 ASes, hundreds of lines."""
        return cls(
            seed=seed,
            topology=TopologyConfig(
                n_eyeball=8, n_hosting=3, n_backbone=2, max_slash16s=2
            ),
            population=PopulationConfig(
                static_single_lines_per_16=20,
                home_nat_lines_per_16=8,
                cgn_sites_per_16=0.5,
                dynamic_pools_per_as_range=(1, 1),
                pool_slash24s_range=(1, 1),
                pool_lines_per_24=40,
                fast_pool_lines_per_24=15,
                bt_blocked_as_fraction=0.1,
            ),
            atlas=AtlasConfig(
                n_probes=80, as_concentration=1.0, fast_line_fraction=0.3
            ),
            # Tiny worlds need a strong dynamic-abuse signal so the
            # dynamic side of every figure stays non-degenerate.
            abuse=AbuseConfig(compromise_rate_dynamic=0.30),
        )

    @classmethod
    def default(cls, seed: int = 2020) -> "ScenarioConfig":
        """Benchmark scale (the per-experiment defaults)."""
        return cls(seed=seed)

    @classmethod
    def large(cls, seed: int = 2020) -> "ScenarioConfig":
        """~4x the default populations (minutes, not seconds) for
        tighter statistics; same window geometry."""
        return cls(
            seed=seed,
            topology=TopologyConfig(
                n_eyeball=120, n_hosting=40, n_backbone=20, max_slash16s=8
            ),
            atlas=AtlasConfig(n_probes=900),
        )


@dataclass
class Scenario:
    """A fully built world plus its derived measurement artefacts."""

    config: ScenarioConfig
    hub: RngHub
    topology: Topology
    truth: GroundTruth
    abuse_events: List[AbuseEvent]
    catalog: List[BlocklistInfo]
    listings: ListingStore
    deployment: ProbeDeployment
    atlas_log: ConnectionLog

    @property
    def windows(self) -> Sequence[Window]:
        """The blocklist collection windows."""
        return self.config.windows

    def observed_listings(self) -> ListingStore:
        """Listings visible during the collection windows."""
        return self.listings.observed(list(self.windows))

    def blocklisted_ips(self) -> set:
        """Every address listed anywhere during the windows."""
        return self.observed_listings().all_ips()


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Deterministically build the world for ``config``.

    Each subsystem draws from its own named RNG stream, so changing
    one component's internals never reshuffles the others.
    """
    hub = RngHub(config.seed)
    topology = build_topology(config.topology, hub.stream("topology"))
    truth = build_population(
        topology, config.population, hub.stream("population")
    )
    abuse_events = generate_abuse(truth, config.abuse, hub.stream("abuse"))
    catalog = build_catalog()
    listings = generate_listings(
        abuse_events,
        catalog,
        hub.stream("feeds"),
        horizon_days=config.population.horizon_days,
    )
    deployment = deploy_probes(truth, config.atlas, hub.stream("atlas"))
    atlas_log = synthesize_log(
        truth,
        deployment,
        config.atlas,
        hub.stream("atlas-log"),
        window=(0.0, config.population.horizon_days),
    )
    return Scenario(
        config=config,
        hub=hub,
        topology=topology,
        truth=truth,
        abuse_events=abuse_events,
        catalog=catalog,
        listings=listings,
        deployment=deployment,
        atlas_log=atlas_log,
    )
