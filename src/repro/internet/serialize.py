"""Ground-truth serialization.

The paper publishes its reused-address lists so others can use them.
The reproduction's equivalent artefact is the *world*: serialising a
ground truth (and its listings) lets two machines analyse exactly the
same synthetic internet without replaying the simulation — and lets a
regression suite pin a world as a golden file.

Format: a single JSON document, versioned. Assignment timelines are
stored as flat arrays; everything integer-valued stays integer (no
dotted quads) to keep files compact and parsing fast.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from ..blocklists.timeline import Listing, ListingStore
from ..net.asdb import ASDatabase, ASRecord
from ..net.ipv4 import Prefix
from .dhcp import AssignmentTimeline, DhcpPool
from .groundtruth import GroundTruth, LineInfo, UserInfo

__all__ = [
    "FORMAT_VERSION",
    "truth_to_dict",
    "truth_from_dict",
    "save_truth",
    "load_truth",
    "save_listings",
    "load_listings",
]

FORMAT_VERSION = 1


def truth_to_dict(truth: GroundTruth) -> Dict[str, Any]:
    """Serialise a ground truth to plain JSON-able data."""
    return {
        "version": FORMAT_VERSION,
        "horizon_days": truth.horizon_days,
        "ases": [
            {
                "asn": record.asn,
                "name": record.name,
                "kind": record.kind,
                "country": record.country,
                "prefixes": [
                    [p.network, p.length] for p in record.prefixes
                ],
            }
            for record in truth.asdb
        ],
        "lines": [
            {
                "key": line.key,
                "asn": line.asn,
                "addressing": line.addressing,
                "nat": line.nat,
                "pool_id": line.pool_id,
                "static_ip": line.static_ip,
                "country": line.country,
            }
            for line in truth.lines.values()
        ],
        "users": [
            {
                "key": user.key,
                "line_key": user.line_key,
                "bt": user.runs_bittorrent,
                "reach": user.reachable,
                "bad": user.compromised,
            }
            for user in truth.users.values()
        ],
        "pools": [
            {
                "pool_id": pool.pool_id,
                "asn": pool.asn,
                "prefixes": [
                    [p.network, p.length] for p in pool.prefixes
                ],
                "timelines": {
                    line_key: {
                        "starts": [s for s, _ in timeline_entries(t)],
                        "ips": [ip for _, ip in timeline_entries(t)],
                        "horizon": t.horizon,
                    }
                    for line_key, t in pool.timelines.items()
                },
            }
            for pool in truth.pools.values()
        ],
    }


def timeline_entries(timeline: AssignmentTimeline):
    """(start, ip) pairs of a timeline (its interval starts)."""
    return [
        (start, ip) for start, _, ip in timeline.intervals()
    ]


def truth_from_dict(data: Dict[str, Any]) -> GroundTruth:
    """Rebuild a ground truth serialised by :func:`truth_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported ground-truth format version {version!r}"
        )
    asdb = ASDatabase()
    for record in data["ases"]:
        asdb.add(
            ASRecord(
                asn=record["asn"],
                name=record["name"],
                kind=record["kind"],
                country=record["country"],
                prefixes=[
                    Prefix(network, length)
                    for network, length in record["prefixes"]
                ],
            )
        )
    truth = GroundTruth(asdb, data["horizon_days"])
    for line in data["lines"]:
        truth.add_line(
            LineInfo(
                key=line["key"],
                asn=line["asn"],
                addressing=line["addressing"],
                nat=line["nat"],
                pool_id=line["pool_id"],
                static_ip=line["static_ip"],
                country=line["country"],
            )
        )
    for user in data["users"]:
        truth.add_user(
            UserInfo(
                key=user["key"],
                line_key=user["line_key"],
                runs_bittorrent=user["bt"],
                reachable=user["reach"],
                compromised=user["bad"],
            )
        )
    for pool_data in data["pools"]:
        pool = DhcpPool(
            pool_id=pool_data["pool_id"],
            asn=pool_data["asn"],
            prefixes=[
                Prefix(network, length)
                for network, length in pool_data["prefixes"]
            ],
        )
        for line_key, t in pool_data["timelines"].items():
            entries = list(zip(t["starts"], t["ips"]))
            pool.timelines[line_key] = AssignmentTimeline(
                entries, t["horizon"]
            )
        truth.add_pool(pool)
    return truth


def save_truth(truth: GroundTruth, path: Union[str, Path]) -> None:
    """Write the ground truth to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(truth_to_dict(truth), handle, separators=(",", ":"))


def load_truth(path: Union[str, Path]) -> GroundTruth:
    """Load a ground truth written by :func:`save_truth`."""
    with open(path, "r", encoding="utf-8") as handle:
        return truth_from_dict(json.load(handle))


def save_listings(store: ListingStore, path: Union[str, Path]) -> int:
    """Write a listing store as JSON Lines; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for listing in store:
            handle.write(
                json.dumps(
                    {
                        "l": listing.list_id,
                        "ip": listing.ip,
                        "a": listing.first_day,
                        "b": listing.last_day,
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def load_listings(path: Union[str, Path]) -> ListingStore:
    """Load listings written by :func:`save_listings`."""
    store = ListingStore()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
                store.add(
                    Listing(
                        list_id=obj["l"],
                        ip=int(obj["ip"]),
                        first_day=int(obj["a"]),
                        last_day=int(obj["b"]),
                    )
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad listing: {exc}"
                ) from exc
    return store
