"""AS-level topology generation.

Produces an :class:`~repro.net.asdb.ASDatabase` with a heavy-tailed size
distribution (a few very large eyeball networks originate most of the
end-user — and hence blocklisted — address space; the paper's top-10
ASes hold 27.7% of all listed addresses, led by a telecom backbone).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..net.asdb import ASDatabase, ASKind, ASRecord
from ..net.ipv4 import Prefix
from ..sim.rng import zipf_weights
from .addressplan import AddressCursor, iter_public_slash16s

__all__ = ["RegionMix", "TopologyConfig", "Topology", "build_topology"]


@dataclass(frozen=True)
class RegionMix:
    """Share of ASes per region. RIPE Atlas coverage is concentrated in
    Europe and North America, so region matters for probe placement."""

    europe: float = 0.35
    north_america: float = 0.25
    asia: float = 0.25
    rest: float = 0.15

    REGIONS = ("EU", "NA", "AS", "XX")

    def weights(self) -> List[float]:
        total = self.europe + self.north_america + self.asia + self.rest
        if total <= 0:
            raise ValueError("region mix must have positive mass")
        return [
            self.europe / total,
            self.north_america / total,
            self.asia / total,
            self.rest / total,
        ]


@dataclass
class TopologyConfig:
    """Knobs for topology generation."""

    n_eyeball: int = 60
    n_hosting: int = 20
    n_backbone: int = 10
    #: /16 blocks for the largest eyeball AS; the tail shrinks by Zipf.
    max_slash16s: int = 8
    zipf_exponent: float = 1.1
    region_mix: RegionMix = field(default_factory=RegionMix)
    first_asn: int = 64500


@dataclass
class Topology:
    """Generated topology: the AS database plus per-AS address cursors
    (consumed by the population builder)."""

    asdb: ASDatabase
    cursors: Dict[int, AddressCursor]
    eyeball_asns: List[int]
    hosting_asns: List[int]
    backbone_asns: List[int]


def build_topology(config: TopologyConfig, rng: random.Random) -> Topology:
    """Generate the AS-level topology deterministically from ``rng``."""
    total = config.n_eyeball + config.n_hosting + config.n_backbone
    if total <= 0:
        raise ValueError("topology needs at least one AS")
    blocks = iter_public_slash16s()
    asdb = ASDatabase()
    cursors: Dict[int, AddressCursor] = {}
    eyeballs: List[int] = []
    hostings: List[int] = []
    backbones: List[int] = []
    region_weights = config.region_mix.weights()

    sizes = zipf_weights(config.n_eyeball, config.zipf_exponent)
    next_asn = config.first_asn

    def allocate(kind: str, name: str, n_blocks: int) -> ASRecord:
        nonlocal next_asn
        prefixes: List[Prefix] = [next(blocks) for _ in range(n_blocks)]
        region = rng.choices(RegionMix.REGIONS, weights=region_weights)[0]
        record = ASRecord(
            asn=next_asn,
            name=name,
            kind=kind,
            country=region,
            prefixes=prefixes,
        )
        next_asn += 1
        asdb.add(record)
        cursors[record.asn] = AddressCursor(prefixes)
        return record

    for rank in range(config.n_eyeball):
        # Zipf rank → block count, at least one /16.
        n_blocks = max(
            1, round(sizes[rank] * config.max_slash16s * config.n_eyeball / 4)
        )
        n_blocks = min(n_blocks, config.max_slash16s)
        record = allocate(
            ASKind.EYEBALL, f"eyeball-{rank:03d}", n_blocks
        )
        eyeballs.append(record.asn)

    for rank in range(config.n_hosting):
        record = allocate(ASKind.HOSTING, f"hosting-{rank:03d}", 1)
        hostings.append(record.asn)

    for rank in range(config.n_backbone):
        record = allocate(ASKind.BACKBONE, f"backbone-{rank:03d}", 1)
        backbones.append(record.asn)

    return Topology(
        asdb=asdb,
        cursors=cursors,
        eyeball_asns=eyeballs,
        hosting_asns=hostings,
        backbone_asns=backbones,
    )
