"""IPv6 extension: Entropy/IP-style structure discovery (the paper's
stated path to extending reuse detection beyond IPv4)."""

from .addr6 import (
    MAX_IPV6,
    NIBBLES,
    Prefix6,
    int_to_ip6,
    interface_id,
    ip6_to_int,
    nibble,
    nibbles,
    subnet_of,
)
from .generator import Strategy, SubnetPlan, generate_corpus
from .entropyip import (
    REUSE_ROTATING,
    REUSE_STABLE,
    SEGMENT_CONSTANT,
    SEGMENT_RANDOM,
    SEGMENT_STRUCTURED,
    AddressStructure,
    Segment,
    analyze,
    classify_reuse_risk,
    nibble_entropies,
)

__all__ = [
    "MAX_IPV6",
    "NIBBLES",
    "Prefix6",
    "int_to_ip6",
    "interface_id",
    "ip6_to_int",
    "nibble",
    "nibbles",
    "subnet_of",
    "Strategy",
    "SubnetPlan",
    "generate_corpus",
    "REUSE_ROTATING",
    "REUSE_STABLE",
    "SEGMENT_CONSTANT",
    "SEGMENT_RANDOM",
    "SEGMENT_STRUCTURED",
    "AddressStructure",
    "Segment",
    "analyze",
    "classify_reuse_risk",
    "nibble_entropies",
]
