"""IPv6 address primitives.

The paper's study "focuses only on IPv4 blocklists" and points to
Entropy/IP (Foremski et al., IMC 2016) as the way to extend reuse
detection to IPv6. This module provides the 128-bit primitives that
extension builds on: int-based addresses, RFC 4291 parsing (including
``::`` compression), RFC 5952 canonical formatting, prefixes, and
nibble access (Entropy/IP works nibble-wise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "MAX_IPV6",
    "NIBBLES",
    "ip6_to_int",
    "int_to_ip6",
    "nibble",
    "nibbles",
    "Prefix6",
    "interface_id",
    "subnet_of",
]

#: Largest IPv6 address as an integer.
MAX_IPV6 = (1 << 128) - 1
#: Nibbles (hex digits) in an address.
NIBBLES = 32


def ip6_to_int(text: str) -> int:
    """Parse an IPv6 address (full or ``::``-compressed) to an int.

    Embedded IPv4 notation (``::ffff:1.2.3.4``) is supported. Zone
    indices and prefixes are not (split those off first).
    """
    text = text.strip()
    if not text:
        raise ValueError("empty IPv6 address")
    if "%" in text or "/" in text:
        raise ValueError(f"unexpected zone/prefix in {text!r}")
    if text.count("::") > 1:
        raise ValueError(f"multiple '::' in {text!r}")

    # Embedded IPv4 tail.
    groups_text = text
    v4_tail: List[str] = []
    if "." in text:
        head, _, tail = text.rpartition(":")
        octets = tail.split(".")
        if len(octets) != 4 or not all(
            o.isdigit() and 0 <= int(o) <= 255 and len(o) <= 3 for o in octets
        ):
            raise ValueError(f"bad embedded IPv4 in {text!r}")
        value = (int(octets[0]) << 8) | int(octets[1])
        value2 = (int(octets[2]) << 8) | int(octets[3])
        v4_tail = [f"{value:x}", f"{value2:x}"]
        groups_text = head if head else ":"

    if "::" in groups_text:
        left_text, right_text = groups_text.split("::", 1)
        left = left_text.split(":") if left_text else []
        right = right_text.split(":") if right_text else []
        right.extend(v4_tail)
        missing = 8 - len(left) - len(right)
        if missing < 1:
            raise ValueError(f"'::' expands to nothing in {text!r}")
        groups = left + ["0"] * missing + right
    else:
        groups = groups_text.split(":") if groups_text != ":" else []
        groups.extend(v4_tail)
    if len(groups) != 8:
        raise ValueError(f"{text!r} has {len(groups)} groups, need 8")
    value = 0
    for group in groups:
        if not group or len(group) > 4:
            raise ValueError(f"bad group {group!r} in {text!r}")
        try:
            part = int(group, 16)
        except ValueError as exc:
            raise ValueError(f"bad group {group!r} in {text!r}") from exc
        value = (value << 16) | part
    return value


def int_to_ip6(value: int) -> str:
    """Format ``value`` per RFC 5952: lowercase hex, no leading zeros,
    the longest run of ≥2 zero groups compressed to ``::``."""
    if not 0 <= value <= MAX_IPV6:
        raise ValueError(f"not an IPv6 integer: {value!r}")
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]
    # Longest zero run (first among ties), length >= 2.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start == -1:
                run_start = index
                run_len = 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0
    if best_len < 2:
        return ":".join(f"{g:x}" for g in groups)
    head = ":".join(f"{g:x}" for g in groups[:best_start])
    tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
    return f"{head}::{tail}"


def nibble(value: int, index: int) -> int:
    """Nibble ``index`` of the address (0 = most significant)."""
    if not 0 <= index < NIBBLES:
        raise ValueError(f"nibble index out of range: {index}")
    return (value >> (4 * (NIBBLES - 1 - index))) & 0xF


def nibbles(value: int) -> List[int]:
    """All 32 nibbles, most significant first."""
    return [(value >> (4 * i)) & 0xF for i in range(NIBBLES - 1, -1, -1)]


@dataclass(frozen=True, order=True)
class Prefix6:
    """An IPv6 prefix (normalised; host bits must be zero)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 128:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= MAX_IPV6:
            raise ValueError(f"bad network integer: {self.network!r}")
        if self.network & ~self.mask() & MAX_IPV6:
            raise ValueError(
                f"host bits set in {int_to_ip6(self.network)}/{self.length}"
            )

    @classmethod
    def from_text(cls, text: str) -> "Prefix6":
        addr, sep, length = text.partition("/")
        if not sep or not length.isdigit():
            raise ValueError(f"bad IPv6 prefix {text!r}")
        return cls(ip6_to_int(addr), int(length))

    def mask(self) -> int:
        if self.length == 0:
            return 0
        return (MAX_IPV6 << (128 - self.length)) & MAX_IPV6

    def contains(self, ip: int) -> bool:
        """True when ``ip`` is inside this prefix."""
        return (ip & self.mask()) == self.network

    def contains_prefix(self, other: "Prefix6") -> bool:
        """True when ``other`` is equal to or nested inside self."""
        return other.length >= self.length and self.contains(other.network)

    def first(self) -> int:
        """Lowest address in the block (the network address)."""
        return self.network

    def last(self) -> int:
        """Highest address in the block."""
        return self.network | (~self.mask() & MAX_IPV6)

    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (128 - self.length)

    def __str__(self) -> str:
        return f"{int_to_ip6(self.network)}/{self.length}"


def interface_id(ip: int) -> int:
    """The low 64 bits (the interface identifier)."""
    return ip & ((1 << 64) - 1)


def subnet_of(ip: int) -> Prefix6:
    """The covering /64 — the IPv6 analogue of the paper's /24 unit."""
    return Prefix6(ip & ~((1 << 64) - 1) & MAX_IPV6, 64)
