"""Entropy/IP-style IPv6 address-structure discovery.

A simplified but faithful implementation of Foremski, Plonka & Berger,
"Entropy/IP: Uncovering Structure in IPv6 Addresses" (IMC 2016) — the
technique the paper names for extending reuse detection to IPv6:

1. compute the normalised Shannon entropy of each of the 32 nibbles
   over the corpus;
2. segment the address into runs of adjacent nibbles with similar
   entropy;
3. classify each segment (constant / structured / random) and mine the
   frequent values of non-random segments.

On top of the structure model, :func:`classify_reuse_risk` maps a /64's
interface-identifier structure to an address-reuse judgement: random
IIDs (RFC 4941 privacy addresses) rotate, so blocklisting them as
/128s mis-targets quickly — the IPv6 analogue of the paper's dynamic
IPv4 space.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .addr6 import NIBBLES, interface_id, nibbles, subnet_of

__all__ = [
    "SEGMENT_CONSTANT",
    "SEGMENT_STRUCTURED",
    "SEGMENT_RANDOM",
    "Segment",
    "AddressStructure",
    "nibble_entropies",
    "analyze",
    "REUSE_ROTATING",
    "REUSE_STABLE",
    "classify_reuse_risk",
]

SEGMENT_CONSTANT = "constant"
SEGMENT_STRUCTURED = "structured"
SEGMENT_RANDOM = "random"

REUSE_ROTATING = "rotating"  # privacy-style IIDs: short-lived addresses
REUSE_STABLE = "stable"      # EUI-64/sequential: long-lived addresses


@dataclass(frozen=True)
class Segment:
    """A run of adjacent nibbles with homogeneous entropy."""

    start: int  # first nibble index (0 = most significant)
    end: int    # inclusive last nibble index
    mean_entropy: float
    kind: str
    #: Most frequent values (hex strings) with their corpus frequency,
    #: for non-random segments.
    top_values: Tuple[Tuple[str, float], ...] = ()

    @property
    def width(self) -> int:
        """Number of nibbles covered."""
        return self.end - self.start + 1


@dataclass
class AddressStructure:
    """The discovered structure of a corpus."""

    corpus_size: int
    entropies: List[float]
    segments: List[Segment] = field(default_factory=list)

    def segment_at(self, nibble_index: int) -> Segment:
        """The segment covering ``nibble_index``."""
        for segment in self.segments:
            if segment.start <= nibble_index <= segment.end:
                return segment
        raise IndexError(f"no segment covers nibble {nibble_index}")

    def iid_kinds(self) -> List[str]:
        """Kinds of the segments covering the interface id
        (nibbles 16–31)."""
        return [s.kind for s in self.segments if s.end >= 16]

    def sample(self, rng) -> int:
        """Generate one candidate address from the discovered model —
        Entropy/IP's target-generation use-case (scanning hitlists).

        Non-random segments draw from their mined value distribution;
        random segments draw uniform nibbles.
        """
        value = 0
        for segment in self.segments:
            width_bits = 4 * segment.width
            if segment.kind == SEGMENT_RANDOM or not segment.top_values:
                part = rng.getrandbits(width_bits)
            else:
                values = [v for v, _ in segment.top_values]
                weights = [f for _, f in segment.top_values]
                part = int(rng.choices(values, weights=weights)[0], 16)
            value = (value << width_bits) | part
        return value

    def generate_candidates(self, rng, count: int) -> List[int]:
        """Generate ``count`` distinct candidate addresses."""
        if count <= 0:
            raise ValueError("need a positive candidate count")
        out = set()
        attempts = 0
        while len(out) < count and attempts < count * 50:
            out.add(self.sample(rng))
            attempts += 1
        return sorted(out)

    def render(self) -> str:
        """Human-readable structure summary."""
        lines = [
            f"corpus: {self.corpus_size} addresses; "
            f"{len(self.segments)} segments"
        ]
        for segment in self.segments:
            values = ", ".join(
                f"{v}({f:.0%})" for v, f in segment.top_values[:3]
            )
            lines.append(
                f"  nibbles {segment.start:2d}-{segment.end:2d} "
                f"H={segment.mean_entropy:.2f} {segment.kind:10s} {values}"
            )
        return "\n".join(lines)


def nibble_entropies(corpus: Sequence[int]) -> List[float]:
    """Normalised (0..1) Shannon entropy of each nibble position."""
    if not corpus:
        raise ValueError("empty corpus")
    counts = [Counter() for _ in range(NIBBLES)]
    for address in corpus:
        for index, value in enumerate(nibbles(address)):
            counts[index][value] += 1
    total = len(corpus)
    entropies: List[float] = []
    for counter in counts:
        h = 0.0
        for count in counter.values():
            p = count / total
            h -= p * math.log2(p)
        entropies.append(h / 4.0)  # 4 bits per nibble
    return entropies


def _classify(mean_entropy: float) -> str:
    if mean_entropy < 0.05:
        return SEGMENT_CONSTANT
    if mean_entropy < 0.75:
        return SEGMENT_STRUCTURED
    return SEGMENT_RANDOM


def analyze(
    corpus: Sequence[int],
    *,
    split_threshold: float = 0.25,
    top_k: int = 5,
) -> AddressStructure:
    """Discover the structure of ``corpus``.

    Adjacent nibbles join one segment while their entropy stays within
    ``split_threshold`` of the segment's running mean; each segment is
    then classified and (when not random) its frequent values mined.
    """
    entropies = nibble_entropies(corpus)
    structure = AddressStructure(
        corpus_size=len(corpus), entropies=entropies
    )
    start = 0
    running: List[float] = [entropies[0]]
    for index in range(1, NIBBLES + 1):
        if index < NIBBLES:
            mean = sum(running) / len(running)
            if abs(entropies[index] - mean) <= split_threshold:
                running.append(entropies[index])
                continue
        end = index - 1
        mean = sum(running) / len(running)
        kind = _classify(mean)
        top = (
            _mine_values(corpus, start, end, top_k)
            if kind != SEGMENT_RANDOM
            else ()
        )
        structure.segments.append(
            Segment(
                start=start,
                end=end,
                mean_entropy=round(mean, 4),
                kind=kind,
                top_values=top,
            )
        )
        if index < NIBBLES:
            start = index
            running = [entropies[index]]
    return structure


def _mine_values(
    corpus: Sequence[int], start: int, end: int, top_k: int
) -> Tuple[Tuple[str, float], ...]:
    """Frequent hex values of the nibble range [start, end]."""
    width = end - start + 1
    shift = 4 * (NIBBLES - 1 - end)
    mask = (1 << (4 * width)) - 1
    counter: Counter = Counter(
        (address >> shift) & mask for address in corpus
    )
    total = len(corpus)
    return tuple(
        (f"{value:0{width}x}", count / total)
        for value, count in counter.most_common(top_k)
    )


def classify_reuse_risk(
    corpus: Sequence[int],
) -> Dict[str, str]:
    """Judge per-/64 address stability from IID structure.

    Returns subnet (text) → :data:`REUSE_ROTATING` when the subnet's
    interface identifiers look random (privacy addressing: addresses
    rotate, so /128 blocklist entries go stale and can mis-target), or
    :data:`REUSE_STABLE` otherwise.

    Uses a per-subnet IID entropy estimate rather than the global
    segmentation, since strategies differ per subnet.
    """
    by_subnet: Dict[str, List[int]] = {}
    for address in corpus:
        by_subnet.setdefault(str(subnet_of(address)), []).append(address)
    verdicts: Dict[str, str] = {}
    for subnet, addresses in by_subnet.items():
        if len(addresses) < 4:
            # Too few samples to call randomness; stability is the
            # conservative default.
            verdicts[subnet] = REUSE_STABLE
            continue
        iids = [interface_id(a) for a in addresses]
        # Estimate: fraction of the 16 IID nibbles with high entropy.
        entropies = nibble_entropies(iids)[16:]
        high = sum(1 for h in entropies if h > 0.75)
        verdicts[subnet] = (
            REUSE_ROTATING if high >= 12 else REUSE_STABLE
        )
    return verdicts
