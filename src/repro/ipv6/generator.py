"""Synthetic IPv6 active-address corpora.

Entropy/IP learns address structure from a set of *known-active*
addresses. To exercise it we generate corpora with the allocation
strategies seen in real networks:

* ``EUI64``      — interface id derived from the MAC address (vendor
  OUI + ``ff:fe`` + serial): stable over time, structured;
* ``PRIVACY``    — RFC 4941 temporary addresses: 64 random bits,
  rotated regularly — the IPv6 analogue of dynamic addressing, and
  exactly the population whose blocklisting is promptly unjust;
* ``SEQUENTIAL`` — operator-assigned low integers (::1, ::2, …),
  typical for servers/routers;
* ``SERVICE``    — fixed well-known low words (::25, ::53, ::443 …).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from .addr6 import MAX_IPV6, Prefix6

__all__ = ["Strategy", "SubnetPlan", "generate_corpus"]


class Strategy:
    """Interface-identifier allocation strategies."""

    EUI64 = "eui64"
    PRIVACY = "privacy"
    SEQUENTIAL = "sequential"
    SERVICE = "service"

    ALL = (EUI64, PRIVACY, SEQUENTIAL, SERVICE)


@dataclass(frozen=True)
class SubnetPlan:
    """One /64 and how its hosts number themselves."""

    subnet: Prefix6
    strategy: str
    hosts: int = 64

    def __post_init__(self) -> None:
        if self.subnet.length != 64:
            raise ValueError("subnet plans operate on /64s")
        if self.strategy not in Strategy.ALL:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.hosts <= 0:
            raise ValueError("need a positive host count")


#: A handful of real vendor OUIs (first 24 MAC bits).
_OUIS = (0x00163E, 0x3C5AB4, 0xB827EB, 0x00E04C, 0xF4F5E8)

_SERVICE_WORDS = (0x25, 0x53, 0x80, 0x443, 0x8080, 0x993)


def _eui64_iid(rng: random.Random) -> int:
    """EUI-64 interface id: OUI (with universal/local bit flipped),
    0xFFFE in the middle, 24-bit serial."""
    oui = rng.choice(_OUIS) ^ 0x020000  # flip the U/L bit
    serial = rng.getrandbits(24)
    return (oui << 40) | (0xFFFE << 24) | serial


def _iid(strategy: str, index: int, rng: random.Random) -> int:
    if strategy == Strategy.EUI64:
        return _eui64_iid(rng)
    if strategy == Strategy.PRIVACY:
        return rng.getrandbits(64)
    if strategy == Strategy.SEQUENTIAL:
        return index + 1
    # SERVICE
    return rng.choice(_SERVICE_WORDS)


def generate_corpus(
    plans: Sequence[SubnetPlan], rng: random.Random
) -> List[int]:
    """Generate the active-address corpus for ``plans``.

    Addresses are deduplicated and shuffled — a hitlist has no useful
    order.
    """
    if not plans:
        raise ValueError("need at least one subnet plan")
    addresses = set()
    for plan in plans:
        for index in range(plan.hosts):
            iid = _iid(plan.strategy, index, rng)
            addresses.add(plan.subnet.network | iid)
    corpus = list(addresses)
    rng.shuffle(corpus)
    return corpus
