"""Deterministic load generation against the serving plane.

The subsystem is three layers, composable from tests, benches and the
``repro load`` CLI alike:

* :mod:`~repro.loadgen.mixes` — named traffic shapes (zipf skew,
  hot-/24 concentration, point-vs-batch ratio, bursts, churn storms);
* :mod:`~repro.loadgen.generator` — a seeded mix + address population
  expanded into a complete open-loop schedule of timed events;
* :mod:`~repro.loadgen.harness` — schedule replay over pipelined
  client connections, emitting a JSON-ready SLO report.

:mod:`~repro.loadgen.stats` underneath is the repo's one definition of
latency percentiles, shared with the benchmark suite.
"""

from .generator import (
    Event,
    TrafficGenerator,
    population_from_analysis,
    population_from_hitlist,
)
from .harness import (
    LoadHarness,
    LoadReport,
    render_report,
    storm_hook_from_log,
)
from .mixes import MIXES, MixSpec, get_mix, mix_names
from .stats import percentile, summarize, window_day_workload

__all__ = [
    "Event",
    "LoadHarness",
    "LoadReport",
    "MIXES",
    "MixSpec",
    "TrafficGenerator",
    "get_mix",
    "mix_names",
    "percentile",
    "population_from_analysis",
    "population_from_hitlist",
    "render_report",
    "storm_hook_from_log",
    "summarize",
    "window_day_workload",
]
