"""Deterministic open-loop traffic schedules.

The generator turns a :class:`~repro.loadgen.mixes.MixSpec` plus an
address population into a complete, *pre-computed* schedule: a list of
:class:`Event` rows, each with an absolute due time (seconds from run
start), a kind (point or batch), and its (ip, day) pairs. Everything
is drawn from one ``random.Random(seed)`` — the same mix, population
and seed always produce the identical schedule, so a load result is
reproducible and two harness runs are comparable query-for-query.

Arrivals are open-loop (Poisson inter-arrivals at the target rate,
optionally modulated by burst phases): due times never depend on how
fast the system under test answers, so a slow server accumulates
measured backlog instead of silently receiving less load — the
coordinated-omission-honest way to measure latency.

The zipfian rank weights model the paper's reuse skew: a small hot
head of addresses takes most of the traffic, and with
``hot_block=True`` the head shares one /24, concentrating the skew on
a single shard.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..net.ipv4 import MAX_IPV4
from .mixes import MixSpec

__all__ = [
    "Event",
    "TrafficGenerator",
    "population_from_analysis",
]

#: Burst phases carve each run into this many equal segments; the
#: tail of every segment (the mix's ``burst_fraction``) runs hot.
_BURST_SEGMENTS = 4


@dataclass(frozen=True)
class Event:
    """One scheduled request: due ``at`` seconds after run start."""

    at: float
    kind: str  # "point" | "batch"
    pairs: Tuple[Tuple[int, Optional[int]], ...]

    def queries(self) -> int:
        return len(self.pairs)


def population_from_analysis(
    mix: MixSpec, analysis: Any
) -> Tuple[List[int], List[int]]:
    """The (ips, days) population a mix draws from, ranked hot-first.

    ``ips`` is ordered by intended popularity (zipf rank 0 first).
    With ``hot_block`` the head is the blocklisted /24 with the most
    listed addresses — padded with synthetic neighbours from the same
    block up to ``hot_ips`` so the hot set is dense enough to dominate
    one shard — followed by every other blocklisted address.
    """
    if mix.family != "ipv4":
        raise ValueError(
            f"mix {mix.name!r} draws an {mix.family} population; "
            "use population_from_hitlist"
        )
    ips = sorted(analysis.blocklisted_ips)
    if not ips:
        raise ValueError("analysis has no blocklisted addresses")
    days: List[int] = []
    for start, end in analysis.windows:
        days += [start, (start + end) // 2, end]
    if not days:
        raise ValueError("analysis has no collection windows")
    if not mix.hot_block:
        return ips, days
    by_block: dict = {}
    for ip in ips:
        by_block.setdefault(ip >> 8, []).append(ip)
    # Most-listed block wins; ties go to the lowest block, so the
    # choice is a pure function of the listing set.
    block = min(by_block, key=lambda b: (-len(by_block[b]), b))
    hot = list(by_block[block])
    for offset in range(256):
        if len(hot) >= mix.hot_ips:
            break
        candidate = (block << 8) | offset
        if candidate not in by_block[block] and candidate <= MAX_IPV4:
            hot.append(candidate)
    rest = [ip for ip in ips if (ip >> 8) != block]
    return hot + rest, days


def population_from_hitlist(
    mix: MixSpec,
    hitlist: Sequence[int],
    *,
    horizon_days: int = 60,
) -> Tuple[List[int], List[int]]:
    """The (ips, days) population of a v6 mix.

    ``hitlist`` is a de-aliased address corpus (e.g.
    ``HitlistV6Model().survey(seed).facts.hitlist``); rank order is the
    sorted address order, so the schedule is a pure function of the
    hitlist and seed. Days sample the scenario horizon the same way
    the v4 population samples its collection windows.
    """
    if mix.family != "ipv6":
        raise ValueError(
            f"mix {mix.name!r} draws an {mix.family} population; "
            "use population_from_analysis"
        )
    if horizon_days < 1:
        raise ValueError(f"horizon must be >= 1 day: {horizon_days}")
    ips = sorted(set(hitlist))
    if not ips:
        raise ValueError("empty hitlist")
    last = horizon_days - 1
    days = sorted({0, last // 2, last})
    return ips, days


class TrafficGenerator:
    """Seeded schedule builder over a ranked address population."""

    def __init__(
        self,
        mix: MixSpec,
        ips: Sequence[int],
        days: Sequence[int],
        *,
        seed: int = 0,
    ) -> None:
        if not ips:
            raise ValueError("empty address population")
        if not days:
            raise ValueError("empty day population")
        self.mix = mix
        self.seed = seed
        self._ips = list(ips)
        self._days = list(days)
        # Cumulative zipf weights over the rank order; sampling is a
        # uniform draw + bisect, so cost per query is O(log n).
        cumulative: List[float] = []
        total = 0.0
        for rank in range(len(self._ips)):
            total += 1.0 / ((rank + 1) ** mix.zipf_s)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total_weight = total

    def _draw_ip(self, rng: random.Random) -> int:
        point = rng.random() * self._total_weight
        return self._ips[bisect_right(self._cumulative, point)]

    def _draw_pair(self, rng: random.Random) -> Tuple[int, Optional[int]]:
        return self._draw_ip(rng), rng.choice(self._days)

    def _rate_at(self, t: float, duration: float, base: float) -> float:
        mix = self.mix
        if mix.burst_fraction <= 0.0 or mix.burst_factor <= 1.0:
            return base
        segment = (t / duration) * _BURST_SEGMENTS
        in_burst = (segment % 1.0) >= (1.0 - mix.burst_fraction)
        return base * mix.burst_factor if in_burst else base

    def schedule(
        self, n_queries: int, target_qps: float
    ) -> List[Event]:
        """The full run plan: ``n_queries`` queries paced open-loop at
        ``target_qps`` (mean), packed into point and batch events per
        the mix's ratio. Deterministic for a given generator."""
        if n_queries < 1:
            raise ValueError(f"need at least one query: {n_queries}")
        if target_qps <= 0:
            raise ValueError(f"target qps must be positive: {target_qps}")
        mix = self.mix
        rng = random.Random(self.seed)
        batch_queries = int(round(mix.batch_fraction * n_queries))
        n_batches = -(-batch_queries // mix.batch_size) if batch_queries else 0
        n_points = n_queries - batch_queries
        kinds = ["point"] * n_points + ["batch"] * n_batches
        rng.shuffle(kinds)
        duration = n_queries / target_qps
        # Event rate that lands n_events over the duration given the
        # burst modulation (bursts steal rate from steady phases).
        n_events = len(kinds)
        f, k = mix.burst_fraction, mix.burst_factor
        base_rate = n_events / (duration * ((1.0 - f) + k * f))
        events: List[Event] = []
        t = 0.0
        remaining_batch = batch_queries
        for kind in kinds:
            rate = self._rate_at(t, duration, base_rate)
            t += rng.expovariate(rate)
            if kind == "point":
                pairs = (self._draw_pair(rng),)
            else:
                size = min(mix.batch_size, remaining_batch)
                remaining_batch -= size
                pairs = tuple(
                    self._draw_pair(rng) for _ in range(size)
                )
            events.append(Event(t, kind, pairs))
        return events

    def storm_times(self, duration: float) -> List[float]:
        """When churn storms fire: evenly spread through the run so at
        least one lands while epochs are swapping under load."""
        storms = self.mix.churn_storms
        return [
            duration * (i + 1) / (storms + 1) for i in range(storms)
        ]
