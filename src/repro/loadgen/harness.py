# reprolint: disable-file=DET — the harness is the wall-clock
# boundary by design: it replays a (seeded, deterministic) schedule
# open-loop against real time, so time.monotonic/time.sleep are its
# job, exactly like sim/realtime.py on the simulation side.
"""Replay a schedule against a live server and measure the SLO.

:class:`LoadHarness` drives a pre-computed schedule (see
:mod:`repro.loadgen.generator`) against any endpoint speaking the
service wire protocol — a single server or a cluster router, which are
indistinguishable on the wire. ``conns`` worker threads each own one
:class:`~repro.service.client.ReputationClient`; events are dealt
round-robin so every connection carries an even share of the mix.

Pacing is open-loop: a worker sleeps until an event's due time, then
issues it — and when the server falls behind, the backlog shows up as
latency rather than reduced offered load. Latency is measured from the
*scheduled* due time to completion, so queueing delay the schedule
caused is charged to the server (no coordinated omission). Due batch
events are drained together through ``query_batch_pipelined`` — the
serving plane's hot path — up to ``window`` in flight.

The result is a :class:`LoadReport`: offered/answered counts, a
transport/degraded/rejected error ledger, and per-kind latency digests
(p50/p90/p99 via :mod:`repro.loadgen.stats`, so benches and the
harness report identical percentile semantics) — JSON-serialisable as
the run's artefact.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..net.family import V4, AddressFamily
from ..service.client import ReputationClient, ServiceError, TransportError
from .generator import Event
from .stats import summarize

__all__ = [
    "LoadHarness",
    "LoadReport",
    "render_report",
    "storm_hook_from_log",
]

#: A verdict carrying this key is a degraded (shard-unavailable) row.
_ERROR_KEY = "error"


@dataclass
class LoadReport:
    """One load run's outcome, JSON-ready via :meth:`to_json`."""

    mix: str
    seed: int
    target_qps: float
    #: Wall-clock seconds from first event due to last reply.
    duration: float
    #: Queries offered / answered with a verdict.
    sent: int = 0
    ok: int = 0
    #: Verdict rows that came back as per-IP ``SHARD_UNAVAILABLE``.
    degraded: int = 0
    #: Requests the server rejected outright (``ok: false`` replies).
    rejected: int = 0
    #: Queries lost to connection-level failures.
    transport_errors: int = 0
    #: Churn storms fired during the run.
    storms: int = 0
    point_latency: Dict[str, float] = field(default_factory=dict)
    batch_latency: Dict[str, float] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        """Queries that did not produce a verdict — the elasticity
        acceptance bar is this staying zero through a split."""
        return self.degraded + self.rejected + self.transport_errors

    def achieved_qps(self) -> float:
        return self.ok / self.duration if self.duration > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mix": self.mix,
            "seed": self.seed,
            "target_qps": self.target_qps,
            "achieved_qps": round(self.achieved_qps(), 1),
            "duration_s": round(self.duration, 3),
            "sent": self.sent,
            "ok": self.ok,
            "failed": self.failed,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "transport_errors": self.transport_errors,
            "storms": self.storms,
            "point_latency_s": self.point_latency,
            "batch_latency_s": self.batch_latency,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


class _WorkerLedger:
    """One worker thread's private tallies (merged after join)."""

    __slots__ = (
        "sent", "ok", "degraded", "rejected", "transport_errors",
        "point_lat", "batch_lat", "captured",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.ok = 0
        self.degraded = 0
        self.rejected = 0
        self.transport_errors = 0
        self.point_lat: List[float] = []
        self.batch_lat: List[float] = []
        self.captured: List[Tuple[int, Optional[int], Dict[str, Any]]] = []


class LoadHarness:
    """Drive one schedule over ``conns`` pipelined connections."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        conns: int = 4,
        codec: str = "auto",
        window: int = 16,
        timeout: float = 10.0,
        capture: bool = False,
        family: AddressFamily = V4,
    ) -> None:
        if conns < 1:
            raise ValueError(f"need at least one connection: {conns}")
        if window < 1:
            raise ValueError(f"pipeline window must be >= 1: {window}")
        self._host = host
        self._port = port
        self._conns = conns
        self._codec = codec
        self._window = window
        self._timeout = timeout
        self._capture = capture
        self._family = family
        #: (ip, day, verdict) rows from the last run when ``capture``
        #: — what the fidelity tests replay against a static engine.
        self.captured: List[Tuple[int, Optional[int], Dict[str, Any]]] = []

    # -- per-worker execution ------------------------------------------

    def _connect(self) -> ReputationClient:
        return ReputationClient(
            self._host,
            self._port,
            timeout=self._timeout,
            codec=self._codec,
            family=self._family,
        )

    def _account_verdicts(
        self,
        ledger: _WorkerLedger,
        pairs: Sequence[Tuple[int, Optional[int]]],
        verdicts: Sequence[Dict[str, Any]],
    ) -> None:
        for (ip, day), verdict in zip(pairs, verdicts):
            if isinstance(verdict, dict) and _ERROR_KEY in verdict:
                ledger.degraded += 1
            else:
                ledger.ok += 1
                if self._capture:
                    ledger.captured.append((ip, day, verdict))

    def _flush_batches(
        self,
        client: ReputationClient,
        ledger: _WorkerLedger,
        due: List[Event],
        start: float,
    ) -> ReputationClient:
        """Drain the due batch events in one pipelined burst."""
        if not due:
            return client
        batches = [event.pairs for event in due]
        try:
            replies = client.query_batch_pipelined(
                batches, window=self._window
            )
        # TransportError subclasses ServiceError: transport first.
        except (TransportError, OSError):
            ledger.transport_errors += sum(len(b) for b in batches)
            due.clear()
            return self._reconnect(client, ledger)
        except ServiceError:
            ledger.rejected += sum(len(b) for b in batches)
            due.clear()
            return client
        done = time.monotonic()
        for event, reply in zip(due, replies):
            ledger.batch_lat.append(done - (start + event.at))
            self._account_verdicts(ledger, event.pairs, reply)
        due.clear()
        return client

    def _reconnect(
        self, client: ReputationClient, ledger: _WorkerLedger
    ) -> ReputationClient:
        try:
            client.close()
        except OSError:
            pass
        try:
            return self._connect()
        except (TransportError, OSError):
            # The endpoint is gone; keep the dead client so later
            # sends fail fast into the transport-error ledger.
            return client

    def _run_worker(
        self,
        events: List[Event],
        start: float,
        ledger: _WorkerLedger,
    ) -> None:
        try:
            client = self._connect()
        except (TransportError, OSError):
            ledger.sent += sum(e.queries() for e in events)
            ledger.transport_errors += sum(e.queries() for e in events)
            return
        due_batches: List[Event] = []
        try:
            for event in events:
                wait = (start + event.at) - time.monotonic()
                if wait > 0:
                    # About to idle: drain whatever batches are due so
                    # their latency is not inflated by our sleep.
                    client = self._flush_batches(
                        client, ledger, due_batches, start
                    )
                    wait = (start + event.at) - time.monotonic()
                    if wait > 0:
                        time.sleep(wait)
                ledger.sent += event.queries()
                if event.kind == "batch":
                    due_batches.append(event)
                    if len(due_batches) >= self._window:
                        client = self._flush_batches(
                            client, ledger, due_batches, start
                        )
                    continue
                ip, day = event.pairs[0]
                try:
                    verdict = client.query(ip, day)
                except (TransportError, OSError):
                    ledger.transport_errors += 1
                    client = self._reconnect(client, ledger)
                    continue
                except ServiceError:
                    ledger.rejected += 1
                    continue
                ledger.point_lat.append(
                    time.monotonic() - (start + event.at)
                )
                self._account_verdicts(ledger, event.pairs, [verdict])
            self._flush_batches(client, ledger, due_batches, start)
        finally:
            try:
                client.close()
            except OSError:
                pass

    # -- the run -------------------------------------------------------

    def run(
        self,
        events: Sequence[Event],
        *,
        mix: str = "custom",
        seed: int = 0,
        target_qps: float = 0.0,
        storm_times: Sequence[float] = (),
        on_storm: Optional[Callable[[int], None]] = None,
    ) -> LoadReport:
        """Replay ``events``; returns the filled :class:`LoadReport`.

        ``storm_times`` schedules ``on_storm(i)`` calls on a side
        thread at those offsets (churn storms appended to a followed
        log land mid-run, while the harness is mid-schedule).
        """
        if not events:
            raise ValueError("empty schedule")
        shards: List[List[Event]] = [[] for _ in range(self._conns)]
        for position, event in enumerate(events):
            shards[position % self._conns].append(event)
        ledgers = [_WorkerLedger() for _ in shards]
        start = time.monotonic()
        stop_storms = threading.Event()
        storms_fired = [0]

        def storm_loop() -> None:
            for index, at in enumerate(sorted(storm_times)):
                wait = (start + at) - time.monotonic()
                if wait > 0 and stop_storms.wait(wait):
                    return
                if on_storm is not None:
                    on_storm(index)
                storms_fired[0] += 1

        storm_thread: Optional[threading.Thread] = None
        if storm_times and on_storm is not None:
            storm_thread = threading.Thread(
                target=storm_loop, name="repro-load-storms", daemon=True
            )
            storm_thread.start()
        workers = [
            threading.Thread(
                target=self._run_worker,
                args=(shard, start, ledger),
                name=f"repro-load-{index}",
                daemon=True,
            )
            for index, (shard, ledger) in enumerate(zip(shards, ledgers))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop_storms.set()
        if storm_thread is not None:
            storm_thread.join(timeout=5.0)
        duration = time.monotonic() - start
        report = LoadReport(
            mix=mix,
            seed=seed,
            target_qps=target_qps,
            duration=duration,
            storms=storms_fired[0],
        )
        point_lat: List[float] = []
        batch_lat: List[float] = []
        self.captured = []
        for ledger in ledgers:
            report.sent += ledger.sent
            report.ok += ledger.ok
            report.degraded += ledger.degraded
            report.rejected += ledger.rejected
            report.transport_errors += ledger.transport_errors
            point_lat += ledger.point_lat
            batch_lat += ledger.batch_lat
            self.captured += ledger.captured
        report.point_latency = summarize(point_lat)
        report.batch_latency = summarize(batch_lat)
        return report


def storm_hook_from_log(
    source: Any, target: Any
) -> Tuple[Callable[[int], None], int]:
    """Churn storms replayed from a pre-generated update log.

    ``source`` holds the full day-batch sequence (e.g. an adversary
    scenario log written by ``repro scenarios run``); ``target`` is the
    live log a ``--follow`` cluster tails. Each storm appends the next
    source batch the target has not seen yet, so an adversary
    scenario's churn drives the serving plane mid-load. Both logs must
    share a ``start_day`` so sequence numbers line up. Returns
    ``(storm_fn, pending_count)``.
    """
    from ..stream import UpdateLogReader, UpdateLogWriter

    src = UpdateLogReader(source)
    batches = src.poll()
    dst = UpdateLogReader(target)
    logged = dst.poll()
    src_start = src.header.get("start_day", 0)
    dst_start = dst.header.get("start_day", 0)
    if src_start != dst_start:
        raise ValueError(
            f"churn source starts at day {src_start} but target log "
            f"starts at day {dst_start}; seq numbers would not align"
        )
    last_seq = logged[-1].seq if logged else 0
    pending = [batch for batch in batches if batch.seq > last_seq]
    writer = UpdateLogWriter(target)

    def storm(index: int) -> None:
        if index < len(pending):
            writer.append(pending[index])

    return storm, len(pending)


def render_report(report: LoadReport) -> str:
    """Human-readable summary (the CLI's non-JSON output)."""
    lines = [
        f"mix={report.mix} seed={report.seed} "
        f"target={report.target_qps:g} q/s "
        f"achieved={report.achieved_qps():.0f} q/s "
        f"duration={report.duration:.2f}s",
        f"queries: sent={report.sent} ok={report.ok} "
        f"failed={report.failed} (degraded={report.degraded} "
        f"rejected={report.rejected} "
        f"transport={report.transport_errors}) storms={report.storms}",
    ]
    for label, digest in (
        ("point", report.point_latency),
        ("batch", report.batch_latency),
    ):
        if digest.get("count"):
            lines.append(
                f"{label} latency: p50={digest['p50'] * 1e3:.2f}ms "
                f"p90={digest['p90'] * 1e3:.2f}ms "
                f"p99={digest['p99'] * 1e3:.2f}ms "
                f"max={digest['max'] * 1e3:.2f}ms "
                f"({digest['count']} samples)"
            )
    return "\n".join(lines)
