"""Named query mixes: the knobs that shape generated traffic.

A :class:`MixSpec` is a frozen bundle of distribution parameters — the
zipf skew over the address population, how concentrated the hot set
is, the point-vs-batch split, burstiness, and how many churn storms to
land mid-run. The registry gives every experiment, bench and smoke
script the same vocabulary (``repro load --mix hot-range`` and a test
asserting on the same name exercise byte-identical schedules for a
given seed).

The paper's core observation motivates the defaults: address reuse
concentrates many users behind few addresses, so realistic traffic is
zipfian over IPs — and when the hot set additionally shares one /24
(``hot_block=True``), the skew lands on a single shard, which is
exactly the load pattern a static partition cannot absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["MixSpec", "MIXES", "get_mix", "mix_names"]


@dataclass(frozen=True)
class MixSpec:
    """One named traffic shape (all knobs deterministic given a seed)."""

    name: str
    description: str
    #: Address family of the drawn population (``"ipv4"``/``"ipv6"``).
    #: A v6 mix draws from an Entropy/IP hitlist instead of a preset
    #: run's blocklisted addresses and travels as v6 wire frames.
    family: str = "ipv4"
    #: Zipf exponent over the ranked address population (0 = uniform).
    zipf_s: float = 1.1
    #: Size of the hot head of the population ranking.
    hot_ips: int = 64
    #: Concentrate the hot head inside one /24 block, so the skew
    #: lands on a single shard.
    hot_block: bool = False
    #: Fraction of *queries* carried by batch requests (the rest are
    #: point queries).
    batch_fraction: float = 0.5
    #: Queries per batch request.
    batch_size: int = 32
    #: Arrival-rate multiplier during burst phases (1.0 = no bursts).
    burst_factor: float = 1.0
    #: Fraction of wall-clock spent inside burst phases.
    burst_fraction: float = 0.0
    #: Churn storms to schedule across the run (delta-batch appends
    #: timed to land during ``--follow`` epoch swaps).
    churn_storms: int = 0

    def __post_init__(self) -> None:
        if self.family not in ("ipv4", "ipv6"):
            raise ValueError(f"unknown mix family: {self.family!r}")
        if self.zipf_s < 0:
            raise ValueError(f"negative zipf exponent: {self.zipf_s}")
        if self.hot_ips < 1:
            raise ValueError(f"hot set must hold >= 1 ip: {self.hot_ips}")
        if not 0.0 <= self.batch_fraction <= 1.0:
            raise ValueError(
                f"batch fraction out of 0..1: {self.batch_fraction}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {self.batch_size}")
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst factor must be >= 1: {self.burst_factor}"
            )
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError(
                f"burst fraction out of 0..1: {self.burst_fraction}"
            )
        if self.churn_storms < 0:
            raise ValueError(f"negative storm count: {self.churn_storms}")


MIXES: Dict[str, MixSpec] = {
    spec.name: spec
    for spec in (
        MixSpec(
            "steady",
            "mildly skewed open-loop traffic, half points half batches",
        ),
        MixSpec(
            "hot-range",
            "zipfian hot set concentrated in one /24 — drives one "
            "shard hot so auto-split has something to react to",
            zipf_s=1.4,
            hot_ips=48,
            hot_block=True,
            batch_fraction=0.4,
            burst_factor=3.0,
            burst_fraction=0.25,
        ),
        MixSpec(
            "batch-heavy",
            "pipelined bulk lookups: nearly everything travels in "
            "large batches",
            zipf_s=0.8,
            batch_fraction=0.95,
            batch_size=128,
        ),
        MixSpec(
            "churn-storm",
            "steady traffic with delta-batch storms appended to the "
            "followed log mid-run, so epoch swaps land under load",
            zipf_s=1.2,
            batch_fraction=0.5,
            churn_storms=3,
        ),
        MixSpec(
            "v6-hitlist",
            "zipfian lookups over the seeded hitlist-v6 survey's "
            "de-aliased hitlist, served as 128-bit wire frames",
            family="ipv6",
            zipf_s=1.2,
            hot_ips=32,
            batch_fraction=0.6,
            batch_size=48,
        ),
    )
}


def get_mix(name: str) -> MixSpec:
    """The registered mix, or :class:`KeyError` listing the options."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r} (choose from {', '.join(sorted(MIXES))})"
        ) from None


def mix_names() -> Tuple[str, ...]:
    return tuple(sorted(MIXES))
