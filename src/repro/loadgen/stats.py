"""Shared latency/throughput statistics for benches and the harness.

One definition of a percentile for the whole repo: the benchmark
modules and the load harness must report *identical* semantics or an
SLO measured by one cannot gate the other. The estimator is the
nearest-rank-on-sorted-samples form the benches always used
(``ordered[int(q * (len - 1))]``) — deterministic, no interpolation,
exact for the small sample counts CI runs produce.

``window_day_workload`` is the equally-shared workload shape: every
blocklisted address crossed with each collection window's edges and
midpoint, the deterministic (ip, day) stream the service and cluster
benches replay.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["percentile", "summarize", "window_day_workload"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples``; ``q`` in ``[0, 1]``."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile out of range 0..1: {q}")
    ordered = sorted(samples)
    return ordered[int(q * (len(ordered) - 1))]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """The SLO digest of one latency sample set (seconds in, seconds
    out): count plus mean/p50/p90/p99/max. Empty input yields a
    zeroed digest so a report over a phase that saw no traffic still
    serialises."""
    if not samples:
        return {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    ordered = sorted(samples)
    last = len(ordered) - 1
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": ordered[int(0.50 * last)],
        "p90": ordered[int(0.90 * last)],
        "p99": ordered[int(0.99 * last)],
        "max": ordered[-1],
    }


def window_day_workload(
    analysis: Any, n: int
) -> List[Tuple[int, Optional[int]]]:
    """A deterministic (ip, day) stream over every blocklisted
    address — spread across the whole space, so batches genuinely
    scatter over all shards — at each collection window's edges and
    midpoint, repeated/truncated to exactly ``n`` pairs."""
    ips = sorted(analysis.blocklisted_ips)
    days: List[int] = []
    for start, end in analysis.windows:
        days += [start, (start + end) // 2, end]
    pairs = [(ip, day) for day in days for ip in ips]
    if not pairs:
        raise ValueError("analysis has no blocklisted addresses")
    repeats = -(-n // len(pairs))  # ceil
    return (pairs * repeats)[:n]
