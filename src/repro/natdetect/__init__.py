"""NATed-address detection from BitTorrent crawl logs (Section 3.1)."""

from .evidence import (
    DEFAULT_ROUND_WINDOW,
    IpEvidence,
    PingRound,
    collect_evidence,
)
from .detector import (
    NatDetectionResult,
    NatVerdict,
    detect_by_node_ids,
    detect_by_ports,
    detect_nated,
)

__all__ = [
    "DEFAULT_ROUND_WINDOW",
    "IpEvidence",
    "PingRound",
    "collect_evidence",
    "NatDetectionResult",
    "NatVerdict",
    "detect_by_node_ids",
    "detect_by_ports",
    "detect_nated",
]
