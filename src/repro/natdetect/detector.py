"""NATed-address verdicts (paper Section 3.1).

The rule, verbatim from the paper: *"If the crawler gets more than two
responses with two different node_id's and two different port numbers,
we conclude that the IP address is shared by multiple BitTorrent
users."* Interpreted per ping round (simultaneity), this yields
high-precision positives and a per-IP lower bound on affected users —
the quantity Figure 8 plots.

Two alternative rules are also implemented for the ablation benches;
both are rules the paper explicitly *rejects*:

* :func:`detect_by_ports` — trust multi-port sightings without ping
  verification (breaks on stale routing entries after port churn);
* :func:`detect_by_node_ids` — count node_ids per IP over the whole
  crawl (breaks on node_id regeneration at reboot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..bittorrent.crawllog import CrawlLog
from .evidence import DEFAULT_ROUND_WINDOW, IpEvidence, collect_evidence

__all__ = [
    "NatVerdict",
    "NatDetectionResult",
    "detect_nated",
    "detect_by_ports",
    "detect_by_node_ids",
]


@dataclass(frozen=True)
class NatVerdict:
    """Detection outcome for one IP address."""

    ip: int
    is_nated: bool
    user_lower_bound: int
    ports_seen: int
    node_ids_seen: int
    ping_rounds: int


@dataclass
class NatDetectionResult:
    """All verdicts of one detection pass, with convenience queries."""

    verdicts: Dict[int, NatVerdict]

    def nated_ips(self) -> Set[int]:
        """IPs judged NATed."""
        return {ip for ip, v in self.verdicts.items() if v.is_nated}

    def users_behind(self, ip: int) -> int:
        """Detected user lower bound for ``ip`` (0 when never seen)."""
        verdict = self.verdicts.get(ip)
        return verdict.user_lower_bound if verdict else 0

    def user_counts(self) -> List[int]:
        """User lower bounds across all NATed IPs (Figure 8 input)."""
        return sorted(
            v.user_lower_bound for v in self.verdicts.values() if v.is_nated
        )


def detect_nated(
    log: CrawlLog,
    *,
    round_window: float = DEFAULT_ROUND_WINDOW,
    min_users: int = 2,
) -> NatDetectionResult:
    """Run the paper's verified detection over a crawl log."""
    if min_users < 2:
        raise ValueError("a NAT needs at least two users")
    evidence = collect_evidence(log, round_window=round_window)
    verdicts: Dict[int, NatVerdict] = {}
    for ip, entry in evidence.items():
        bound = entry.max_simultaneous_users()
        verdicts[ip] = NatVerdict(
            ip=ip,
            is_nated=bound >= min_users,
            user_lower_bound=bound,
            ports_seen=len(entry.ports_seen),
            node_ids_seen=len(entry.node_ids_seen),
            ping_rounds=len(entry.rounds),
        )
    return NatDetectionResult(verdicts)


def detect_by_ports(
    log: CrawlLog, *, min_ports: int = 2
) -> NatDetectionResult:
    """Ablation: call an IP NATed whenever ≥ ``min_ports`` distinct
    ports were ever sighted, with no liveness verification."""
    evidence = collect_evidence(log)
    verdicts: Dict[int, NatVerdict] = {}
    for ip, entry in evidence.items():
        nated = len(entry.ports_seen) >= min_ports
        verdicts[ip] = NatVerdict(
            ip=ip,
            is_nated=nated,
            user_lower_bound=len(entry.ports_seen) if nated else 1,
            ports_seen=len(entry.ports_seen),
            node_ids_seen=len(entry.node_ids_seen),
            ping_rounds=len(entry.rounds),
        )
    return NatDetectionResult(verdicts)


def detect_by_node_ids(
    log: CrawlLog, *, min_ids: int = 2
) -> NatDetectionResult:
    """Ablation: call an IP NATed whenever ≥ ``min_ids`` node_ids were
    ever observed for it, across the whole crawl (no simultaneity)."""
    evidence = collect_evidence(log)
    verdicts: Dict[int, NatVerdict] = {}
    for ip, entry in evidence.items():
        nated = len(entry.node_ids_seen) >= min_ids
        verdicts[ip] = NatVerdict(
            ip=ip,
            is_nated=nated,
            user_lower_bound=len(entry.node_ids_seen) if nated else 1,
            ports_seen=len(entry.ports_seen),
            node_ids_seen=len(entry.node_ids_seen),
            ping_rounds=len(entry.rounds),
        )
    return NatDetectionResult(verdicts)
