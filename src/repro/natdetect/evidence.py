"""Evidence extraction from crawl logs.

Turns the flat message log into per-IP *ping rounds*: bursts of bt_ping
responses close together in time. Simultaneity is the paper's whole
trick — two responses from different ports with different node_ids
*in the same round* prove two users share the address right now,
whereas the same observations hours apart could be one user who
restarted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..bittorrent.crawllog import CrawlLog, QUERY_PING, ReceivedRecord

__all__ = ["PingRound", "IpEvidence", "collect_evidence"]

#: Responses within this many seconds of a round's first response are
#: the same round. Ping bursts are sub-second; an hour separates rounds
#: (the crawler's reping interval), so anything under ~60 s is safe.
DEFAULT_ROUND_WINDOW = 30.0


@dataclass
class PingRound:
    """All ping responses from one IP within one round window."""

    start: float
    responses: List[ReceivedRecord] = field(default_factory=list)

    def distinct_ports(self) -> Set[int]:
        """Ports that answered this round."""
        return {r.src_port for r in self.responses}

    def distinct_node_ids(self) -> Set[str]:
        """node_ids that answered this round."""
        return {r.node_id for r in self.responses}

    def simultaneous_users(self) -> int:
        """Distinct (port, node_id) pairs — the per-round user count.

        Duplicate responses (retransmits, duplicated datagrams) from the
        same port+id collapse to one user.
        """
        return len({(r.src_port, r.node_id) for r in self.responses})


@dataclass
class IpEvidence:
    """Everything the crawl learned about one IP address."""

    ip: int
    ports_seen: Set[int] = field(default_factory=set)
    node_ids_seen: Set[str] = field(default_factory=set)
    rounds: List[PingRound] = field(default_factory=list)
    get_nodes_responses: int = 0

    def max_simultaneous_users(self) -> int:
        """Lower bound on concurrent users: the best round, counting
        only rounds where both ports and ids were distinct."""
        best = 0
        for rnd in self.rounds:
            if len(rnd.distinct_ports()) >= 2 and len(rnd.distinct_node_ids()) >= 2:
                users = min(
                    len(rnd.distinct_ports()), len(rnd.distinct_node_ids())
                )
                best = max(best, users)
            elif rnd.responses:
                best = max(best, 1)
        return best


def collect_evidence(
    log: CrawlLog, *, round_window: float = DEFAULT_ROUND_WINDOW
) -> Dict[int, IpEvidence]:
    """Fold a crawl log into per-IP evidence.

    Records are consumed in log order (the crawler appends in time
    order); a ping response starts a new round for its IP when it falls
    outside ``round_window`` of the current round's start.
    """
    if round_window <= 0:
        raise ValueError(f"round window must be positive: {round_window}")
    evidence: Dict[int, IpEvidence] = {}
    open_rounds: Dict[int, PingRound] = {}
    for record in log.received():
        entry = evidence.get(record.src_ip)
        if entry is None:
            entry = IpEvidence(record.src_ip)
            evidence[record.src_ip] = entry
        entry.ports_seen.add(record.src_port)
        entry.node_ids_seen.add(record.node_id)
        if record.kind != QUERY_PING:
            entry.get_nodes_responses += 1
            continue
        current = open_rounds.get(record.src_ip)
        if current is None or record.time - current.start > round_window:
            current = PingRound(start=record.time)
            entry.rounds.append(current)
            open_rounds[record.src_ip] = current
        current.responses.append(record)
    return evidence
