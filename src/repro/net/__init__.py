"""Networking primitives (IPv4 + address families) shared by every
subsystem."""

from .family import V4, V6, AddressFamily, family_named, family_of_ip
from .ipv4 import (
    MAX_IPV4,
    Prefix,
    addresses_to_slash24s,
    covering_prefix,
    int_to_ip,
    ip_to_int,
    is_valid_ip_int,
    parse_ip_or_prefix,
    slash24_int,
    slash24_of,
)
from .prefixtrie import PrefixSet, PrefixTrie
from .asdb import ASDatabase, ASKind, ASRecord
from .ports import (
    BITTORRENT_COMMON_RANGE,
    EPHEMERAL_RANGE,
    MAX_PORT,
    MIN_PORT,
    PortAllocator,
    is_valid_port,
)

__all__ = [
    "MAX_IPV4",
    "Prefix",
    "addresses_to_slash24s",
    "covering_prefix",
    "int_to_ip",
    "ip_to_int",
    "is_valid_ip_int",
    "parse_ip_or_prefix",
    "slash24_int",
    "slash24_of",
    "PrefixSet",
    "PrefixTrie",
    "ASDatabase",
    "ASKind",
    "ASRecord",
    "BITTORRENT_COMMON_RANGE",
    "EPHEMERAL_RANGE",
    "MAX_PORT",
    "MIN_PORT",
    "PortAllocator",
    "is_valid_port",
    "V4",
    "V6",
    "AddressFamily",
    "family_named",
    "family_of_ip",
]
