"""Autonomous-system database: AS records and IP-to-AS resolution.

The paper's Figure 3 groups blocklisted and reused addresses by origin
AS. In a live study that mapping comes from BGP dumps; here the synthetic
topology registers its prefixes, and the same lookup interface would work
over a RouteViews-derived table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .ipv4 import Prefix
from .prefixtrie import PrefixTrie

__all__ = ["ASKind", "ASRecord", "ASDatabase"]


class ASKind:
    """Coarse AS roles used by the topology generator.

    Eyeball networks host end users (and therefore NATs, DHCP pools and
    most abuse); hosting/cloud networks contribute server addresses;
    backbone/transit contribute little end-user address space.
    """

    EYEBALL = "eyeball"
    HOSTING = "hosting"
    BACKBONE = "backbone"

    ALL = (EYEBALL, HOSTING, BACKBONE)


@dataclass
class ASRecord:
    """One autonomous system and its originated address space."""

    asn: int
    name: str
    kind: str = ASKind.EYEBALL
    country: str = "US"
    prefixes: List[Prefix] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if self.kind not in ASKind.ALL:
            raise ValueError(f"unknown AS kind {self.kind!r}")

    def address_count(self) -> int:
        """Total addresses originated by this AS."""
        return sum(prefix.size() for prefix in self.prefixes)


class ASDatabase:
    """Registry of :class:`ASRecord` with longest-prefix IP→AS lookup."""

    # Defensive bound on the lookup memo (see PrefixSet._MEMO_MAX).
    _MEMO_MAX = 1 << 20

    def __init__(self) -> None:
        self._records: Dict[int, ASRecord] = {}
        self._trie: PrefixTrie[int] = PrefixTrie()
        # ip -> origin-ASN memo; analyses resolve the same addresses
        # over and over. Invalidated whenever the table changes.
        self._ip_memo: Dict[int, Optional[int]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ASRecord]:
        return iter(sorted(self._records.values(), key=lambda r: r.asn))

    def __contains__(self, asn: object) -> bool:
        return asn in self._records

    def add(self, record: ASRecord) -> None:
        """Register ``record`` and announce its prefixes.

        Re-registering an ASN is an error; announce additional prefixes
        with :meth:`announce` instead.
        """
        if record.asn in self._records:
            raise ValueError(f"AS{record.asn} already registered")
        self._records[record.asn] = record
        for prefix in record.prefixes:
            self._trie.insert(prefix, record.asn)
        self._ip_memo.clear()

    def announce(self, asn: int, prefix: Prefix) -> None:
        """Announce an additional ``prefix`` as originated by ``asn``."""
        record = self._records.get(asn)
        if record is None:
            raise KeyError(f"AS{asn} not registered")
        record.prefixes.append(prefix)
        self._trie.insert(prefix, asn)
        self._ip_memo.clear()

    def get(self, asn: int) -> Optional[ASRecord]:
        """Return the record for ``asn`` or None."""
        return self._records.get(asn)

    def asn_of(self, ip: int) -> Optional[int]:
        """Resolve integer address ``ip`` to its origin ASN (LPM).

        Memoised per address; the memo is cleared by :meth:`add` and
        :meth:`announce`.
        """
        memo = self._ip_memo
        if ip in memo:
            return memo[ip]
        if len(memo) >= self._MEMO_MAX:
            memo.clear()
        asn = memo[ip] = self._trie.lookup_value(ip)
        return asn

    def record_of(self, ip: int) -> Optional[ASRecord]:
        """Resolve ``ip`` to the full :class:`ASRecord`."""
        asn = self.asn_of(ip)
        return None if asn is None else self._records.get(asn)

    def group_by_asn(self, ips: Iterable[int]) -> Dict[int, int]:
        """Count addresses per origin AS; unroutable addresses are
        grouped under ASN 0."""
        counts: Dict[int, int] = {}
        for ip in ips:
            asn = self.asn_of(ip) or 0
            counts[asn] = counts.get(asn, 0) + 1
        return counts

    def records(self) -> List[ASRecord]:
        """All records sorted by ASN."""
        return list(self)
