"""Address-family descriptors: the one place 32 vs 128 bits lives.

The serving stack — :class:`~repro.net.prefixtrie.PrefixTrie`,
:class:`~repro.cluster.partition.PartitionMap`,
:class:`~repro.service.index.ReputationIndex`, the wire codec — is
parameterized over an :class:`AddressFamily` instead of hard-coding
IPv4 widths. A family bundles the integer width, the *atom* (the
alignment unit below which reuse state must never straddle a shard:
the paper's /24 for v4, the Entropy/IP /64 subnet for v6), and the
text codecs, so family-generic code never branches on magic numbers.

Two singletons exist, :data:`V4` and :data:`V6`; identity comparison
(``family is V4``) is the idiom. Wire payloads name families by the
``name`` field (``"ipv4"`` / ``"ipv6"``); absent means v4 so every
pre-existing payload and snapshot keeps its meaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from ..ipv6.addr6 import MAX_IPV6, Prefix6, int_to_ip6, ip6_to_int
from .ipv4 import MAX_IPV4, Prefix, int_to_ip, ip_to_int

__all__ = [
    "AddressFamily",
    "AnyPrefix",
    "V4",
    "V6",
    "FAMILIES",
    "family_named",
    "family_of_ip",
]

#: A prefix of either family (both expose network/length/mask/contains).
AnyPrefix = Union[Prefix, Prefix6]


@dataclass(frozen=True)
class AddressFamily:
    """Widths, alignment and codecs for one address family."""

    #: Wire/snapshot name (``"ipv4"`` / ``"ipv6"``).
    name: str
    #: Address width in bits (32 / 128).
    bits: int
    #: Host bits below the alignment atom: 8 → /24 blocks for v4,
    #: 64 → /64 subnets for v6. Partition ranges and dynamic-prefix
    #: expansion align to this unit.
    atom_host_bits: int
    #: Text → int parser (raises ValueError on malformed input).
    parse: Callable[[str], int] = field(compare=False)
    #: Int → canonical text formatter.
    format: Callable[[int], str] = field(compare=False)
    #: Prefix constructor ``(network, length) -> prefix``.
    make_prefix: Callable[[int, int], AnyPrefix] = field(compare=False)

    @property
    def max_int(self) -> int:
        """Largest valid address integer."""
        return (1 << self.bits) - 1

    @property
    def atom_bits(self) -> int:
        """Prefix length of the alignment atom (24 for v4, 64 for v6)."""
        return self.bits - self.atom_host_bits

    @property
    def atom_mask(self) -> int:
        """Mask of the host bits inside one atom."""
        return (1 << self.atom_host_bits) - 1

    @property
    def total_atoms(self) -> int:
        """Number of atoms tiling the whole space."""
        return 1 << self.atom_bits

    def valid_ip(self, value: int) -> bool:
        """True when ``value`` is an in-range address integer."""
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and 0 <= value <= self.max_int
        )

    def atom_of(self, ip: int) -> int:
        """The atom index (``ip`` shifted down to block granularity)."""
        return ip >> self.atom_host_bits

    def atom_prefix(self, ip: int) -> AnyPrefix:
        """The covering atom as a prefix (/24 for v4, /64 for v6)."""
        return self.make_prefix(ip & ~self.atom_mask, self.atom_bits)

    def hex(self, value: int) -> str:
        """Zero-padded hex rendering for error messages — 128-bit
        bounds are unreadable in decimal."""
        return f"0x{value:0{self.bits // 4}x}"

    def __repr__(self) -> str:  # keep reprs short in asserts/logs
        return f"<AddressFamily {self.name}>"


#: The IPv4 family: 32-bit addresses, /24 atoms.
V4 = AddressFamily(
    name="ipv4",
    bits=32,
    atom_host_bits=8,
    parse=ip_to_int,
    format=int_to_ip,
    make_prefix=Prefix,
)

#: The IPv6 family: 128-bit addresses, /64 atoms.
V6 = AddressFamily(
    name="ipv6",
    bits=128,
    atom_host_bits=64,
    parse=ip6_to_int,
    format=int_to_ip6,
    make_prefix=Prefix6,
)

#: Wire-name → family lookup.
FAMILIES = {V4.name: V4, V6.name: V6}


def family_named(name: object) -> AddressFamily:
    """Resolve a wire/snapshot family name; ``None`` means v4 (every
    payload written before families existed is v4)."""
    if name is None:
        return V4
    family = FAMILIES.get(name)  # type: ignore[arg-type]
    if family is None:
        raise ValueError(f"unknown address family: {name!r}")
    return family


def family_of_ip(text: str) -> AddressFamily:
    """Guess the family of an address literal from its syntax.

    A colon means v6, otherwise v4 — the parse itself still validates.
    """
    return V6 if ":" in text else V4
