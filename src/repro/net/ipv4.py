"""IPv4 address and prefix primitives.

Everything in this reproduction that touches addresses uses plain ``int``
values (0..2**32-1) on hot paths — the crawler handles millions of
addresses and ``ipaddress.IPv4Address`` objects are too heavy for that.
This module provides the conversions, a hashable :class:`Prefix` value
type, and the /24 helpers the paper leans on ("we consider the entire /24
prefix covering this IP address to be dynamically allocated").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, List

__all__ = [
    "MAX_IPV4",
    "ip_to_int",
    "int_to_ip",
    "is_valid_ip_int",
    "Prefix",
    "covering_prefix",
    "slash24_of",
    "slash24_int",
    "addresses_to_slash24s",
    "parse_ip_or_prefix",
]

#: Largest valid IPv4 address as an integer (255.255.255.255).
MAX_IPV4 = (1 << 32) - 1

_OCTET_SHIFTS = (24, 16, 8, 0)


def ip_to_int(text: str) -> int:
    """Parse dotted-quad ``text`` into an integer.

    Raises :class:`ValueError` for anything that is not a strict
    four-octet dotted quad (no shorthand like ``10.1``, no whitespace,
    no leading ``+``).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part or not part.isdigit() or len(part) > 3:
            raise ValueError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format integer ``value`` as a dotted quad."""
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"not an IPv4 integer: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in _OCTET_SHIFTS)


def is_valid_ip_int(value: int) -> bool:
    """Return True when ``value`` is within the IPv4 integer range."""
    return isinstance(value, int) and 0 <= value <= MAX_IPV4


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (CIDR block) as a value type.

    ``network`` is the integer form of the network address; ``length``
    is the mask length. Construction normalises (masks off host bits),
    so ``Prefix.from_text("10.0.0.5/24")`` raises — use
    :func:`covering_prefix` when you want the block around a host.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not is_valid_ip_int(self.network):
            raise ValueError(f"bad network integer: {self.network!r}")
        if self.network & ~self.mask():
            raise ValueError(
                f"host bits set in {int_to_ip(self.network)}/{self.length}"
            )

    @classmethod
    def from_text(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        addr, sep, length = text.partition("/")
        if not sep:
            raise ValueError(f"missing '/' in prefix {text!r}")
        if not length.isdigit():
            raise ValueError(f"bad prefix length in {text!r}")
        return cls(ip_to_int(addr), int(length))

    def mask(self) -> int:
        """Return the netmask as an integer."""
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    def contains(self, ip: int) -> bool:
        """Return True when integer address ``ip`` falls in this prefix."""
        return (ip & self.mask()) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True when ``other`` is equal to or nested inside self."""
        return other.length >= self.length and self.contains(other.network)

    def first(self) -> int:
        """Lowest address in the block (the network address)."""
        return self.network

    def last(self) -> int:
        """Highest address in the block (the broadcast address)."""
        return self.network | (~self.mask() & MAX_IPV4)

    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the block (use only on small blocks)."""
        return iter(range(self.first(), self.last() + 1))

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Iterate the sub-blocks of ``length`` tiling this prefix."""
        if length < self.length:
            raise ValueError(
                f"cannot tile /{self.length} with shorter /{length}"
            )
        step = 1 << (32 - length)
        return (
            Prefix(net, length)
            for net in range(self.first(), self.last() + 1, step)
        )

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


# Prefix is immutable, so the /24 and covering-prefix helpers can hand
# out shared cached instances; analyses resolve the same blocks over and
# over and the dataclass __post_init__ validation dominates otherwise.
@lru_cache(maxsize=1 << 16)
def covering_prefix(ip: int, length: int) -> Prefix:
    """Return the /``length`` prefix that covers integer address ``ip``."""
    if not is_valid_ip_int(ip):
        raise ValueError(f"bad address integer: {ip!r}")
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range: {length}")
    mask = Prefix(0, 0).mask() if length == 0 else (MAX_IPV4 << (32 - length)) & MAX_IPV4
    return Prefix(ip & mask, length)


@lru_cache(maxsize=1 << 16)
def slash24_of(ip: int) -> Prefix:
    """Return the covering /24 of ``ip`` — the paper's unit of dynamic
    address expansion (Section 3.2, "extent of dynamic addressing")."""
    return Prefix(ip & 0xFFFFFF00, 24)


def slash24_int(ip: int) -> int:
    """Return the /24 network as a bare integer (hot-path variant of
    :func:`slash24_of` that avoids allocating a Prefix)."""
    return ip & 0xFFFFFF00


def addresses_to_slash24s(ips: Iterable[int]) -> List[Prefix]:
    """Collapse addresses into their distinct covering /24 prefixes,
    sorted by network address."""
    nets = {slash24_int(ip) for ip in ips}
    return [Prefix(net, 24) for net in sorted(nets)]


def parse_ip_or_prefix(text: str) -> Prefix:
    """Parse either a bare address (→ /32) or CIDR notation.

    Blocklist feeds mix both forms; this is the tolerant entry point the
    parsers use.
    """
    text = text.strip()
    if "/" in text:
        addr, _, length_text = text.partition("/")
        if not length_text.isdigit():
            raise ValueError(f"bad prefix length in {text!r}")
        length = int(length_text)
        return covering_prefix(ip_to_int(addr), length)
    return Prefix(ip_to_int(text), 32)
