"""UDP port conventions and allocation helpers.

NAT gateways rewrite source ports; BitTorrent clients bind an ephemeral
or configured port. These helpers keep the two worlds consistent and
give deterministic, collision-free allocation for the simulators.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Set

__all__ = [
    "MIN_PORT",
    "MAX_PORT",
    "EPHEMERAL_RANGE",
    "BITTORRENT_COMMON_RANGE",
    "is_valid_port",
    "PortAllocator",
]

#: Smallest usable UDP port (0 is reserved).
MIN_PORT = 1
#: Largest UDP port.
MAX_PORT = 65535
#: IANA-suggested ephemeral range, used by NAT translation.
EPHEMERAL_RANGE = (49152, 65535)
#: Range most BitTorrent clients default to for their DHT port.
BITTORRENT_COMMON_RANGE = (6881, 6999)


def is_valid_port(port: int) -> bool:
    """Return True for a valid non-zero UDP port number."""
    return isinstance(port, int) and MIN_PORT <= port <= MAX_PORT


class PortAllocator:
    """Deterministic collision-free port allocator over a range.

    A NAT gateway owns one allocator per public IP; a simulated host owns
    one for its local sockets. Allocation order is randomised by the
    provided RNG so port numbers do not correlate with join order
    (real NATs do the same to frustrate scanning).
    """

    def __init__(
        self,
        rng: random.Random,
        low: int = EPHEMERAL_RANGE[0],
        high: int = EPHEMERAL_RANGE[1],
    ) -> None:
        if not (is_valid_port(low) and is_valid_port(high) and low <= high):
            raise ValueError(f"bad port range [{low}, {high}]")
        self._rng = rng
        self._low = low
        self._high = high
        self._in_use: Set[int] = set()

    @property
    def capacity(self) -> int:
        """Total ports in the managed range."""
        return self._high - self._low + 1

    @property
    def in_use(self) -> int:
        """Ports currently allocated."""
        return len(self._in_use)

    def allocate(self) -> int:
        """Allocate a free port, raising :class:`RuntimeError` when the
        range is exhausted (a CGN under port pressure hits this)."""
        free = self.capacity - len(self._in_use)
        if free <= 0:
            raise RuntimeError(
                f"port range [{self._low}, {self._high}] exhausted"
            )
        # Rejection-sample; with realistic occupancy this terminates in a
        # couple of draws, and we fall back to a linear scan when the
        # range is nearly full.
        for _ in range(16):
            port = self._rng.randint(self._low, self._high)
            if port not in self._in_use:
                self._in_use.add(port)
                return port
        for port in range(self._low, self._high + 1):
            if port not in self._in_use:
                self._in_use.add(port)
                return port
        raise RuntimeError("unreachable: free port accounting corrupt")

    def claim(self, port: int) -> bool:
        """Claim a specific port (e.g. a client's configured BitTorrent
        port). Returns False when it is taken or out of range."""
        if not (self._low <= port <= self._high) or port in self._in_use:
            return False
        self._in_use.add(port)
        return True

    def release(self, port: int) -> None:
        """Return ``port`` to the pool; releasing a free port is an
        error (it means the caller's mapping table is out of sync)."""
        if port not in self._in_use:
            raise KeyError(f"port {port} is not allocated")
        self._in_use.remove(port)

    def __contains__(self, port: int) -> bool:
        return port in self._in_use
