"""Binary radix trie for longest-prefix matching over one address family.

The AS database, the crawler's "blocklisted address space" restriction,
and the RIPE /24 expansion all need fast membership and longest-prefix
queries over large prefix sets. A path-compressed binary trie keyed on
the bits of the network address gives O(bits) lookups independent of
set size — O(32) for IPv4, O(128) for IPv6. The family
(:data:`~repro.net.family.V4` by default) fixes the key width and which
prefix type lookups return; a trie never mixes families.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from .family import V4, AddressFamily, AnyPrefix

__all__ = ["PrefixTrie", "PrefixSet"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Map from prefixes to values with longest-prefix-match lookup.

    Inserting the same prefix twice overwrites the value (last write
    wins) — blocklist snapshots are replayed in time order and rely on
    this.
    """

    def __init__(self, family: AddressFamily = V4) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0
        self._family = family
        self._bits = family.bits
        self._max = family.max_int

    @property
    def family(self) -> AddressFamily:
        """The address family this trie is keyed on."""
        return self._family

    def __len__(self) -> int:
        return self._count

    def _check_prefix(self, prefix: AnyPrefix) -> None:
        if prefix.length > self._bits or prefix.network > self._max:
            raise ValueError(
                f"prefix {prefix} does not fit a "
                f"{self._family.name} trie"
            )

    def insert(self, prefix: AnyPrefix, value: V) -> None:
        """Insert ``prefix`` mapping to ``value``."""
        self._check_prefix(prefix)
        top = self._bits - 1
        network = prefix.network
        node = self._root
        for depth in range(prefix.length):
            bit = (network >> (top - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: AnyPrefix) -> bool:
        """Remove an exact prefix. Returns True when it was present.

        Leaves empty interior nodes in place; the trie is build-heavy and
        query-heavy, not delete-heavy, so compaction is not worth the
        bookkeeping.
        """
        self._check_prefix(prefix)
        top = self._bits - 1
        node: Optional[_Node[V]] = self._root
        for depth in range(prefix.length):
            if node is None:
                return False
            node = node.children[(prefix.network >> (top - depth)) & 1]
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._count -= 1
        return True

    def exact(self, prefix: AnyPrefix) -> Optional[V]:
        """Return the value stored at exactly ``prefix``, or None."""
        self._check_prefix(prefix)
        top = self._bits - 1
        node: Optional[_Node[V]] = self._root
        for depth in range(prefix.length):
            if node is None:
                return None
            node = node.children[(prefix.network >> (top - depth)) & 1]
        if node is not None and node.has_value:
            return node.value
        return None

    def lookup(self, ip: int) -> Optional[Tuple[AnyPrefix, V]]:
        """Longest-prefix match for integer address ``ip``.

        Returns the matching ``(prefix, value)`` pair or None.
        """
        if not self._family.valid_ip(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        bits, top = self._bits, self._bits - 1
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        depth = 0
        while node is not None:
            if node.has_value:
                best = (depth, node.value)  # type: ignore[arg-type]
            if depth == bits:
                break
            node = node.children[(ip >> (top - depth)) & 1]
            depth += 1
        if best is None:
            return None
        length, value = best
        mask = 0 if length == 0 else (self._max << (bits - length)) & self._max
        return self._family.make_prefix(ip & mask, length), value

    def lookup_value(self, ip: int) -> Optional[V]:
        """Longest-prefix match returning just the value (hot path).

        Walks the trie directly instead of delegating to :meth:`lookup`
        so no result prefix object is constructed per call.
        """
        if not self._family.valid_ip(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        bits, top = self._bits, self._bits - 1
        node: Optional[_Node[V]] = self._root
        best: Optional[V] = None
        found = False
        depth = 0
        while node is not None:
            if node.has_value:
                best = node.value
                found = True
            if depth == bits:
                break
            node = node.children[(ip >> (top - depth)) & 1]
            depth += 1
        return best if found else None

    def covers(self, ip: int) -> bool:
        """Return True when any stored prefix contains ``ip``."""
        if not self._family.valid_ip(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        bits, top = self._bits, self._bits - 1
        node: Optional[_Node[V]] = self._root
        depth = 0
        while node is not None:
            if node.has_value:
                return True
            if depth == bits:
                break
            node = node.children[(ip >> (top - depth)) & 1]
            depth += 1
        return False

    def items(self) -> Iterator[Tuple[AnyPrefix, V]]:
        """Iterate ``(prefix, value)`` pairs in address order."""
        bits, top = self._bits, self._bits - 1
        make = self._family.make_prefix
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        out: List[Tuple[AnyPrefix, V]] = []
        while stack:
            node, net, depth = stack.pop()
            if node.has_value:
                mask = (
                    0
                    if depth == 0
                    else (self._max << (bits - depth)) & self._max
                )
                out.append((make(net & mask, depth), node.value))  # type: ignore[arg-type]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append(
                        (child, net | (bit << (top - depth)), depth + 1)
                    )
        out.sort(key=lambda item: (item[0].network, item[0].length))
        return iter(out)

    def __iter__(self) -> Iterator[AnyPrefix]:
        return (prefix for prefix, _ in self.items())


class PrefixSet:
    """A set of same-family prefixes with containment queries.

    Thin wrapper over :class:`PrefixTrie` used wherever only membership
    matters (e.g. "is this address inside the crawl-allowed space?").
    """

    # Defensive bound on the membership memo; real runs see a few
    # thousand distinct addresses, so this never trips in practice.
    _MEMO_MAX = 1 << 20

    def __init__(
        self,
        prefixes: Optional[Iterator[AnyPrefix]] = None,
        family: AddressFamily = V4,
    ) -> None:
        self._trie: PrefixTrie[bool] = PrefixTrie(family)
        # ip -> membership memo. The crawler asks contains_ip for every
        # sighting, and sightings repeat the same few thousand addresses
        # millions of times; caching turns the O(bits) walk into one
        # dict hit. Any mutation invalidates the whole memo.
        self._ip_memo: Dict[int, bool] = {}
        if prefixes is not None:
            for prefix in prefixes:
                self.add(prefix)

    @property
    def family(self) -> AddressFamily:
        """The address family of the member prefixes."""
        return self._trie.family

    def __len__(self) -> int:
        return len(self._trie)

    def add(self, prefix: AnyPrefix) -> None:
        """Add ``prefix`` to the set."""
        self._trie.insert(prefix, True)
        self._ip_memo.clear()

    def discard(self, prefix: AnyPrefix) -> bool:
        """Remove an exact prefix; returns True when it was present."""
        self._ip_memo.clear()
        return self._trie.remove(prefix)

    def contains_ip(self, ip: int) -> bool:
        """True when some member prefix covers integer address ``ip``."""
        memo = self._ip_memo
        hit = memo.get(ip)
        if hit is None:
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            hit = memo[ip] = self._trie.covers(ip)
        return hit

    def contains_exact(self, prefix: AnyPrefix) -> bool:
        """True when exactly ``prefix`` is a member."""
        return self._trie.exact(prefix) is not None

    def __contains__(self, item: object) -> bool:
        if isinstance(item, int):
            return self.contains_ip(item)
        if hasattr(item, "network") and hasattr(item, "length"):
            return self.contains_exact(item)  # type: ignore[arg-type]
        raise TypeError(f"cannot test membership of {type(item).__name__}")

    def __iter__(self) -> Iterator[AnyPrefix]:
        return iter(self._trie)

    def prefixes(self) -> List[AnyPrefix]:
        """All member prefixes in address order."""
        return list(self._trie)
