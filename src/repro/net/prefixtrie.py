"""Binary radix trie for longest-prefix matching over IPv4.

The AS database, the crawler's "blocklisted address space" restriction,
and the RIPE /24 expansion all need fast membership and longest-prefix
queries over large prefix sets. A path-compressed binary trie keyed on
the bits of the network address gives O(32) lookups independent of set
size.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from .ipv4 import MAX_IPV4, Prefix, is_valid_ip_int

__all__ = ["PrefixTrie", "PrefixSet"]

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


def _bit(ip: int, depth: int) -> int:
    """Bit of ``ip`` at ``depth`` (0 = most significant)."""
    return (ip >> (31 - depth)) & 1


class PrefixTrie(Generic[V]):
    """Map from IPv4 prefixes to values with longest-prefix-match lookup.

    Inserting the same prefix twice overwrites the value (last write
    wins) — blocklist snapshots are replayed in time order and rely on
    this.
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert ``prefix`` mapping to ``value``."""
        node = self._root
        for depth in range(prefix.length):
            bit = _bit(prefix.network, depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove an exact prefix. Returns True when it was present.

        Leaves empty interior nodes in place; the trie is build-heavy and
        query-heavy, not delete-heavy, so compaction is not worth the
        bookkeeping.
        """
        node: Optional[_Node[V]] = self._root
        for depth in range(prefix.length):
            if node is None:
                return False
            node = node.children[_bit(prefix.network, depth)]
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._count -= 1
        return True

    def exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored at exactly ``prefix``, or None."""
        node: Optional[_Node[V]] = self._root
        for depth in range(prefix.length):
            if node is None:
                return None
            node = node.children[_bit(prefix.network, depth)]
        if node is not None and node.has_value:
            return node.value
        return None

    def lookup(self, ip: int) -> Optional[Tuple[Prefix, V]]:
        """Longest-prefix match for integer address ``ip``.

        Returns the matching ``(prefix, value)`` pair or None.
        """
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[int, V]] = None
        depth = 0
        while node is not None:
            if node.has_value:
                best = (depth, node.value)  # type: ignore[arg-type]
            if depth == 32:
                break
            node = node.children[_bit(ip, depth)]
            depth += 1
        if best is None:
            return None
        length, value = best
        mask = 0 if length == 0 else (MAX_IPV4 << (32 - length)) & MAX_IPV4
        return Prefix(ip & mask, length), value

    def lookup_value(self, ip: int) -> Optional[V]:
        """Longest-prefix match returning just the value (hot path).

        Walks the trie directly instead of delegating to :meth:`lookup`
        so no result :class:`Prefix` is constructed per call.
        """
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        node: Optional[_Node[V]] = self._root
        best: Optional[V] = None
        found = False
        depth = 0
        while node is not None:
            if node.has_value:
                best = node.value
                found = True
            if depth == 32:
                break
            node = node.children[(ip >> (31 - depth)) & 1]
            depth += 1
        return best if found else None

    def covers(self, ip: int) -> bool:
        """Return True when any stored prefix contains ``ip``."""
        if not is_valid_ip_int(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        node: Optional[_Node[V]] = self._root
        depth = 0
        while node is not None:
            if node.has_value:
                return True
            if depth == 32:
                break
            node = node.children[(ip >> (31 - depth)) & 1]
            depth += 1
        return False

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate ``(prefix, value)`` pairs in address order."""
        stack: List[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        out: List[Tuple[Prefix, V]] = []
        while stack:
            node, net, depth = stack.pop()
            if node.has_value:
                mask = 0 if depth == 0 else (MAX_IPV4 << (32 - depth)) & MAX_IPV4
                out.append((Prefix(net & mask, depth), node.value))  # type: ignore[arg-type]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append(
                        (child, net | (bit << (31 - (depth))), depth + 1)
                    )
        out.sort(key=lambda item: (item[0].network, item[0].length))
        return iter(out)

    def __iter__(self) -> Iterator[Prefix]:
        return (prefix for prefix, _ in self.items())


class PrefixSet:
    """A set of IPv4 prefixes with containment queries.

    Thin wrapper over :class:`PrefixTrie` used wherever only membership
    matters (e.g. "is this address inside the crawl-allowed space?").
    """

    # Defensive bound on the membership memo; real runs see a few
    # thousand distinct addresses, so this never trips in practice.
    _MEMO_MAX = 1 << 20

    def __init__(self, prefixes: Optional[Iterator[Prefix]] = None) -> None:
        self._trie: PrefixTrie[bool] = PrefixTrie()
        # ip -> membership memo. The crawler asks contains_ip for every
        # sighting, and sightings repeat the same few thousand addresses
        # millions of times; caching turns the O(32) walk into one dict
        # hit. Any mutation invalidates the whole memo.
        self._ip_memo: Dict[int, bool] = {}
        if prefixes is not None:
            for prefix in prefixes:
                self.add(prefix)

    def __len__(self) -> int:
        return len(self._trie)

    def add(self, prefix: Prefix) -> None:
        """Add ``prefix`` to the set."""
        self._trie.insert(prefix, True)
        self._ip_memo.clear()

    def discard(self, prefix: Prefix) -> bool:
        """Remove an exact prefix; returns True when it was present."""
        self._ip_memo.clear()
        return self._trie.remove(prefix)

    def contains_ip(self, ip: int) -> bool:
        """True when some member prefix covers integer address ``ip``."""
        memo = self._ip_memo
        hit = memo.get(ip)
        if hit is None:
            if len(memo) >= self._MEMO_MAX:
                memo.clear()
            hit = memo[ip] = self._trie.covers(ip)
        return hit

    def contains_exact(self, prefix: Prefix) -> bool:
        """True when exactly ``prefix`` is a member."""
        return self._trie.exact(prefix) is not None

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Prefix):
            return self.contains_exact(item)
        if isinstance(item, int):
            return self.contains_ip(item)
        raise TypeError(f"cannot test membership of {type(item).__name__}")

    def __iter__(self) -> Iterator[Prefix]:
        return iter(self._trie)

    def prefixes(self) -> List[Prefix]:
        """All member prefixes in address order."""
        return list(self._trie)
