"""RIPE Atlas substrate: probes, connection logs, dynamic detection."""

from .connlog import (
    KIND_CONNECT,
    KIND_DISCONNECT,
    ConnectionEvent,
    ConnectionLog,
    read_jsonl,
    write_jsonl,
)
from .changes import ChangeReasons, ChangeRecord, classify_changes
from .kneedle import allocation_threshold, find_knee, find_knee_index
from .simulate import AtlasConfig, ProbeDeployment, deploy_probes, synthesize_log
from .pipeline import (
    PipelineConfig,
    PipelineResult,
    ProbeSummary,
    run_pipeline,
    summarize_probes,
)

__all__ = [
    "KIND_CONNECT",
    "KIND_DISCONNECT",
    "ChangeReasons",
    "ChangeRecord",
    "classify_changes",
    "ConnectionEvent",
    "ConnectionLog",
    "read_jsonl",
    "write_jsonl",
    "allocation_threshold",
    "find_knee",
    "find_knee_index",
    "AtlasConfig",
    "ProbeDeployment",
    "deploy_probes",
    "synthesize_log",
    "PipelineConfig",
    "PipelineResult",
    "ProbeSummary",
    "run_pipeline",
    "summarize_probes",
]
