"""Why did the address change? — Padmanabhan et al. analysis.

Section 3.2 "extends Padmanabhan et al.'s idea of using the RIPE Atlas
measurement logs"; their original study ("Reasons Dynamic Addresses
Change", IMC 2016) classified each observed address change by what
preceded it: a connectivity outage (power cut, CPE reboot, ISP
maintenance) or nothing visible (a silent lease-pool renumbering).

This module reproduces that classification over our connection logs:
an address change whose new-address connect follows a disconnect
within ``attribution_window_days`` is *outage-associated*; otherwise
it is *silent*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .connlog import KIND_CONNECT, KIND_DISCONNECT, ConnectionLog

__all__ = ["ChangeRecord", "ChangeReasons", "classify_changes"]


@dataclass(frozen=True)
class ChangeRecord:
    """One observed address change of one probe."""

    probe_id: int
    day: float
    old_ip: int
    new_ip: int
    #: Gap since the probe was last heard from (days).
    silence_days: float
    #: True when a disconnect event preceded this change within the
    #: attribution window.
    outage_associated: bool


@dataclass
class ChangeReasons:
    """All classified changes plus the summary statistics."""

    changes: List[ChangeRecord] = field(default_factory=list)

    def total(self) -> int:
        """Number of address changes observed."""
        return len(self.changes)

    def outage_associated(self) -> int:
        """Changes that followed a visible outage."""
        return sum(1 for c in self.changes if c.outage_associated)

    def outage_fraction(self) -> float:
        """Fraction of changes explained by outages."""
        if not self.changes:
            return 0.0
        return self.outage_associated() / len(self.changes)

    def median_silence_days(self) -> float:
        """Median quiet time preceding a change."""
        if not self.changes:
            return 0.0
        ordered = sorted(c.silence_days for c in self.changes)
        return ordered[len(ordered) // 2]


def classify_changes(
    log: ConnectionLog,
    *,
    attribution_window_days: float = 1.0,
) -> ChangeReasons:
    """Classify every address change in ``log``.

    For each probe, walk the raw event stream in time order; when a
    connect shows a new address, attribute it to the most recent
    disconnect if one occurred within the window and after the previous
    connect.
    """
    if attribution_window_days <= 0:
        raise ValueError("attribution window must be positive")
    reasons = ChangeReasons()
    for probe_id, events in log.by_probe().items():
        current_ip: Optional[int] = None
        last_seen: Optional[float] = None
        last_disconnect: Optional[float] = None
        for event in events:
            if event.kind == KIND_DISCONNECT:
                last_disconnect = event.day
                continue
            if event.kind != KIND_CONNECT:
                continue
            if current_ip is not None and event.ip != current_ip:
                outage = (
                    last_disconnect is not None
                    and event.day - last_disconnect
                    <= attribution_window_days
                    and (last_seen is None or last_disconnect >= last_seen - 1e-9)
                )
                reasons.changes.append(
                    ChangeRecord(
                        probe_id=probe_id,
                        day=event.day,
                        old_ip=current_ip,
                        new_ip=event.ip,
                        silence_days=(
                            event.day - last_seen
                            if last_seen is not None
                            else 0.0
                        ),
                        outage_associated=bool(outage),
                    )
                )
            current_ip = event.ip
            last_seen = event.day
        # probe ends; nothing to flush
    return reasons
