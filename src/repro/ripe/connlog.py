"""RIPE Atlas connection-log records.

Every Atlas probe reports to the central infrastructure; its connection
log records when it (re)connects and from which public address. The
paper mines exactly this: per-probe address sequences over 16 months.
We reproduce the same minimal schema — (probe_id, day, ip) connect
events — plus JSONL persistence so pipelines run over files, like the
real measurement would.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

__all__ = [
    "KIND_CONNECT",
    "KIND_DISCONNECT",
    "ConnectionEvent",
    "ConnectionLog",
    "write_jsonl",
    "read_jsonl",
]


KIND_CONNECT = "connect"
KIND_DISCONNECT = "disconnect"


@dataclass(frozen=True, slots=True)
class ConnectionEvent:
    """One probe connection-state event seen by the Atlas
    infrastructure: a (re)connect from an address, or a disconnect
    (the probe dropping off; ``ip`` is the address it last held)."""

    probe_id: int
    day: float
    ip: int
    kind: str = KIND_CONNECT

    def __post_init__(self) -> None:
        if self.probe_id < 0:
            raise ValueError(f"bad probe id {self.probe_id}")
        if self.day < 0:
            raise ValueError(f"negative day {self.day}")
        if self.kind not in (KIND_CONNECT, KIND_DISCONNECT):
            raise ValueError(f"bad event kind {self.kind!r}")


class ConnectionLog:
    """Append-only connection log with per-probe views."""

    def __init__(self, events: Iterable[ConnectionEvent] = ()) -> None:
        self._events: List[ConnectionEvent] = []
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ConnectionEvent]:
        return iter(self._events)

    def append(self, event: ConnectionEvent) -> None:
        """Add one event."""
        self._events.append(event)

    def probe_ids(self) -> List[int]:
        """Every probe that appears in the log."""
        return sorted({e.probe_id for e in self._events})

    def by_probe(self) -> Dict[int, List[ConnectionEvent]]:
        """Events grouped by probe, time-ordered within each probe."""
        grouped: Dict[int, List[ConnectionEvent]] = {}
        for event in self._events:
            grouped.setdefault(event.probe_id, []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: e.day)
        return grouped

    def address_sequence(self, probe_id: int) -> List[ConnectionEvent]:
        """The probe's *connect* events with consecutive duplicates
        collapsed — reconnects from an unchanged address are not
        address changes, and disconnects carry no new address."""
        sequence: List[ConnectionEvent] = []
        for event in sorted(
            (
                e
                for e in self._events
                if e.probe_id == probe_id and e.kind == KIND_CONNECT
            ),
            key=lambda e: e.day,
        ):
            if not sequence or sequence[-1].ip != event.ip:
                sequence.append(event)
        return sequence


def write_jsonl(log: ConnectionLog, path: Union[str, Path]) -> int:
    """Persist the log as JSON Lines; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in log:
            record = {"p": event.probe_id, "d": event.day, "ip": event.ip}
            if event.kind != KIND_CONNECT:
                record["k"] = event.kind
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> ConnectionLog:
    """Load a connection log written by :func:`write_jsonl`."""
    log = ConnectionLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                log.append(
                    ConnectionEvent(
                        probe_id=int(obj["p"]),
                        day=float(obj["d"]),
                        ip=int(obj["ip"]),
                        kind=obj.get("k", KIND_CONNECT),
                    )
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad connection event: {exc}"
                ) from exc
    return log
