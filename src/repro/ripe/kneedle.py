"""Knee-point detection — Satopää et al., "Finding a 'Kneedle' in a
Haystack" (ICDCSW 2011).

The paper uses this to pick the allocation-count threshold (8) that
separates frequently-readdressed RIPE probes from the rest (Figure 2).
The implementation follows the published algorithm: min-max normalise,
compute the difference curve against the chord, and take the maximum
difference, honouring curve shape (concave/convex) and direction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["find_knee_index", "find_knee", "allocation_threshold"]


def _normalise(values: Sequence[float]) -> List[float]:
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return [0.0 for _ in values]
    return [(v - lo) / (hi - lo) for v in values]


def _smooth(values: Sequence[float], window: int) -> List[float]:
    """Centred moving average (the paper's smoothing spline stand-in;
    adequate for monotone step curves)."""
    if window <= 1:
        return list(values)
    half = window // 2
    out: List[float] = []
    for index in range(len(values)):
        lo = max(0, index - half)
        hi = min(len(values), index + half + 1)
        out.append(sum(values[lo:hi]) / (hi - lo))
    return out


def find_knee_index(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    curve: str = "convex",
    direction: str = "increasing",
    smoothing: int = 1,
) -> Optional[int]:
    """Index of the knee/elbow of the discrete curve (xs, ys).

    ``curve='convex'`` finds the knee of a flat-then-steep curve (our
    Figure 2 shape); ``'concave'`` finds the elbow of diminishing
    returns. Returns None for degenerate inputs (fewer than 3 points or
    a flat curve).
    """
    if curve not in ("convex", "concave"):
        raise ValueError(f"curve must be convex/concave, got {curve!r}")
    if direction not in ("increasing", "decreasing"):
        raise ValueError(f"bad direction {direction!r}")
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 3:
        return None
    if min(ys) == max(ys):
        return None
    x_norm = _normalise(xs)
    y_norm = _normalise(_smooth(ys, smoothing))
    if direction == "decreasing":
        x_norm = [1.0 - x for x in x_norm]
        x_norm.reverse()
        y_norm = list(reversed(y_norm))
    if curve == "concave":
        differences = [y - x for x, y in zip(x_norm, y_norm)]
    else:
        differences = [x - y for x, y in zip(x_norm, y_norm)]
    best_index = max(range(len(differences)), key=differences.__getitem__)
    if differences[best_index] <= 0:
        return None
    if direction == "decreasing":
        best_index = len(xs) - 1 - best_index
    return best_index


def find_knee(
    xs: Sequence[float],
    ys: Sequence[float],
    **kwargs,
) -> Optional[Tuple[float, float]]:
    """The (x, y) coordinates of the knee, or None."""
    index = find_knee_index(xs, ys, **kwargs)
    if index is None:
        return None
    return xs[index], ys[index]


def allocation_threshold(
    allocation_counts: Sequence[int], *, fallback: int = 8
) -> int:
    """The paper's Figure 2 procedure: sort per-probe allocation counts
    ascending, find the knee of the resulting convex increasing curve,
    and return the allocation count at the knee.

    Falls back to the paper's published value (8) when the curve is
    degenerate (e.g. a tiny test scenario where every probe is static).
    """
    if not allocation_counts:
        return fallback
    ys = sorted(allocation_counts)
    xs = list(range(len(ys)))
    knee = find_knee(xs, [float(y) for y in ys], curve="convex")
    if knee is None:
        return fallback
    threshold = int(knee[1])
    return max(threshold, 2)
