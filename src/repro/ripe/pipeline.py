"""Dynamic-address detection pipeline (paper Section 3.2).

Four stages over the Atlas connection log:

1. **Group** — per-probe address sequences (collapsing reconnects that
   kept the same address).
2. **Same-AS filter** — drop probes whose addresses span multiple ASes
   (relocated probes, multi-AS ISPs); they confuse reallocation with
   relocation.
3. **Frequency filter** — keep probes with at least *k* allocations,
   where *k* is the knee point of the sorted allocation-count curve
   (the paper finds k = 8 with the Kneedle algorithm).
4. **Daily-change filter** — keep probes whose mean time between
   changes is within one day; only those make blocklisting promptly
   unjust.

Surviving probes' addresses are expanded to covering /24 prefixes —
the published "dynamic prefixes" artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..net.asdb import ASDatabase
from ..net.ipv4 import Prefix, slash24_of
from .connlog import ConnectionLog
from .kneedle import allocation_threshold

__all__ = ["PipelineConfig", "ProbeSummary", "PipelineResult", "run_pipeline"]


@dataclass
class PipelineConfig:
    """Pipeline thresholds (paper defaults)."""

    #: Mean inter-change duration ceiling for the daily filter (days).
    daily_mean_days: float = 1.0
    #: Force the allocation threshold instead of detecting the knee
    #: (None = run Kneedle, the paper's procedure).
    fixed_allocation_threshold: Optional[int] = None
    #: Prefix length dynamic addresses are expanded to.
    expansion_prefix_len: int = 24


@dataclass
class ProbeSummary:
    """Per-probe features the filters consume."""

    probe_id: int
    addresses: List[int]
    first_day: float
    last_day: float
    asns: Set[int] = field(default_factory=set)

    @property
    def allocation_count(self) -> int:
        """Number of address allocations observed."""
        return len(self.addresses)

    @property
    def change_count(self) -> int:
        """Number of address changes."""
        return len(self.addresses) - 1

    def mean_interchange_days(self) -> float:
        """Average days between consecutive address changes."""
        if self.change_count == 0:
            return float("inf")
        return (self.last_day - self.first_day) / self.change_count

    def same_as(self) -> bool:
        """True when every address resolved to one AS."""
        return len(self.asns) == 1


@dataclass
class PipelineResult:
    """Stage-by-stage outcome (the funnel of Figure 4's lower half)."""

    all_probes: List[ProbeSummary]
    same_as_probes: List[ProbeSummary]
    frequent_probes: List[ProbeSummary]
    daily_probes: List[ProbeSummary]
    allocation_knee: int
    dynamic_prefixes: Set[Prefix]

    def all_ripe_prefixes(self) -> Set[Prefix]:
        """/24s covering *every* probe address (the paper's "RIPE
        prefixes" baseline set: 311K addresses → 90.5K /24s)."""
        return {
            slash24_of(ip)
            for probe in self.all_probes
            for ip in probe.addresses
        }

    def stage_prefixes(self, probes: Sequence[ProbeSummary]) -> Set[Prefix]:
        """/24 expansion of a stage's probe addresses."""
        return {slash24_of(ip) for p in probes for ip in p.addresses}

    def funnel_counts(self) -> Dict[str, int]:
        """Probe counts per stage."""
        return {
            "all": len(self.all_probes),
            "same_as": len(self.same_as_probes),
            "frequent": len(self.frequent_probes),
            "daily": len(self.daily_probes),
        }


def _summarize_one(shared, probe_id: int) -> Optional[ProbeSummary]:
    """One probe's summary (``None`` for probes with no connections).

    Pure function of (log, asdb, probe_id) — the per-probe shard unit
    for parallel grouping.
    """
    log, asdb = shared
    sequence = log.address_sequence(probe_id)
    if not sequence:
        return None
    addresses = [event.ip for event in sequence]
    asns = set()
    for ip in addresses:
        asn = asdb.asn_of(ip)
        if asn is not None:
            asns.add(asn)
    return ProbeSummary(
        probe_id=probe_id,
        addresses=addresses,
        first_day=sequence[0].day,
        last_day=sequence[-1].day,
        asns=asns,
    )


def summarize_probes(
    log: ConnectionLog,
    asdb: ASDatabase,
    *,
    workers: int = 1,
) -> List[ProbeSummary]:
    """Stage 1: per-probe address sequences with AS annotations.

    The grouping is pure per probe, so ``workers`` shards probes across
    a process pool; results come back in probe-id order either way.
    """
    # Imported lazily: the experiments package pulls this module in
    # while wiring the runner, so a top-level import would be circular.
    from ..experiments.parallel import map_shards

    summaries = map_shards(
        _summarize_one,
        log.probe_ids(),
        workers=workers,
        shared=(log, asdb),
    )
    return [summary for summary in summaries if summary is not None]


def run_pipeline(
    log: ConnectionLog,
    asdb: ASDatabase,
    config: Optional[PipelineConfig] = None,
    *,
    workers: int = 1,
) -> PipelineResult:
    """Run all four stages and expand to dynamic prefixes."""
    config = config or PipelineConfig()
    if not 8 <= config.expansion_prefix_len <= 32:
        raise ValueError(
            f"bad expansion prefix length {config.expansion_prefix_len}"
        )
    all_probes = summarize_probes(log, asdb, workers=workers)

    # Stage 2: same-AS probes with at least one address change, plus
    # probes with no change at all (they survive this stage but die in
    # stage 3; keeping them here matches the paper's Figure 2, which
    # plots them before thresholding).
    same_as = [p for p in all_probes if p.same_as()]

    # Stage 3: knee-point threshold over allocation counts.
    if config.fixed_allocation_threshold is not None:
        knee = config.fixed_allocation_threshold
    else:
        knee = allocation_threshold(
            [p.allocation_count for p in same_as]
        )
    frequent = [p for p in same_as if p.allocation_count >= knee]

    # Stage 4: daily changers.
    daily = [
        p
        for p in frequent
        if p.mean_interchange_days() <= config.daily_mean_days
    ]

    mask = (0xFFFFFFFF << (32 - config.expansion_prefix_len)) & 0xFFFFFFFF
    dynamic_prefixes = {
        Prefix(ip & mask, config.expansion_prefix_len)
        for p in daily
        for ip in p.addresses
    }
    return PipelineResult(
        all_probes=all_probes,
        same_as_probes=same_as,
        frequent_probes=frequent,
        daily_probes=daily,
        allocation_knee=knee,
        dynamic_prefixes=dynamic_prefixes,
    )
