"""RIPE Atlas deployment and connection-log synthesis.

Places probes on ground-truth lines with the composition the paper
reports for the real Atlas fleet (Section 3.2):

* ~59% of probes never change address → static lines;
* ~27% change addresses within one AS → dynamic-pool lines (the
  fast/slow pool mix then determines who passes the daily filter);
* ~13% change addresses across ASes (relocated probes / multi-AS
  ISPs) → probes that switch lines mid-horizon;

and biased geographically to Europe/North America, Atlas' actual
footprint. The connection log is derived from the DHCP ground truth:
one connect event per address holding, plus periodic reconnects that
do *not* change the address (noise the pipeline must not mistake for
reallocation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..internet.groundtruth import (
    ADDRESSING_DYNAMIC,
    ADDRESSING_STATIC,
    GroundTruth,
    LineInfo,
    NAT_NONE,
)
from .connlog import KIND_DISCONNECT, ConnectionEvent, ConnectionLog

__all__ = ["AtlasConfig", "ProbeDeployment", "deploy_probes", "synthesize_log"]

#: Region attractiveness for probe placement (Atlas is EU/NA-heavy).
_REGION_WEIGHT = {"EU": 0.60, "NA": 0.30, "AS": 0.07, "XX": 0.03}


@dataclass
class AtlasConfig:
    """Probe fleet composition."""

    n_probes: int = 400
    static_fraction: float = 0.59
    mover_fraction: float = 0.131
    #: Day at which a mover probe switches to its second line.
    mover_switch_day_range: Tuple[float, float] = (100.0, 400.0)
    #: Mean days between keepalive reconnects (no address change).
    reconnect_mean_days: float = 14.0
    #: Fraction of candidate ASes that host probes at all. Atlas
    #: volunteers cluster in a minority of (mostly EU/NA) networks —
    #: the paper's RIPE technique reaches only 17.1% of blocklisted
    #: ASes.
    as_concentration: float = 0.20
    #: Of the non-mover dynamic probes, the share placed on lines that
    #: churn about daily (the paper finds 4%% of the whole fleet — 629
    #: probes — in daily-churn space).
    fast_line_fraction: float = 0.25
    #: Mean outages per probe over the horizon (power cuts, ISP
    #: maintenance). Padmanabhan et al. — whose approach Section 3.2
    #: extends — showed address changes often follow such outages.
    outages_per_probe: float = 3.0
    outage_duration_mean_days: float = 0.15

    def __post_init__(self) -> None:
        if self.n_probes <= 0:
            raise ValueError("need a positive probe count")
        if not 0 <= self.static_fraction + self.mover_fraction <= 1:
            raise ValueError("probe fractions exceed 1")


@dataclass
class ProbeDeployment:
    """Where each probe sits; movers carry a second line + switch day."""

    #: probe_id -> (line_key, second_line_key or None, switch_day or None)
    placements: Dict[int, Tuple[str, Optional[str], Optional[float]]] = field(
        default_factory=dict
    )

    def line_of(self, probe_id: int, day: float) -> str:
        """Line hosting ``probe_id`` at ``day``."""
        line, second, switch = self.placements[probe_id]
        if second is not None and switch is not None and day >= switch:
            return second
        return line

    def probe_ids(self) -> List[int]:
        return sorted(self.placements)


def _weighted_sample(
    lines: List[LineInfo], count: int, rng: random.Random
) -> List[LineInfo]:
    """Sample ``count`` distinct lines, biased to Atlas regions."""
    if count >= len(lines):
        return list(lines)
    weights = [_REGION_WEIGHT.get(line.country, 0.03) for line in lines]
    chosen: List[LineInfo] = []
    pool = list(lines)
    pool_weights = list(weights)
    for _ in range(count):
        total = sum(pool_weights)
        point = rng.random() * total
        acc = 0.0
        index = 0
        for index, weight in enumerate(pool_weights):
            acc += weight
            if point < acc:
                break
        chosen.append(pool.pop(index))
        pool_weights.pop(index)
    return chosen


def deploy_probes(
    truth: GroundTruth, config: AtlasConfig, rng: random.Random
) -> ProbeDeployment:
    """Assign probes to lines per the fleet composition."""
    static_lines = [
        l
        for l in truth.lines.values()
        if l.addressing == ADDRESSING_STATIC and l.nat == NAT_NONE
    ]
    dynamic_lines = [
        l for l in truth.lines.values() if l.addressing == ADDRESSING_DYNAMIC
    ]
    if not static_lines or not dynamic_lines:
        raise ValueError("ground truth lacks static or dynamic lines")

    # Concentrate the fleet in a region-biased minority of ASes.
    candidate_asns = sorted(
        {l.asn for l in static_lines} | {l.asn for l in dynamic_lines}
    )
    if config.as_concentration < 1.0 and len(candidate_asns) > 3:
        n_eligible = max(3, round(len(candidate_asns) * config.as_concentration))
        by_weight = sorted(
            candidate_asns,
            key=lambda asn: (
                -_REGION_WEIGHT.get(
                    (truth.asdb.get(asn).country if truth.asdb.get(asn) else "XX"),
                    0.03,
                ),
                rng.random(),
            ),
        )
        eligible = set(by_weight[:n_eligible])
        # Guarantee a few daily-churn ISPs host probes: the paper's
        # fleet demonstrably contains 629 daily-changing probes, so a
        # deployment with zero would be unrepresentative.
        fast_asns = sorted({
            pool.asn
            for pool in truth.pools.values()
            if any(
                t.change_count() >= 5 and t.mean_holding_days() <= 2.0
                for t in pool.timelines.values()
            )
        })
        rng.shuffle(fast_asns)
        eligible.update(fast_asns[:5])
        static_eligible = [l for l in static_lines if l.asn in eligible]
        dynamic_eligible = [l for l in dynamic_lines if l.asn in eligible]
        # Never let concentration empty a category entirely.
        if static_eligible:
            static_lines = static_eligible
        if dynamic_eligible:
            dynamic_lines = dynamic_eligible

    n_static = round(config.n_probes * config.static_fraction)
    n_movers = round(config.n_probes * config.mover_fraction)
    n_dynamic = config.n_probes - n_static - n_movers

    # Split dynamic lines into daily churners and the rest, so the
    # fleet contains the paper's daily-changing minority even when AS
    # concentration narrows the candidate set.
    def is_fast(line: LineInfo) -> bool:
        pool = truth.pools.get(line.pool_id or "")
        if pool is None:
            return False
        timeline = pool.timelines.get(line.key)
        # Require enough changes for the mean to be trustworthy — a
        # slow line whose single change landed early would otherwise
        # masquerade as a daily churner.
        return (
            timeline is not None
            and timeline.change_count() >= 5
            and timeline.mean_holding_days() <= 2.0
        )

    fast_lines = [l for l in dynamic_lines if is_fast(l)]
    slow_lines = [l for l in dynamic_lines if not is_fast(l)]
    n_fast = min(round(n_dynamic * config.fast_line_fraction), len(fast_lines))
    n_slow = n_dynamic - n_fast

    deployment = ProbeDeployment()
    probe_id = 1000

    for line in _weighted_sample(static_lines, n_static, rng):
        deployment.placements[probe_id] = (line.key, None, None)
        probe_id += 1

    for line in _weighted_sample(fast_lines, n_fast, rng):
        deployment.placements[probe_id] = (line.key, None, None)
        probe_id += 1

    for line in _weighted_sample(slow_lines or dynamic_lines, n_slow, rng):
        deployment.placements[probe_id] = (line.key, None, None)
        probe_id += 1

    # Movers: start on one line, switch to a line in a *different* AS.
    mover_starts = _weighted_sample(dynamic_lines, n_movers, rng)
    for line in mover_starts:
        candidates = [l for l in dynamic_lines if l.asn != line.asn]
        if not candidates:
            candidates = [l for l in static_lines if l.asn != line.asn]
        second = rng.choice(candidates)
        switch = rng.uniform(*config.mover_switch_day_range)
        deployment.placements[probe_id] = (line.key, second.key, switch)
        probe_id += 1

    return deployment


def synthesize_log(
    truth: GroundTruth,
    deployment: ProbeDeployment,
    config: AtlasConfig,
    rng: random.Random,
    *,
    window: Tuple[float, float] = (0.0, 497.0),
) -> ConnectionLog:
    """Generate the connection log the Atlas infrastructure would have
    recorded over ``window``."""
    start, end = window
    if end <= start:
        raise ValueError(f"bad monitoring window ({start}, {end})")
    log = ConnectionLog()
    for probe_id in deployment.probe_ids():
        events: List[Tuple[float, int]] = []
        switch_points = [start]
        line, second, switch = deployment.placements[probe_id]
        if switch is not None and start < switch < end:
            switch_points.append(switch)
        switch_points.append(end)
        for seg_start, seg_end in zip(switch_points, switch_points[1:]):
            seg_line = deployment.line_of(probe_id, seg_start)
            events.extend(
                _segment_events(truth, seg_line, seg_start, seg_end)
            )
        # Keepalive reconnects: same address, new connect event.
        day = start + rng.expovariate(1.0 / config.reconnect_mean_days)
        while day < end:
            line_key = deployment.line_of(probe_id, day)
            ip = truth.ip_of_line(line_key, day)
            if ip is not None:
                events.append((day, ip))
            day += rng.expovariate(1.0 / config.reconnect_mean_days)
        # Outages: a disconnect, then a reconnect from whatever address
        # the line holds when power returns (it may have changed while
        # the probe was dark).
        disconnects: List[Tuple[float, int]] = []
        n_outages = _poisson(rng, config.outages_per_probe)
        for _ in range(n_outages):
            outage_start = rng.uniform(start, end)
            duration = rng.expovariate(
                1.0 / config.outage_duration_mean_days
            )
            outage_end = min(outage_start + duration, end)
            line_key = deployment.line_of(probe_id, outage_start)
            held = truth.ip_of_line(line_key, outage_start)
            if held is not None:
                disconnects.append((outage_start, held))
            line_key = deployment.line_of(probe_id, outage_end)
            back = truth.ip_of_line(line_key, outage_end)
            if back is not None and outage_end < end:
                events.append((outage_end, back))
        events.sort()
        for day, ip in events:
            log.append(ConnectionEvent(probe_id=probe_id, day=day, ip=ip))
        for day, ip in disconnects:
            log.append(
                ConnectionEvent(
                    probe_id=probe_id, day=day, ip=ip, kind=KIND_DISCONNECT
                )
            )
    return log


def _poisson(rng: random.Random, mean: float) -> int:
    """Small-mean Poisson draw (Knuth)."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


def _segment_events(
    truth: GroundTruth, line_key: str, seg_start: float, seg_end: float
) -> List[Tuple[float, int]]:
    """Connect events caused by address changes on one line segment."""
    line = truth.lines[line_key]
    if line.addressing == ADDRESSING_STATIC:
        assert line.static_ip is not None
        return [(seg_start, line.static_ip)]
    pool = truth.pools[line.pool_id]  # type: ignore[index]
    timeline = pool.timelines[line_key]
    events: List[Tuple[float, int]] = []
    for hold_start, hold_end, ip in timeline.intervals():
        if hold_end <= seg_start or hold_start >= seg_end:
            continue
        events.append((max(hold_start, seg_start), ip))
    return events
