"""Online reuse-aware blocklist reputation service.

Real blocklist consumers do not read batch reports — they ask, per
connection, "is this address listed *right now*, and should I act on
it?". This package turns the study's batch artefact
(:class:`~repro.core.reuse.ReuseAnalysis`) into that servable product:

* :mod:`repro.service.index` — :class:`ReputationIndex`, the
  read-optimised immutable compilation of a full run (per-IP sorted
  listing intervals, NAT/dynamic classification, AS rollups) with a
  binary snapshot format so a server starts without re-running the
  pipeline;
* :mod:`repro.service.engine` — :class:`QueryEngine`, the query layer
  with point/batch APIs, per-query-type counters and an LRU for hot
  addresses;
* :mod:`repro.service.wire` — the length-prefixed JSON framing both
  ends speak;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only threaded TCP server and its matching client.

``repro serve`` and ``repro query`` expose the whole stack from the
command line.
"""

from .client import ReputationClient, ServiceError, TransportError
from .engine import QueryEngine, Verdict
from .index import ReputationIndex, SnapshotError
from .server import PROTOCOL_VERSION, ReputationServer
from .wire import FrameError, MAX_FRAME_BYTES

__all__ = [
    "FrameError",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "QueryEngine",
    "ReputationClient",
    "ReputationIndex",
    "ReputationServer",
    "ServiceError",
    "SnapshotError",
    "TransportError",
    "Verdict",
]
