"""Single-threaded event-loop serving core for the wire protocol.

The thread-per-connection server capped out on thread switches and
per-request syscalls long before the query engine did, so the serving
plane runs on one :class:`Reactor` — a ``selectors`` readiness loop —
with per-connection read/write buffers and *pipelining*: a peer may
have any number of request frames in flight on one connection, and
replies always come back in request order.

Three layers:

* :class:`Reactor` — the loop: readiness callbacks, monotonic timers,
  and a ``call_soon`` queue fed from other threads through a
  socketpair waker. Everything else runs *on* the loop thread.
* :class:`Conn` + :class:`Slot` — per-connection state. Each parsed
  request takes a :class:`Slot` in the connection's reply queue;
  completing a slot (in any order) releases every reply at the queue
  head, which keeps pipelined replies ordered even when an upstream
  answers out of order (the router's case).
* :class:`WireServer` — accept loop, frame parsing for both codecs
  (length-prefixed JSON and the binary framing of
  :mod:`repro.service.wire`), the recoverable/fatal error split, idle
  timeouts, and graceful shutdown. Requests are handed to a
  ``handler(conn, slot, kind, data)`` callback; ``kind`` is ``"msg"``
  (one decoded request object), ``"batch"`` (packed ``(ip, day)``
  pairs from an ``FT_BATCH_REQ`` frame) or ``"batch6"`` (the same
  from an ``FT_BATCH_REQ6`` frame, 128-bit addresses).

The handler runs on the loop thread and must not block; the
reputation server answers inline, the cluster router completes slots
later from upstream readiness events on the same loop.
"""

from __future__ import annotations

import heapq
import itertools
import selectors
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .wire import (
    FT_BATCH_REQ,
    FT_BATCH_REQ6,
    FT_MSG,
    MAX_FRAME_BYTES,
    WireError,
    decode_batch_request,
    decode_batch_request6,
    decode_binary_frame,
    decode_frame,
    decode_msg_payload,
    encode_batch_reply_frame,
    encode_batch_reply_frame6,
    encode_frame,
    encode_msg_frame,
)

__all__ = ["Conn", "Reactor", "Slot", "WireServer"]

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE

#: Bytes asked from the kernel per readable event.
_RECV_CHUNK = 1 << 18

#: Listen backlog — the concurrent-connections bench opens ~1k
#: sockets in a tight loop, so the queue must absorb a burst.
_BACKLOG = 1024

#: Backpressure water marks, per connection. A peer that pipelines
#: requests without draining replies stops being read once the queued
#: output bytes or the in-flight slot count crosses a high mark, and
#: is read again once both fall back under the low marks — the
#: event-loop equivalent of the blocking ``sendall`` backpressure the
#: threaded server had. Bounds may overshoot by at most one parsed
#: recv chunk.
_OUT_HIGH_WATER = 1 << 20
_OUT_LOW_WATER = 1 << 16
_SLOT_HIGH_WATER = 4096
_SLOT_LOW_WATER = 1024

Handler = Callable[["Conn", "Slot", str, Any], None]


class Reactor:
    """A minimal selectors event loop with timers and a waker.

    One thread calls :meth:`run`; any thread may call
    :meth:`call_soon` or :meth:`stop` (a socketpair write wakes the
    blocked ``select``). Timers (:meth:`call_later`) are loop-thread
    only. Callback exceptions are swallowed so one buggy task cannot
    kill the serving plane — I/O callbacks are expected to do their
    own per-connection containment first.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._calls: Deque[Callable[[], None]] = deque()
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._ticket = itertools.count()
        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)
        self._selector.register(self._waker_r, _READ, self._drain_waker)
        self._stopped = threading.Event()
        self._stop_requested = False
        self._state = "new"  # -> "running" -> "stopped"; run() writes it
        self._thread: Optional[threading.Thread] = None

    # -- cross-thread entry points -------------------------------------

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Queue ``callback`` for the loop thread; any thread may call."""
        self._calls.append(callback)
        self.wakeup()

    def stop(self) -> None:
        """Ask the loop to exit; safe from any thread, and before
        :meth:`run` (a later run() exits immediately)."""
        self._stop_requested = True
        self.wakeup()

    def wakeup(self) -> None:
        try:
            self._waker_w.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # waker pipe full — a wakeup is already pending
        except OSError:
            pass  # loop already torn down

    def is_running(self) -> bool:
        return self._state == "running"

    def wait_stopped(self, timeout: float) -> bool:
        return self._stopped.wait(timeout)

    def run_sync(
        self, callback: Callable[[], None], timeout: float = 10.0
    ) -> None:
        """Run ``callback`` on the loop thread and wait for it.

        The primitive behind atomic cross-thread state swaps (the
        router's online partition cutover): loop-owned structures are
        only ever touched between I/O callbacks. Runs inline when
        called from the loop thread itself (waiting would deadlock) or
        when the loop isn't running yet (single-threaded setup).
        Raises :class:`RuntimeError` when the loop doesn't get to the
        callback within ``timeout`` — the callback may still run
        later, so callers treating this as fatal should stop the loop.
        """
        if (
            not self.is_running()
            or self._thread is threading.current_thread()
        ):
            callback()
            return
        done = threading.Event()

        def wrapped() -> None:
            try:
                callback()
            finally:
                done.set()

        self.call_soon(wrapped)
        if not done.wait(timeout):
            raise RuntimeError(
                f"event loop did not run a synchronous callback "
                f"within {timeout:g}s"
            )

    # -- loop-thread API -----------------------------------------------

    def call_later(
        self, delay: float, callback: Callable[[], None]
    ) -> None:
        """Run ``callback`` after ``delay`` seconds (loop thread only)."""
        heapq.heappush(
            self._timers,
            (time.monotonic() + delay, next(self._ticket), callback),
        )

    def register(self, sock: Any, events: int, callback: Any) -> None:
        self._selector.register(sock, events, callback)

    def modify(self, sock: Any, events: int, callback: Any) -> None:
        self._selector.modify(sock, events, callback)

    def unregister(self, sock: Any) -> None:
        self._selector.unregister(sock)

    def run(self) -> None:
        """The loop; returns after :meth:`stop`."""
        self._thread = threading.current_thread()
        self._state = "running"
        try:
            while not self._stop_requested:
                timeout: Optional[float] = None
                if self._timers:
                    timeout = max(
                        0.0, self._timers[0][0] - time.monotonic()
                    )
                if self._calls:
                    timeout = 0.0
                for key, mask in self._selector.select(timeout):
                    key.data(mask)
                if self._timers:
                    now = time.monotonic()
                    while self._timers and self._timers[0][0] <= now:
                        _, _, timer_cb = heapq.heappop(self._timers)
                        self._guarded(timer_cb)
                while self._calls:
                    self._guarded(self._calls.popleft())
        finally:
            self._state = "stopped"
            self._stopped.set()

    @staticmethod
    def _guarded(callback: Callable[[], None]) -> None:
        try:
            callback()
        # A failing scheduled task must not take the loop (and every
        # other connection) down with it.
        # reprolint: disable=EXC
        except Exception:
            pass

    def _drain_waker(self, _mask: int) -> None:
        try:
            while self._waker_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def close(self) -> None:
        """Release the selector and waker (after the loop exited)."""
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._waker_r, self._waker_w):
            try:
                sock.close()
            except OSError:
                pass


class Slot:
    """One in-flight request's place in a connection's reply queue.

    Created at parse time (capturing the codec *then* negotiated, so a
    reply to a pre-upgrade pipelined request is never mis-encoded) and
    completed exactly once; the server releases queued replies in
    arrival order as head slots complete.
    """

    __slots__ = ("_server", "conn", "codec", "request_id", "encoded",
                 "done")

    def __init__(
        self,
        server: "WireServer",
        conn: "Conn",
        codec: str,
        request_id: int,
    ) -> None:
        self._server = server
        self.conn = conn
        self.codec = codec
        self.request_id = request_id
        self.encoded = b""
        self.done = False

    def _encode(self, message: Any) -> bytes:
        if self.codec == "binary":
            return encode_msg_frame(
                message, self.request_id,
                max_size=self._server.max_frame,
            )
        return encode_frame(message, max_size=self._server.max_frame)

    def _finish(self, encoded: bytes) -> None:
        self.encoded = encoded
        self.done = True
        self._server.slot_done(self.conn)

    def complete(self, message: Any) -> None:
        """Answer with ``message`` (a JSON-model reply object)."""
        if self.done:
            return
        try:
            encoded = self._encode(message)
        except WireError as exc:
            # The reply we built is unserialisable (or oversized) —
            # our bug; degrade to an in-band error reply.
            self.fail(f"internal error: unserialisable reply: {exc}")
            return
        self._finish(encoded)

    def complete_records(self, records: List[bytes]) -> None:
        """Answer a binary batch with packed reply records."""
        if self.done:
            return
        try:
            encoded = encode_batch_reply_frame(
                records, self.request_id,
                max_size=self._server.max_frame,
            )
        except WireError as exc:
            self.fail(f"internal error: unserialisable reply: {exc}")
            return
        self._finish(encoded)

    def complete_records6(self, records: List[bytes]) -> None:
        """Answer a v6 binary batch with packed FT_BATCH_REP6 records."""
        if self.done:
            return
        try:
            encoded = encode_batch_reply_frame6(
                records, self.request_id,
                max_size=self._server.max_frame,
            )
        except WireError as exc:
            self.fail(f"internal error: unserialisable reply: {exc}")
            return
        self._finish(encoded)

    def fail(self, message: str) -> None:
        """Answer with an error reply."""
        if self.done:
            return
        try:
            encoded = self._encode({"ok": False, "error": message})
        except WireError:
            encoded = self._encode(
                {"ok": False, "error": "internal error"}
            )
        self._finish(encoded)


class Conn:
    """Per-connection state, owned by the loop thread."""

    __slots__ = ("sock", "fd", "address", "codec", "inbuf", "outbuf",
                 "slots", "closing", "paused", "registered", "events",
                 "callback", "in_parse", "last_activity", "data")

    def __init__(self, sock: socket.socket, address: Any) -> None:
        self.sock: Optional[socket.socket] = sock
        self.fd = sock.fileno()
        self.address = address
        #: Frame codec for *subsequent* frames ("json" until a hello
        #: negotiates "binary"); each Slot captures it at parse time.
        self.codec = "json"
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.slots: Deque[Slot] = deque()
        self.closing = False
        #: True while reads are suspended for backpressure.
        self.paused = False
        self.registered = False
        self.events = 0
        self.callback: Any = None
        self.in_parse = False
        self.last_activity = time.monotonic()
        #: Free for the handler's own per-connection state.
        self.data: Any = None


class WireServer:
    """Pipelined dual-codec TCP server on a :class:`Reactor`.

    Binds on construction (``SO_REUSEADDR``; ``port=0`` for an
    ephemeral port) and sets ``TCP_NODELAY`` on every accepted socket
    — small reply frames must not sit out a Nagle delay. Run with
    :meth:`serve_forever` (calling thread) or :meth:`start` (daemon
    thread); :meth:`shutdown` drains in-flight replies, then stops the
    loop and closes everything.
    """

    def __init__(
        self,
        handler: Handler,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connection_timeout: float = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
        reactor: Optional[Reactor] = None,
    ) -> None:
        self._handler = handler
        self._connection_timeout = connection_timeout
        self.max_frame = max_frame
        #: Per-connection backpressure bounds; instance attributes so
        #: tests can tighten them.
        self.out_high_water = _OUT_HIGH_WATER
        self.out_low_water = _OUT_LOW_WATER
        self.slot_high_water = _SLOT_HIGH_WATER
        self.slot_low_water = _SLOT_LOW_WATER
        self.reactor = reactor if reactor is not None else Reactor()
        self._conns: Dict[int, Conn] = {}
        self._shutting_down = False  # written by _begin_shutdown only
        self._closed = False  # written by _close_listener only
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._listener = socket.socket(
            socket.AF_INET, socket.SOCK_STREAM
        )
        try:
            self._listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listener.bind((host, port))
            self._listener.listen(_BACKLOG)
            self._listener.setblocking(False)
            bound = self._listener.getsockname()[:2]
            self._address = (str(bound[0]), int(bound[1]))
        except OSError:
            self._listener.close()
            raise
        self.reactor.register(self._listener, _READ, self._on_accept)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — valid even after shutdown (a
        restart-on-same-port needs to read it from the dead server)."""
        return self._address

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until :meth:`shutdown`."""
        self.reactor.call_soon(self._arm_idle_sweep)
        try:
            self.reactor.run()
        finally:
            self._close_everything()
            self.reactor.close()

    def start(self) -> Tuple[str, int]:
        """Serve from a daemon thread; returns the bound address."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("server already started")
            thread = threading.Thread(
                target=self.serve_forever,
                name="repro-wire-server",
                daemon=True,
            )
            self._thread = thread
        thread.start()
        return self.address

    def shutdown(self) -> None:
        """Stop accepting, flush queued replies, stop the loop."""
        with self._lock:
            thread, self._thread = self._thread, None
        if self.reactor.is_running():
            self.reactor.call_soon(self._begin_shutdown)
            if not self.reactor.wait_stopped(10.0):
                self.reactor.stop()
                self.reactor.wait_stopped(5.0)
        else:
            # Loop not running (never started, or already exited):
            # a queued graceful pass would never fire.
            self.reactor.stop()
            self._close_everything()
        if thread is not None:
            thread.join(timeout=5.0)

    def close_connections(self) -> None:
        """Sever every live connection (what a crashed process does to
        its peers); callable from any thread."""
        for conn in list(self._conns.values()):
            sock = conn.sock
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass

    def _begin_shutdown(self) -> None:
        self._shutting_down = True
        self._close_listener()
        for conn in list(self._conns.values()):
            conn.closing = True
            if not conn.slots and not conn.outbuf:
                self._close_conn(conn)
            else:
                self._flush(conn)
        if not self._conns:
            self.reactor.stop()
        else:
            self.reactor.call_later(1.0, self._force_shutdown)

    def _force_shutdown(self) -> None:
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        self.reactor.stop()

    def _close_listener(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.reactor.unregister(self._listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _close_everything(self) -> None:
        self._close_listener()
        for conn in list(self._conns.values()):
            self._close_conn(conn)

    # -- accept / close ------------------------------------------------

    def _on_accept(self, _mask: int) -> None:
        while True:
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed, or a transient accept error
            if self._shutting_down:
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:
                pass
            conn = Conn(sock, address)
            conn.callback = (
                lambda mask, c=conn: self._on_event(c, mask)
            )
            self._conns[conn.fd] = conn
            self._watch(conn, _READ)

    def _close_conn(self, conn: Conn) -> None:
        sock, conn.sock = conn.sock, None
        if sock is None:
            return
        if conn.registered:
            conn.registered = False
            try:
                self.reactor.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
        self._conns.pop(conn.fd, None)
        try:
            sock.close()
        except OSError:
            pass
        conn.slots.clear()
        if self._shutting_down and not self._conns:
            self.reactor.stop()

    def _watch(self, conn: Conn, events: int) -> None:
        if conn.sock is None:
            return
        if events == conn.events and conn.registered == bool(events):
            return
        if not events:
            if conn.registered:
                conn.registered = False
                try:
                    self.reactor.unregister(conn.sock)
                except (KeyError, ValueError, OSError):
                    pass
        elif conn.registered:
            self.reactor.modify(conn.sock, events, conn.callback)
        else:
            self.reactor.register(conn.sock, events, conn.callback)
            conn.registered = True
        conn.events = events

    # -- I/O events ----------------------------------------------------

    def _on_event(self, conn: Conn, mask: int) -> None:
        try:
            if mask & _WRITE:
                self._flush(conn)
            if mask & _READ and conn.sock is not None:
                self._on_readable(conn)
        # Containment of last resort: a bug on one connection must
        # not kill the loop serving every other connection.
        except Exception:
            self._close_conn(conn)

    def _on_readable(self, conn: Conn) -> None:
        assert conn.sock is not None
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            # Peer EOF: no further requests; flush what is queued,
            # then close (immediately if nothing is pending).
            conn.closing = True
            if not conn.slots and not conn.outbuf:
                self._close_conn(conn)
            else:
                self._watch(conn, _WRITE if conn.outbuf else 0)
            return
        conn.last_activity = time.monotonic()
        conn.inbuf += data
        self._parse(conn)

    # -- frame parsing -------------------------------------------------

    def _parse(self, conn: Conn) -> None:
        conn.in_parse = True
        try:
            while conn.sock is not None and not conn.closing:
                if conn.codec == "binary":
                    if not self._parse_binary(conn):
                        break
                elif not self._parse_json(conn):
                    break
        finally:
            conn.in_parse = False
        self._flush(conn)

    def _new_slot(self, conn: Conn, request_id: int = 0) -> Slot:
        slot = Slot(self, conn, conn.codec, request_id)
        conn.slots.append(slot)
        return slot

    def _fatal(self, conn: Conn, message: str) -> None:
        """Framing broke: error reply, then close once it drained."""
        self._new_slot(conn).fail(message)
        conn.closing = True
        self._watch(conn, _WRITE if conn.outbuf else 0)

    def _parse_json(self, conn: Conn) -> bool:
        """Parse one JSON frame; False when more bytes are needed."""
        try:
            decoded = decode_frame(conn.inbuf, max_size=self.max_frame)
        except WireError as exc:
            if exc.recoverable and exc.consumed is not None:
                # Payload was undecodable but the boundary held: skip
                # the frame, answer in-band, stay on the stream.
                del conn.inbuf[: exc.consumed]
                self._new_slot(conn).fail(str(exc))
                return True
            self._fatal(conn, str(exc))
            return False
        if decoded is None:
            return False
        message, consumed = decoded
        del conn.inbuf[:consumed]
        self._dispatch(conn, self._new_slot(conn), "msg", message)
        return True

    def _parse_binary(self, conn: Conn) -> bool:
        """Parse one binary frame; False when more bytes are needed."""
        try:
            decoded = decode_binary_frame(
                conn.inbuf, max_size=self.max_frame
            )
        except WireError as exc:
            self._fatal(conn, str(exc))
            return False
        if decoded is None:
            return False
        ftype, request_id, payload, consumed = decoded
        del conn.inbuf[:consumed]
        slot = self._new_slot(conn, request_id)
        if ftype == FT_MSG:
            try:
                message = decode_msg_payload(
                    payload, max_size=self.max_frame
                )
            except WireError as exc:
                slot.fail(str(exc))
                return True
            self._dispatch(conn, slot, "msg", message)
        elif ftype == FT_BATCH_REQ:
            try:
                pairs = decode_batch_request(payload)
            except WireError as exc:
                slot.fail(str(exc))
                return True
            self._dispatch(conn, slot, "batch", pairs)
        elif ftype == FT_BATCH_REQ6:
            try:
                pairs = decode_batch_request6(payload)
            except WireError as exc:
                slot.fail(str(exc))
                return True
            self._dispatch(conn, slot, "batch6", pairs)
        else:
            slot.fail(f"unexpected frame type {ftype}")
        return True

    def _dispatch(
        self, conn: Conn, slot: Slot, kind: str, data: Any
    ) -> None:
        try:
            self._handler(conn, slot, kind, data)
        # Never let a handler bug kill the loop; the peer gets an
        # in-band error reply instead (same contract as the threaded
        # server's worker).
        except Exception as exc:
            slot.fail(f"internal error: {exc}")

    # -- reply queue / writes ------------------------------------------

    def slot_done(self, conn: Conn) -> None:
        """A slot completed: release every reply at the queue head."""
        slots = conn.slots
        out = conn.outbuf
        while slots and slots[0].done:
            out += slots[0].encoded
            slots.popleft()
        if not conn.in_parse:
            self._flush(conn)

    def _flush(self, conn: Conn) -> None:
        if conn.sock is None:
            return
        out = conn.outbuf
        if out:
            try:
                sent = conn.sock.send(out)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError:
                self._close_conn(conn)
                return
            if sent:
                del out[:sent]
                conn.last_activity = time.monotonic()
        if conn.closing:
            if out:
                self._watch(conn, _WRITE)
            elif conn.slots:
                self._watch(conn, 0)  # await async completions
            else:
                self._close_conn(conn)
            return
        # Backpressure: stop reading a peer that pipelines faster than
        # it drains replies, so outbuf and the slot queue stay bounded;
        # resume only once both are well below the pause point.
        if conn.paused:
            if (
                len(out) <= self.out_low_water
                and len(conn.slots) <= self.slot_low_water
            ):
                conn.paused = False
        elif (
            len(out) >= self.out_high_water
            or len(conn.slots) >= self.slot_high_water
        ):
            conn.paused = True
        self._watch(
            conn,
            (_WRITE if out else 0) | (0 if conn.paused else _READ),
        )

    # -- idle timeout --------------------------------------------------

    def _arm_idle_sweep(self) -> None:
        interval = max(0.05, min(1.0, self._connection_timeout / 4.0))
        self.reactor.call_later(interval, self._idle_sweep)

    def _idle_sweep(self) -> None:
        if self._shutting_down or not self.reactor.is_running():
            return
        deadline = time.monotonic() - self._connection_timeout
        for conn in list(self._conns.values()):
            if conn.slots:
                continue  # in-flight work is not idleness
            if conn.last_activity < deadline:
                self._close_conn(conn)
        self._arm_idle_sweep()
