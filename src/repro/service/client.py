"""Blocking client for the reputation service.

Speaks the wire protocol of :mod:`repro.service.server` over one TCP
connection; requests are strictly sequential (one frame out, one frame
back), which is all a per-connection blocklist check needs. Server-side
error replies surface as :class:`ServiceError`.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..net.ipv4 import int_to_ip
from .wire import MAX_FRAME_BYTES, FrameError, recv_frame, send_frame

__all__ = ["ReputationClient", "ServiceError", "TransportError"]

IpLike = Union[int, str]


class ServiceError(RuntimeError):
    """The server answered with an error, or the connection failed."""


class TransportError(ServiceError):
    """The connection itself failed (refused, cut, garbled framing).

    Distinct from a server-sent error reply: the cluster router treats
    a :class:`TransportError` as "this backend is down — fail over",
    while a plain :class:`ServiceError` means the backend is alive and
    rejected the request.
    """


class ReputationClient:
    """One connection to a :class:`~repro.service.server.ReputationServer`.

    Thread-safe: a lock serialises request/reply exchanges, so one
    client may be shared, though one-per-thread scales better.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7339,
        *,
        timeout: float = 10.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self._max_frame = max_frame
        self._lock = threading.Lock()
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None

    # -- plumbing ------------------------------------------------------

    def _rpc(self, request: Dict[str, Any]) -> Any:
        with self._lock:
            if self._sock is None:
                raise TransportError("client is closed")
            try:
                send_frame(self._sock, request, max_size=self._max_frame)
                reply = recv_frame(self._sock, max_size=self._max_frame)
            except (FrameError, OSError) as exc:
                raise TransportError(f"transport failure: {exc}") from None
        if reply is None:
            raise TransportError("server closed the connection")
        if not isinstance(reply, dict):
            raise TransportError(f"malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error", "unknown error")))
        return reply.get("result")

    def call(self, request: Dict[str, Any]) -> Any:
        """Send one already-shaped request object, return its result.

        The typed helpers below cover normal use; the cluster router
        uses this passthrough to forward validated requests verbatim.
        """
        return self._rpc(request)

    @staticmethod
    def _wire_ip(ip: IpLike) -> str:
        return int_to_ip(ip) if isinstance(ip, int) else str(ip)

    # -- operations ----------------------------------------------------

    def query(self, ip: IpLike, day: Optional[int] = None) -> Dict[str, Any]:
        """Point query; returns the verdict as a plain dict."""
        request: Dict[str, Any] = {"op": "query", "ip": self._wire_ip(ip)}
        if day is not None:
            request["day"] = day
        return self._rpc(request)

    def query_batch(
        self, queries: Iterable[Tuple[IpLike, Optional[int]]]
    ) -> List[Dict[str, Any]]:
        """Batch query; verdicts come back in request order."""
        payload = [
            {"ip": self._wire_ip(ip), "day": day} for ip, day in queries
        ]
        return self._rpc({"op": "batch", "queries": payload})

    def stats(self) -> Dict[str, Any]:
        """Server-side engine/index counters."""
        return self._rpc({"op": "stats"})

    def hello(self) -> Dict[str, Any]:
        """The handshake: protocol version plus the server's current
        index ``epoch`` and last-applied ``seq`` (both advance while a
        ``--follow`` server ingests its update log)."""
        return self._rpc({"op": "hello"})

    def ping(self) -> bool:
        """Liveness probe."""
        return self._rpc({"op": "ping"}) == "pong"

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "ReputationClient":
        return self

    def __exit__(self, *_: Any) -> None:
        self.close()
