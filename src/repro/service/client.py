"""Blocking client for the reputation service.

Speaks the wire protocol of :mod:`repro.service.server` over one TCP
connection. Requests default to strictly sequential (one frame out,
one frame back), which is all a per-connection blocklist check needs;
:meth:`ReputationClient.query_batch_pipelined` keeps a window of
batches in flight for bulk consumers. Server-side error replies
surface as :class:`ServiceError`.

The client starts every connection on the length-prefixed JSON codec.
With ``codec="auto"`` (the default) or ``codec="binary"`` it offers
the binary framing in its ``hello`` handshake and switches when the
server accepts; against an older server the offer is ignored and the
connection simply stays on JSON, so one client build works across a
mixed fleet.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

from ..net.family import V4, V6, AddressFamily
from .wire import (
    MAX_FRAME_BYTES,
    FT_BATCH_REP,
    FT_BATCH_REP6,
    FT_MSG,
    FrameError,
    decode_batch_reply,
    decode_batch_reply6,
    decode_msg_payload,
    encode_batch_request,
    encode_batch_request6,
    encode_frame,
    encode_msg_frame,
    recv_binary_frame,
    recv_frame,
    send_frame,
)

__all__ = ["ReputationClient", "ServiceError", "TransportError"]

IpLike = Union[int, str]
Query = Tuple[IpLike, Optional[int]]


class ServiceError(RuntimeError):
    """The server answered with an error, or the connection failed."""


class TransportError(ServiceError):
    """The connection itself failed (refused, cut, garbled framing).

    Distinct from a server-sent error reply: the cluster router treats
    a :class:`TransportError` as "this backend is down — fail over",
    while a plain :class:`ServiceError` means the backend is alive and
    rejected the request.
    """


def _int_pairs(
    queries: List[Query], family: AddressFamily = V4
) -> Optional[List[Tuple[int, Optional[int]]]]:
    """Convert queries to the packed-batch layout, or ``None`` when any
    value needs the JSON path (unparseable ip, out-of-range day) so the
    server — not the codec — produces the error."""
    pairs: List[Tuple[int, Optional[int]]] = []
    for ip, day in queries:
        if isinstance(ip, int):
            ip_int = int(ip)
        elif isinstance(ip, str):
            try:
                ip_int = family.parse(ip)
            except ValueError:
                return None
        else:
            return None
        if not 0 <= ip_int <= family.max_int:
            return None
        if day is not None and (
            isinstance(day, bool)
            or not isinstance(day, int)
            or not -(1 << 31) <= day < (1 << 31)
        ):
            return None
        pairs.append((ip_int, day))
    return pairs


class ReputationClient:
    """One connection to a :class:`~repro.service.server.ReputationServer`.

    Thread-safe: a lock serialises request/reply exchanges, so one
    client may be shared, though one-per-thread scales better.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7339,
        *,
        timeout: float = 10.0,
        max_frame: int = MAX_FRAME_BYTES,
        codec: str = "auto",
        family: AddressFamily = V4,
    ) -> None:
        if codec not in ("auto", "json", "binary"):
            raise ValueError(f"unknown codec {codec!r}")
        self._max_frame = max_frame
        #: The address family queries are formatted/packed in. A v6
        #: client sends FT_BATCH_REQ6 frames on the binary codec and
        #: colon-hex literals on JSON; the JSON request shape itself is
        #: family-agnostic.
        self._family = family
        self._lock = threading.Lock()
        self._codec = "json"
        self._rid = 0
        try:
            self._sock: Optional[socket.socket] = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        try:
            # Small request/reply frames must not sit in Nagle's buffer.
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            if codec != "json":
                self._negotiate_binary()
        except (ServiceError, OSError):
            self.close()
            raise

    @property
    def codec(self) -> str:
        """The negotiated framing: ``"json"`` or ``"binary"``."""
        return self._codec

    # -- plumbing ------------------------------------------------------

    def _negotiate_binary(self) -> None:
        """Offer the binary codec; stay on JSON when refused/ignored."""
        try:
            result = self._rpc(
                {"op": "hello", "accept_codecs": ["binary"]}
            )
        except TransportError:
            raise
        except ServiceError:
            return  # pre-negotiation server: keep speaking JSON
        if isinstance(result, dict) and result.get("codec") == "binary":
            self._codec = "binary"

    def _checked_sock(self) -> socket.socket:
        if self._sock is None:
            raise TransportError("client is closed")
        return self._sock

    def _next_rid(self) -> int:
        self._rid = (self._rid + 1) & 0xFFFFFFFF
        return self._rid

    @staticmethod
    def _check_reply(reply: Any) -> Any:
        if reply is None:
            raise TransportError("server closed the connection")
        if not isinstance(reply, dict):
            raise TransportError(f"malformed reply: {reply!r}")
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error", "unknown error")))
        return reply.get("result")

    def _read_msg_reply(self, sock: socket.socket, rid: int) -> Any:
        got = recv_binary_frame(sock, max_size=self._max_frame)
        if got is None:
            return None
        ftype, got_rid, payload = got
        if ftype != FT_MSG or got_rid != rid:
            raise FrameError(
                f"reply frame mismatch: type {ftype}, request id "
                f"{got_rid} (expected {rid})"
            )
        return decode_msg_payload(payload, max_size=self._max_frame)

    def _rpc(self, request: Dict[str, Any]) -> Any:
        with self._lock:
            sock = self._checked_sock()
            try:
                if self._codec == "binary":
                    rid = self._next_rid()
                    sock.sendall(
                        encode_msg_frame(
                            request, rid, max_size=self._max_frame
                        )
                    )
                    reply = self._read_msg_reply(sock, rid)
                else:
                    send_frame(sock, request, max_size=self._max_frame)
                    reply = recv_frame(sock, max_size=self._max_frame)
            except (FrameError, OSError) as exc:
                raise TransportError(f"transport failure: {exc}") from None
        return self._check_reply(reply)

    def call(self, request: Dict[str, Any]) -> Any:
        """Send one already-shaped request object, return its result.

        The typed helpers below cover normal use; the cluster router
        uses this passthrough to forward validated requests verbatim.
        """
        return self._rpc(request)

    @property
    def family(self) -> AddressFamily:
        """The address family this client queries in."""
        return self._family

    def _wire_ip(self, ip: IpLike) -> str:
        return self._family.format(ip) if isinstance(ip, int) else str(ip)

    # -- batch plumbing ------------------------------------------------

    def _read_batch_reply(
        self, sock: socket.socket, rid: int
    ) -> List[Dict[str, Any]]:
        if self._codec == "binary":
            got = recv_binary_frame(sock, max_size=self._max_frame)
            if got is None:
                raise TransportError("server closed the connection")
            ftype, got_rid, payload = got
            if got_rid != rid:
                raise TransportError(
                    f"reply for request {got_rid}, expected {rid}"
                )
            if ftype == FT_BATCH_REP and self._family is V4:
                return decode_batch_reply(payload)
            if ftype == FT_BATCH_REP6 and self._family is V6:
                return decode_batch_reply6(payload)
            if ftype == FT_MSG:
                return self._check_reply(
                    decode_msg_payload(payload, max_size=self._max_frame)
                )
            raise TransportError(f"unexpected reply frame type {ftype}")
        return self._check_reply(
            recv_frame(sock, max_size=self._max_frame)
        )

    def _batch_binary(
        self, pairs: List[Tuple[int, Optional[int]]]
    ) -> Optional[List[Dict[str, Any]]]:
        with self._lock:
            sock = self._checked_sock()
            rid = self._next_rid()
            encode = (
                encode_batch_request6
                if self._family is V6
                else encode_batch_request
            )
            try:
                frame = encode(pairs, rid, max_size=self._max_frame)
            except FrameError:
                return None  # a value escaped the packed layout
            try:
                sock.sendall(frame)
                return self._read_batch_reply(sock, rid)
            except (FrameError, OSError) as exc:
                raise TransportError(f"transport failure: {exc}") from None

    def _encode_batch(self, queries: List[Query], rid: int) -> bytes:
        if self._codec == "binary":
            pairs = _int_pairs(queries, self._family)
            if pairs is not None:
                encode = (
                    encode_batch_request6
                    if self._family is V6
                    else encode_batch_request
                )
                try:
                    return encode(pairs, rid, max_size=self._max_frame)
                except FrameError:
                    pass
            payload = [
                {"ip": self._wire_ip(ip), "day": day}
                for ip, day in queries
            ]
            return encode_msg_frame(
                {"op": "batch", "queries": payload},
                rid,
                max_size=self._max_frame,
            )
        payload = [
            {"ip": self._wire_ip(ip), "day": day} for ip, day in queries
        ]
        return encode_frame(
            {"op": "batch", "queries": payload}, max_size=self._max_frame
        )

    # -- operations ----------------------------------------------------

    def query(self, ip: IpLike, day: Optional[int] = None) -> Dict[str, Any]:
        """Point query; returns the verdict as a plain dict."""
        request: Dict[str, Any] = {"op": "query", "ip": self._wire_ip(ip)}
        if day is not None:
            request["day"] = day
        return self._rpc(request)

    def query_batch(
        self, queries: Iterable[Tuple[IpLike, Optional[int]]]
    ) -> List[Dict[str, Any]]:
        """Batch query; verdicts come back in request order.

        On a binary connection, clean batches travel as packed
        ``FT_BATCH_REQ`` frames; anything the packed layout cannot
        carry falls back to the JSON request shape so the server's
        validation errors stay identical across codecs.
        """
        batch = list(queries)
        if self._codec == "binary":
            pairs = _int_pairs(batch, self._family)
            if pairs is not None:
                reply = self._batch_binary(pairs)
                if reply is not None:
                    return reply
        payload = [
            {"ip": self._wire_ip(ip), "day": day} for ip, day in batch
        ]
        return self._rpc({"op": "batch", "queries": payload})

    def query_batch_pipelined(
        self,
        batches: Iterable[Iterable[Tuple[IpLike, Optional[int]]]],
        *,
        window: int = 16,
    ) -> List[List[Dict[str, Any]]]:
        """Send many batches with up to ``window`` in flight.

        Writes are coalesced — a window's worth of request frames goes
        out in one ``sendall`` — and replies are matched back in FIFO
        order (the server guarantees reply order per connection), so
        the round-trip latency is paid once per window instead of once
        per batch. Works on both codecs.

        Returns one verdict list per batch, in request order. If the
        server rejects a batch, the remaining in-flight replies are
        drained first (keeping the connection usable) and the first
        error is raised.
        """
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        batch_list = [list(b) for b in batches]
        with self._lock:
            sock = self._checked_sock()
            results: List[List[Dict[str, Any]]] = [[] for _ in batch_list]
            pending: Deque[Tuple[int, int]] = deque()
            first_error: Optional[ServiceError] = None
            next_send = 0
            try:
                while next_send < len(batch_list) or pending:
                    out = bytearray()
                    while (
                        next_send < len(batch_list)
                        and len(pending) < window
                    ):
                        index = next_send
                        next_send += 1
                        rid = self._next_rid()
                        out += self._encode_batch(batch_list[index], rid)
                        pending.append((index, rid))
                    if out:
                        sock.sendall(out)
                    index, rid = pending.popleft()
                    try:
                        results[index] = self._read_batch_reply(sock, rid)
                    except TransportError:
                        raise
                    except ServiceError as exc:
                        if first_error is None:
                            first_error = exc
            except (FrameError, OSError) as exc:
                raise TransportError(f"transport failure: {exc}") from None
        if first_error is not None:
            raise first_error
        return results

    def stats(self) -> Dict[str, Any]:
        """Server-side engine/index counters."""
        return self._rpc({"op": "stats"})

    def hello(self) -> Dict[str, Any]:
        """The handshake: protocol version plus the server's current
        index ``epoch`` and last-applied ``seq`` (both advance while a
        ``--follow`` server ingests its update log)."""
        return self._rpc({"op": "hello"})

    def ping(self) -> bool:
        """Liveness probe."""
        return self._rpc({"op": "ping"}) == "pong"

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "ReputationClient":
        return self

    def __exit__(self, *_: Any) -> None:
        self.close()
