"""The query engine: verdicts, hot-address LRU, and counters.

One :class:`QueryEngine` wraps one immutable
:class:`~repro.service.index.ReputationIndex` and answers the
service's question: *given address x on day t — is it listed, on which
lists, is the block likely unjust, and what should an operator do?*

The action reuses the batch pipeline's policy
(:func:`repro.core.greylist.recommend_action`, Section 6 of the
paper): an unlisted address is ``ignore``; a listed reused address is
``greylist`` unless some carrying list is a DDoS list (rate beats
precision there), in which case ``block``; a listed non-reused address
is always ``block``.

The engine also accepts a streaming
:class:`~repro.stream.epoch.EpochIndex`: every lookup resolves the
current epoch *once* and evaluates entirely against that immutable
snapshot, so a concurrent hot swap can never produce a torn verdict.
Cache keys carry the epoch number — entries from a superseded epoch
simply stop matching and age out of the LRU; verdicts report the
``(epoch, seq)`` they were computed against.

Blocklist consumers hit the same few hot addresses over and over (the
skew the paper's per-list concentration numbers imply), so verdicts go
through a small LRU; per-query-type hit/latency counters feed the
``stats`` wire op and the capacity-planning story.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.greylist import BlockAction, recommend_action
from ..net.family import V4, AddressFamily
from ..stream.epoch import EpochIndex
from .index import ReputationIndex

__all__ = ["ACTION_IGNORE", "QueryEngine", "Verdict"]

#: Action for traffic from an address not listed on the queried day.
ACTION_IGNORE = BlockAction.IGNORE

#: Default hot-address cache capacity (verdicts, not bytes).
DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True)
class Verdict:
    """The service's full answer for one ``(ip, day)`` query."""

    ip: int
    day: int
    listed: bool
    lists: Tuple[str, ...]
    nated: bool
    dynamic: bool
    #: Listed *and* reused — the paper's likely-unjust-listing flag.
    unjust: bool
    reuse_kind: str
    users: int
    asn: int
    action: str
    #: Index epoch and last-applied update-log sequence the verdict
    #: was computed against (both 0 for a static, non-streaming index).
    epoch: int = 0
    seq: int = 0
    #: The address family of ``ip`` — formatting only, never compared,
    #: so v4 verdict equality is exactly what it was pre-families.
    family: AddressFamily = field(default=V4, compare=False, repr=False)

    def to_wire(self) -> Dict[str, Any]:
        """JSON-ready dict (canonical-text address, list as array).

        Key order and content are field-for-field identical to the
        pre-family encoding for v4 verdicts.
        """
        return {
            "ip": self.family.format(self.ip),
            "day": self.day,
            "listed": self.listed,
            "lists": list(self.lists),
            "nated": self.nated,
            "dynamic": self.dynamic,
            "unjust": self.unjust,
            "reuse_kind": self.reuse_kind,
            "users": self.users,
            "asn": self.asn,
            "action": self.action,
            "epoch": self.epoch,
            "seq": self.seq,
        }


class QueryEngine:
    """Thread-safe query layer over a :class:`ReputationIndex`."""

    def __init__(
        self,
        index: "ReputationIndex | EpochIndex",
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"negative cache size: {cache_size}")
        self._source = index
        self._streaming = isinstance(index, EpochIndex)
        # The family never changes across epochs (one run, one family),
        # so it is cached here instead of chased per lookup.
        self._family = (
            index.current.index.family if self._streaming else index.family
        )
        self._cache_size = cache_size
        self._cache: "OrderedDict[Tuple[int, int, int], Verdict]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, float]] = {}
        # Counters since the last observed epoch swap. Mixing epochs in
        # one hit-rate number hides the post-swap cold start (every
        # cached verdict stops matching), so stats() reports this table
        # next to the cumulative one and resets it on each swap.
        self._epoch_counters: Dict[str, Dict[str, float]] = {}
        self._counter_epoch = 0

    @property
    def family(self) -> AddressFamily:
        """The address family this engine answers for."""
        return self._family

    @property
    def index(self) -> ReputationIndex:
        """The index queries resolve against *right now* (the current
        epoch's for a streaming source)."""
        return self._resolve()[0]

    def _resolve(self) -> Tuple[ReputationIndex, int, int]:
        """One consistent ``(index, epoch, seq)`` snapshot — a single
        atomic reference read, never a lock."""
        if self._streaming:
            epoch = self._source.current
            return epoch.index, epoch.number, epoch.seq
        return self._source, 0, 0

    def epoch_state(self) -> Tuple[int, int]:
        """Current ``(epoch, last applied seq)`` — ``(0, 0)`` for a
        static index. The wire handshake reports this pair."""
        _, epoch, seq = self._resolve()
        return epoch, seq

    def resolve_state(self) -> Tuple[ReputationIndex, int, int]:
        """One consistent ``(index, epoch, seq)`` snapshot. Servers
        keying caches by epoch take the snapshot here, then attribute
        entries to the epoch each verdict actually came from."""
        return self._resolve()

    # -- query paths ---------------------------------------------------

    def query(self, ip: int, day: Optional[int] = None) -> Verdict:
        """Point query; ``day`` defaults to the index's notion of now
        (last day of the last collection window)."""
        started = time.perf_counter()
        verdict, hit = self._lookup(ip, day)
        self._count("point", time.perf_counter() - started, hit)
        return verdict

    def query_batch(
        self, queries: Iterable[Tuple[int, Optional[int]]]
    ) -> List[Verdict]:
        """Batch query: one verdict per ``(ip, day)`` pair, in order."""
        started = time.perf_counter()
        verdicts = []
        hits = 0
        for ip, day in queries:
            verdict, hit = self._lookup(ip, day)
            hits += hit
            verdicts.append(verdict)
        self._count(
            "batch",
            time.perf_counter() - started,
            hits,
            queries_run=len(verdicts),
        )
        return verdicts

    def _lookup(self, ip: int, day: Optional[int]) -> Tuple[Verdict, bool]:
        if not self._family.valid_ip(ip):
            raise ValueError(f"bad address integer: {ip!r}")
        index, epoch, seq = self._resolve()
        resolved = index.default_day() if day is None else int(day)
        key = (epoch, ip, resolved)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached, True
        verdict = self._evaluate(index, ip, resolved, epoch, seq)
        if self._cache_size:
            with self._lock:
                self._cache[key] = verdict
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return verdict, False

    def _evaluate(
        self,
        index: ReputationIndex,
        ip: int,
        day: int,
        epoch: int,
        seq: int,
    ) -> Verdict:
        lists = index.lists_active_on(ip, day)
        nated = index.is_nated(ip)
        dynamic = index.is_dynamic(ip)
        if not lists:
            action = ACTION_IGNORE
        else:
            # The per-list Section 6 policy, aggregated: one carrying
            # list that warrants a hard block makes the verdict block.
            action = BlockAction.GREYLIST
            for list_id in lists:
                if (
                    recommend_action(
                        index, ip, blocklist_category=index.category_of(list_id)
                    )
                    == BlockAction.BLOCK
                ):
                    action = BlockAction.BLOCK
                    break
        return Verdict(
            ip=ip,
            day=day,
            listed=bool(lists),
            lists=lists,
            nated=nated,
            dynamic=dynamic,
            unjust=bool(lists) and (nated or dynamic),
            reuse_kind=index.reuse_kind(ip),
            users=index.users_behind(ip),
            asn=index.asn_of(ip),
            action=action,
            epoch=epoch,
            seq=seq,
            family=self._family,
        )

    # -- counters ------------------------------------------------------

    def _count(
        self,
        kind: str,
        seconds: float,
        cache_hits: int,
        *,
        queries_run: int = 1,
    ) -> None:
        epoch = self._resolve()[1]
        with self._lock:
            if epoch != self._counter_epoch:
                # An epoch swap happened since the last counted query:
                # the per-epoch table starts over (cumulative keeps
                # accumulating).
                self._counter_epoch = epoch
                self._epoch_counters = {}
            for table in (self._counters, self._epoch_counters):
                row = table.setdefault(
                    kind,
                    {
                        "calls": 0,
                        "queries": 0,
                        "cache_hits": 0,
                        "seconds": 0.0,
                    },
                )
                row["calls"] += 1
                row["queries"] += queries_run
                row["cache_hits"] += cache_hits
                row["seconds"] += seconds

    @staticmethod
    def _render_counters(
        table: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, Any]]:
        return {
            kind: {
                **{k: row[k] for k in ("calls", "queries", "cache_hits")},
                "seconds": round(row["seconds"], 6),
                "hit_rate": (
                    row["cache_hits"] / row["queries"]
                    if row["queries"]
                    else 0.0
                ),
            }
            for kind, row in table.items()
        }

    def stats(self) -> Dict[str, Any]:
        """Counters plus index sizes — the ``stats`` op's payload."""
        with self._lock:
            counters = self._render_counters(self._counters)
            epoch_counters = self._render_counters(self._epoch_counters)
            counter_epoch = self._counter_epoch
            cached = len(self._cache)
        index, epoch, seq = self._resolve()
        epoch_info: Dict[str, Any] = {"epoch": epoch, "seq": seq}
        if self._streaming:
            epoch_info = {**self._source.stats(), **epoch_info}
        return {
            "queries": counters,
            "queries_this_epoch": {
                "epoch": counter_epoch,
                "counters": epoch_counters,
            },
            "cache": {"entries": cached, "capacity": self._cache_size},
            "index": index.stats(),
            "epoch": epoch_info,
        }
