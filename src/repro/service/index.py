"""The compiled, read-optimised reputation index.

A :class:`ReputationIndex` is the immutable compilation of one full
run's products — blocklist listing intervals, NAT verdicts, dynamic
/24 prefixes, AS origins — into the shape an online query path wants:

* per-IP listing intervals sorted by start day, so "which lists carry
  *x* on day *t*" is a :mod:`bisect` cut plus a short scan instead of
  a pass over the store;
* NATed addresses as a hash set and dynamic /24s as a
  :class:`~repro.net.prefixtrie.PrefixSet`, so the reuse
  classification behind the paper's *unjust listing* verdict is O(1)
  and O(32) respectively;
* per-AS rollups (blocklisted / NATed / dynamic / reused counts),
  precomputed once at build time.

The index also implements ``is_reused`` with the same meaning as
:class:`~repro.core.reuse.ReuseAnalysis`, so
:func:`repro.core.greylist.recommend_action` accepts either object —
the online service and the batch pipeline share one policy.

A binary snapshot (:meth:`save` / :meth:`load`) lets a server start
from disk without re-running the measurement pipeline.
"""

from __future__ import annotations

import gzip
import os
import pickle
import tempfile
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Set, Tuple

from ..blocklists.catalog import BlocklistInfo
from ..blocklists.timeline import Window
from ..core.reuse import ReuseAnalysis
from ..internet.abuse import AbuseCategory
from ..net.family import V4, AddressFamily, AnyPrefix, family_named
from ..net.prefixtrie import PrefixSet

__all__ = [
    "ASRollup",
    "ReputationIndex",
    "SnapshotError",
    "policy_category",
]

_SNAPSHOT_MAGIC = "repro-reputation-index"
_SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot file is missing, corrupt, or from another version."""


@dataclass(frozen=True)
class ASRollup:
    """Reuse exposure of one AS among blocklisted addresses."""

    asn: int
    blocklisted: int
    nated: int
    dynamic: int
    reused: int


#: One listing interval in index form: (first_day, last_day, list_id).
_Interval = Tuple[int, int, str]


class ReputationIndex:
    """Immutable, query-optimised view of one run's reuse analysis.

    Build with :meth:`from_analysis` / :meth:`from_run`, or restore a
    saved snapshot with :meth:`load`. All mappings are frozen at
    construction; the service layer treats instances as shareable
    between threads without locking.
    """

    def __init__(
        self,
        *,
        windows: Sequence[Window],
        intervals: Dict[int, List[_Interval]],
        nated: Set[int],
        users: Dict[int, int],
        dynamic_prefixes: Sequence[AnyPrefix],
        categories: Dict[str, str],
        asn_by_ip: Dict[int, int],
        family: AddressFamily = V4,
    ) -> None:
        self._family = family
        self._windows: Tuple[Window, ...] = tuple(
            (int(start), int(end)) for start, end in windows
        )
        self._intervals = {
            ip: sorted(spans) for ip, spans in intervals.items()
        }
        # Parallel per-IP start-day arrays: the bisect key.
        self._starts: Dict[int, List[int]] = {
            ip: [span[0] for span in spans]
            for ip, spans in self._intervals.items()
        }
        self._nated = frozenset(nated)
        self._users = dict(users)
        self._dynamic_prefixes = tuple(sorted(dynamic_prefixes))
        self._dynamic_set = PrefixSet(iter(self._dynamic_prefixes), family)
        self._categories = dict(categories)
        self._asn_by_ip = dict(asn_by_ip)
        self._rollups = self._build_rollups()

    # -- construction --------------------------------------------------

    @classmethod
    def from_analysis(
        cls,
        analysis: ReuseAnalysis,
        catalog: Sequence[BlocklistInfo] = (),
    ) -> "ReputationIndex":
        """Compile a batch :class:`ReuseAnalysis` into an index.

        ``catalog`` supplies each list's category for the action
        policy; lists absent from it fall back to ``reputation``.
        """
        intervals: Dict[int, List[_Interval]] = {}
        for listing in analysis.observed:
            intervals.setdefault(listing.ip, []).append(
                (listing.first_day, listing.last_day, listing.list_id)
            )
        return cls(
            windows=analysis.windows,
            intervals=intervals,
            nated=analysis.nated_ips,
            users={
                ip: analysis.nat.users_behind(ip)
                for ip in analysis.nated_ips
            },
            dynamic_prefixes=analysis.dynamic_prefixes,
            categories={
                info.list_id: policy_category(info) for info in catalog
            },
            asn_by_ip={
                ip: analysis.asn_of(ip) for ip in analysis.blocklisted_ips
            },
        )

    @classmethod
    def from_run(cls, run: Any) -> "ReputationIndex":
        """Compile a :class:`~repro.experiments.runner.FullRun`."""
        return cls.from_analysis(run.analysis, run.scenario.catalog)

    # -- point queries -------------------------------------------------

    @property
    def family(self) -> AddressFamily:
        """The address family of every key in the index."""
        return self._family

    @property
    def windows(self) -> Tuple[Window, ...]:
        """The collection windows the index was built over."""
        return self._windows

    def default_day(self) -> int:
        """The last day of the last collection window — what "now"
        means to a consumer that does not pass an explicit day."""
        return self._windows[-1][1] if self._windows else 0

    def lists_active_on(self, ip: int, day: int) -> Tuple[str, ...]:
        """Lists carrying ``ip`` on ``day``, list-id ordered."""
        spans = self._intervals.get(ip)
        if not spans:
            return ()
        # Candidates start no later than `day`; intervals are short and
        # few per address, so the residual scan is a handful of tuples.
        cut = bisect_right(self._starts[ip], day)
        return tuple(
            sorted(
                list_id
                for first, last, list_id in spans[:cut]
                if last >= day
            )
        )

    def lists_ever(self, ip: int) -> Tuple[str, ...]:
        """Every list that carried ``ip`` at any observed time."""
        spans = self._intervals.get(ip, ())
        return tuple(sorted({list_id for _, _, list_id in spans}))

    def intervals_of(self, ip: int) -> Tuple[_Interval, ...]:
        """The raw listing intervals of one address, start-day sorted."""
        return tuple(self._intervals.get(ip, ()))

    def interval_items(self) -> Iterator[Tuple[int, Tuple[_Interval, ...]]]:
        """Iterate ``(ip, intervals)`` pairs (streaming/compare paths)."""
        for ip, spans in self._intervals.items():
            yield ip, tuple(spans)

    def restrict(self, lo: int, hi: int) -> "ReputationIndex":
        """Project the index onto the address range ``lo..hi``.

        The cluster layer shards the IPv4 space by handing each worker
        ``full_index.restrict(range.lo, range.hi)``: per-IP tables
        (intervals, NAT set, user counts, AS origins) keep only
        addresses inside the range, dynamic prefixes keep those
        overlapping it, and run-wide products (windows, list
        categories) are kept whole so per-shard verdicts are
        field-for-field identical to the full index for every in-range
        address. Callers must align range edges so no dynamic /24
        straddles two shards (the partitioner guarantees this); an
        overlapping prefix is kept whole on every shard it touches.
        """
        fam = self._family
        if not (fam.valid_ip(lo) and fam.valid_ip(hi)) or lo > hi:
            raise ValueError(f"bad address range: {lo!r}..{hi!r}")
        return type(self)(
            windows=self._windows,
            intervals={
                ip: spans
                for ip, spans in self._intervals.items()
                if lo <= ip <= hi
            },
            nated={ip for ip in self._nated if lo <= ip <= hi},
            users={
                ip: users
                for ip, users in self._users.items()
                if lo <= ip <= hi
            },
            dynamic_prefixes=[
                prefix
                for prefix in self._dynamic_prefixes
                if prefix.first() <= hi and prefix.last() >= lo
            ],
            categories=self._categories,
            asn_by_ip={
                ip: asn
                for ip, asn in self._asn_by_ip.items()
                if lo <= ip <= hi
            },
            family=fam,
        )

    # -- copy-on-write successors --------------------------------------

    def with_interval_updates(
        self, updates: Dict[int, Sequence[_Interval]]
    ) -> "ReputationIndex":
        """A successor index with per-IP interval lists replaced.

        This is the streaming layer's hot path: every structure except
        the interval tables is *shared* with the parent (they are all
        effectively immutable), the outer tables are shallow-copied,
        and only the addresses named in ``updates`` get fresh lists —
        an empty sequence drops the address. Rollups are inherited:
        they count the measurement-side reuse exposure, which listing
        churn does not move.
        """
        successor = object.__new__(type(self))
        successor.__dict__.update(self.__dict__)
        intervals = dict(self._intervals)
        starts = dict(self._starts)
        for ip, spans in updates.items():
            if spans:
                ordered = sorted(tuple(span) for span in spans)
                intervals[ip] = ordered
                starts[ip] = [span[0] for span in ordered]
            else:
                intervals.pop(ip, None)
                starts.pop(ip, None)
        successor._intervals = intervals
        successor._starts = starts
        return successor

    def is_nated(self, ip: int) -> bool:
        """Crawler-confirmed concurrent NAT sharing."""
        return ip in self._nated

    def is_dynamic(self, ip: int) -> bool:
        """Inside a detected dynamically-reassigned /24."""
        return self._dynamic_set.contains_ip(ip)

    def is_reused(self, ip: int) -> bool:
        """Either reuse form — same contract as
        :meth:`ReuseAnalysis.is_reused`, so the greylist policy helper
        accepts an index wherever it accepts an analysis."""
        return ip in self._nated or self._dynamic_set.contains_ip(ip)

    def reuse_kind(self, ip: int) -> str:
        """``"nat"``, ``"dynamic"``, ``"nat+dynamic"`` or ``""``."""
        nated = ip in self._nated
        dynamic = self._dynamic_set.contains_ip(ip)
        if nated and dynamic:
            return "nat+dynamic"
        if nated:
            return "nat"
        if dynamic:
            return "dynamic"
        return ""

    def users_behind(self, ip: int) -> int:
        """Detected user lower bound (0 when not NATed)."""
        return self._users.get(ip, 0)

    def asn_of(self, ip: int) -> int:
        """Origin ASN recorded for a blocklisted ``ip`` (0 otherwise)."""
        return self._asn_by_ip.get(ip, 0)

    def category_of(self, list_id: str) -> str:
        """Policy category of a list (``reputation`` when unknown)."""
        return self._categories.get(list_id, AbuseCategory.REPUTATION)

    # -- rollups and stats ---------------------------------------------

    def _build_rollups(self) -> Dict[int, ASRollup]:
        counts: Dict[int, List[int]] = {}
        for ip, asn in self._asn_by_ip.items():
            row = counts.setdefault(asn, [0, 0, 0, 0])
            nated = ip in self._nated
            dynamic = self._dynamic_set.contains_ip(ip)
            row[0] += 1
            row[1] += nated
            row[2] += dynamic
            row[3] += nated or dynamic
        return {
            asn: ASRollup(asn, *row) for asn, row in counts.items()
        }

    def as_rollups(self) -> List[ASRollup]:
        """Per-AS reuse exposure, most blocklisted addresses first."""
        return sorted(
            self._rollups.values(),
            key=lambda r: (-r.blocklisted, r.asn),
        )

    def rollup_of(self, asn: int) -> ASRollup:
        """Rollup for one AS (all-zero when it has no listings)."""
        return self._rollups.get(asn, ASRollup(asn, 0, 0, 0, 0))

    def stats(self) -> Dict[str, int]:
        """Size counters for logs and the ``stats`` wire op."""
        return {
            "ips": len(self._intervals),
            "intervals": sum(len(s) for s in self._intervals.values()),
            "nated_ips": len(self._nated),
            "dynamic_prefixes": len(self._dynamic_prefixes),
            "lists": len(self._categories),
            "ases": len(self._rollups),
        }

    # -- snapshots -----------------------------------------------------

    def save(self, path: "Path | str") -> Path:
        """Write a binary snapshot (atomic: temp file + rename)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "magic": _SNAPSHOT_MAGIC,
            "version": _SNAPSHOT_VERSION,
            "state": {
                "windows": list(self._windows),
                "intervals": self._intervals,
                "nated": sorted(self._nated),
                "users": self._users,
                "dynamic_prefixes": [
                    (p.network, p.length) for p in self._dynamic_prefixes
                ],
                "categories": self._categories,
                "asn_by_ip": self._asn_by_ip,
            },
        }
        # Family key only for non-v4 so pre-family v4 snapshots and
        # fresh ones stay byte-identical; absent means v4 on load.
        if self._family is not V4:
            payload["state"]["family"] = self._family.name
        handle, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix="tmp-index-"
        )
        try:
            with os.fdopen(handle, "wb") as raw:
                with gzip.open(raw, "wb", compresslevel=6) as compressed:
                    pickle.dump(
                        payload, compressed, pickle.HIGHEST_PROTOCOL
                    )
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def load(cls, path: "Path | str") -> "ReputationIndex":
        """Restore a snapshot; :class:`SnapshotError` on anything that
        is not a readable, version-matching snapshot."""
        try:
            with gzip.open(Path(path), "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            raise SnapshotError(f"snapshot not found: {path}") from None
        except Exception as exc:
            raise SnapshotError(
                f"unreadable snapshot {path}: {exc}"
            ) from None
        if (
            not isinstance(payload, dict)
            or payload.get("magic") != _SNAPSHOT_MAGIC
        ):
            raise SnapshotError(
                f"{path} is not a reputation-index snapshot"
            )
        if payload.get("version") != _SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {payload.get('version')!r} does not "
                f"match expected {_SNAPSHOT_VERSION}"
            )
        state = payload["state"]
        try:
            family = family_named(state.get("family"))
            return cls(
                windows=[tuple(w) for w in state["windows"]],
                intervals={
                    ip: [tuple(span) for span in spans]
                    for ip, spans in state["intervals"].items()
                },
                nated=set(state["nated"]),
                users=state["users"],
                dynamic_prefixes=[
                    family.make_prefix(network, length)
                    for network, length in state["dynamic_prefixes"]
                ],
                categories=state["categories"],
                asn_by_ip=state["asn_by_ip"],
                family=family,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"malformed snapshot state in {path}: {exc}"
            ) from None


def policy_category(info: BlocklistInfo) -> str:
    """The category the Section 6 action policy keys on.

    A list that reacts to DDoS at all is treated as a DDoS list (rate
    beats precision there, so those listings stay blocking); otherwise
    its primary category applies. Public because every index builder —
    :meth:`ReputationIndex.from_analysis` here, the adversary-lab
    scorer building an index straight from a scenario ledger — must
    derive the category map the same way for verdicts to agree.
    """
    if AbuseCategory.DDOS in info.categories:
        return AbuseCategory.DDOS
    return info.categories[0] if info.categories else AbuseCategory.REPUTATION
