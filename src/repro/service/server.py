"""Stdlib-only threaded TCP server for the reputation service.

One connection carries any number of request frames
(:mod:`repro.service.wire`); each gets exactly one reply frame:

``{"op": "query", "ip": "1.2.3.4", "day": 17}``
    → ``{"ok": true, "result": {<verdict>}}`` — ``ip`` may also be an
    integer; ``day`` is optional (defaults to the index's last window
    day).
``{"op": "batch", "queries": [{"ip": ..., "day": ...}, ...]}``
    → ``{"ok": true, "result": [<verdict>, ...]}`` (at most
    :data:`MAX_BATCH` queries per frame).
``{"op": "stats"}``
    → engine counters, cache occupancy, index sizes and the live
    epoch/sequence state.
``{"op": "hello"}``
    → the handshake: service name, protocol version, whether the
    server follows an update log, and the current index ``epoch`` +
    last-applied ``seq`` — what a client checks before trusting
    verdict freshness.
``{"op": "ping"}``
    → ``{"ok": true, "result": "pong"}`` — liveness probe.

Robustness contract: a malformed frame or request gets an error reply
(``{"ok": false, "error": ...}``), never a crash; only a broken frame
*boundary* (oversized length, peer cut mid-frame) or an idle timeout
closes the connection, because there is no way to resynchronise the
stream. Shutdown is graceful — in-flight requests finish, the listener
stops accepting.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Any, Dict, Optional, Tuple

from ..net.ipv4 import ip_to_int, is_valid_ip_int
from .engine import QueryEngine
from .wire import MAX_FRAME_BYTES, FrameError, recv_frame, send_frame

__all__ = [
    "MAX_BATCH",
    "PROTOCOL_VERSION",
    "ReputationServer",
    "RequestError",
    "parse_ip",
    "parse_day",
]

#: Upper bound on queries in one batch frame.
MAX_BATCH = 10_000

#: Wire protocol version reported by the ``hello`` handshake.
PROTOCOL_VERSION = 1

#: Seconds a connection may sit idle before the server drops it.
DEFAULT_CONNECTION_TIMEOUT = 30.0


class RequestError(ValueError):
    """A structurally valid frame asking something unanswerable."""


def parse_ip(value: Any) -> int:
    if isinstance(value, bool):
        raise RequestError(f"bad ip: {value!r}")
    if isinstance(value, int):
        if not is_valid_ip_int(value):
            raise RequestError(f"ip integer out of range: {value!r}")
        return value
    if isinstance(value, str):
        try:
            return ip_to_int(value)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
    raise RequestError(f"bad ip: {value!r}")


def parse_day(value: Any) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"bad day: {value!r}")
    return value


class _Handler(socketserver.BaseRequestHandler):
    server: "_TcpServer"

    def handle(self) -> None:
        sock = self.request
        sock.settimeout(self.server.connection_timeout)
        while True:
            try:
                request = recv_frame(
                    sock, max_size=self.server.max_frame
                )
            except FrameError as exc:
                self._reply_error(sock, str(exc))
                if exc.recoverable:
                    continue
                return  # framing broke: no next boundary to find
            except (socket.timeout, OSError):
                return
            if request is None:
                return  # clean EOF between frames
            try:
                reply = self._dispatch(request)
            except RequestError as exc:
                reply = {"ok": False, "error": str(exc)}
            except Exception as exc:  # never let a bug kill the worker
                reply = {"ok": False, "error": f"internal error: {exc}"}
            try:
                send_frame(sock, reply, max_size=self.server.max_frame)
            except (FrameError, OSError):
                return

    @staticmethod
    def _reply_error(sock: socket.socket, message: str) -> None:
        try:
            send_frame(sock, {"ok": False, "error": message})
        except (FrameError, OSError):
            pass

    def _dispatch(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            raise RequestError(
                f"request must be a JSON object, got "
                f"{type(request).__name__}"
            )
        op = request.get("op")
        engine = self.server.engine
        if op == "query":
            verdict = engine.query(
                parse_ip(request.get("ip")),
                parse_day(request.get("day")),
            )
            return {"ok": True, "result": verdict.to_wire()}
        if op == "batch":
            queries = request.get("queries")
            if not isinstance(queries, list):
                raise RequestError("batch needs a 'queries' array")
            if len(queries) > MAX_BATCH:
                raise RequestError(
                    f"batch of {len(queries)} exceeds the "
                    f"{MAX_BATCH}-query limit"
                )
            parsed = []
            for item in queries:
                if not isinstance(item, dict):
                    raise RequestError("each batch query must be an object")
                parsed.append(
                    (parse_ip(item.get("ip")), parse_day(item.get("day")))
                )
            verdicts = engine.query_batch(parsed)
            return {
                "ok": True,
                "result": [v.to_wire() for v in verdicts],
            }
        if op == "stats":
            return {"ok": True, "result": engine.stats()}
        if op == "hello":
            epoch, seq = engine.epoch_state()
            return {
                "ok": True,
                "result": {
                    "service": "repro-reputation",
                    "protocol": PROTOCOL_VERSION,
                    "streaming": self.server.streaming,
                    "epoch": epoch,
                    "seq": seq,
                },
            }
        if op == "ping":
            return {"ok": True, "result": "pong"}
        raise RequestError(f"unknown op: {op!r}")


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Set by ReputationServer before serving:
    engine: QueryEngine
    connection_timeout: float
    max_frame: int
    streaming: bool

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # Live per-connection sockets, so a hard stop can sever
        # keepalive clients that would otherwise outlive the listener.
        self._active: set = set()
        self._active_lock = threading.Lock()

    def process_request(self, request, client_address) -> None:
        with self._active_lock:
            self._active.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request) -> None:
        with self._active_lock:
            self._active.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._active_lock:
            active = list(self._active)
        for sock in active:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already gone


class ReputationServer:
    """The service's front door; binds on construction.

    Use ``port=0`` to bind an ephemeral port (tests);
    :attr:`address` reports the bound ``(host, port)``. Either call
    :meth:`serve_forever` on the current thread, or :meth:`start` to
    serve from a daemon thread, and :meth:`shutdown` (also via the
    context manager) to stop accepting and release the socket.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connection_timeout: float = DEFAULT_CONNECTION_TIMEOUT,
        max_frame: int = MAX_FRAME_BYTES,
        streaming: bool = False,
    ) -> None:
        self._server = _TcpServer((host, port), _Handler)
        self._server.engine = engine
        self._server.connection_timeout = connection_timeout
        self._server.max_frame = max_frame
        self._server.streaming = streaming
        # Guards the serve-thread handle: start() and shutdown() may
        # legitimately race (a test tearing down a just-started server).
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> Tuple[str, int]:
        """Serve from a background daemon thread; returns the address."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("server already started")
            thread = threading.Thread(
                target=self.serve_forever,
                name="repro-reputation-server",
                daemon=True,
            )
            self._thread = thread
        thread.start()
        return self.address

    def shutdown(self) -> None:
        """Stop accepting, finish in-flight requests, close the socket."""
        self._server.shutdown()
        self._server.server_close()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def close_connections(self) -> None:
        """Sever every live client connection (a hard stop — what a
        crashed process would do to its peers)."""
        self._server.close_all_connections()

    def __enter__(self) -> "ReputationServer":
        return self

    def __exit__(self, *_: Any) -> None:
        self.shutdown()
